// Quickstart: simulate one Table II workload under two prefetching schemes
// and print the headline metrics. Usage:
//   quickstart [workload-id] [instructions-per-core]
// Defaults: MX1, 300000.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "exp/table.hpp"
#include "system/system.hpp"

int main(int argc, char** argv) {
  using namespace camps;
  const std::string workload = argc > 1 ? argv[1] : "MX1";
  const u64 instructions =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 300000;

  exp::Table table({"scheme", "geomean IPC", "AMAT (cyc)", "conflict rate",
                    "pf accuracy", "buffer hits"});
  for (const auto scheme :
       {prefetch::SchemeKind::kBase, prefetch::SchemeKind::kCampsMod}) {
    system::SystemConfig cfg = system::table1_config(scheme);
    cfg.core.warmup_instructions = instructions / 5;
    cfg.core.measure_instructions = instructions;
    auto sys = system::make_workload_system(cfg, workload);
    const auto results = sys->run();
    table.add_row({results.scheme, exp::Table::fmt(results.geomean_ipc),
                   exp::Table::fmt(results.amat_cycles, 1),
                   exp::Table::pct(results.row_conflict_rate),
                   exp::Table::pct(results.prefetch_accuracy),
                   std::to_string(results.buffer_hits)});
    std::printf("--- %s on %s ---\n%s\n", results.scheme.c_str(),
                workload.c_str(), results.summary().c_str());
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
