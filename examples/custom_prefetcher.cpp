// Extending the library: implement a custom memory-side prefetch scheme
// against the public PrefetchScheme interface and race it against the
// built-in schemes on a streaming workload.
//
// The example scheme is a simple "open-row eager copier": any row that
// takes a second hit in the row buffer is copied to the prefetch buffer
// (a lighter trigger than CAMPS's threshold of 4, with no conflict table).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "exp/table.hpp"
#include "system/system.hpp"

namespace {

using namespace camps;

class EagerCopyScheme final : public prefetch::PrefetchScheme {
 public:
  explicit EagerCopyScheme(u32 banks) : hits_(banks, Tracker{}) {}

  prefetch::PrefetchDecision on_demand_access(
      const prefetch::AccessContext& ctx) override {
    Tracker& t = hits_[ctx.bank];
    if (ctx.outcome != dram::RowBufferOutcome::kHit) {
      t = Tracker{ctx.row, 0};
      return {};
    }
    if (t.row != ctx.row) t = Tracker{ctx.row, 0};
    if (++t.hits == 2) {
      prefetch::PrefetchDecision d;
      d.fetch_row = true;  // copy, keep the row open (open-page policy)
      return d;
    }
    return {};
  }

  std::string name() const override { return "EAGER-COPY"; }

 private:
  struct Tracker {
    RowId row = 0;
    u32 hits = 0;
  };
  std::vector<Tracker> hits_;
};

system::RunResults run_with(const std::string& workload,
                            prefetch::SchemeKind kind) {
  system::SystemConfig cfg = system::table1_config(kind);
  cfg.core.warmup_instructions = 50000;
  cfg.core.measure_instructions = 250000;
  return system::make_workload_system(cfg, workload)->run();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string workload = argc > 1 ? argv[1] : "MX3";

  // The System API wires one scheme instance per vault via SchemeKind; for
  // a custom scheme we drive the vault layer directly through a System
  // built from the same workload but swap the comparison at the results
  // level: we reuse the NONE substrate and measure the custom scheme by
  // running the HMC in isolation. The simplest full-system route for
  // custom schemes today is to register them in prefetch::make_scheme;
  // here we demonstrate the interface contract itself on a vault harness.
  sim::Simulator sim;
  hmc::VaultConfig vcfg;
  u64 responses = 0;
  hmc::VaultController vault(
      sim, 0, vcfg, std::make_unique<EagerCopyScheme>(vcfg.banks), nullptr,
      nullptr, [&](const hmc::MemRequest&, Tick) { ++responses; });

  // Drive the vault with a synthetic stream: 8 sequential lines per row.
  u64 id = 1;
  for (u64 i = 0; i < 4000; ++i) {
    hmc::MemRequest req;
    req.id = id++;
    req.type = AccessType::kRead;
    hmc::DecodedAddr d;
    d.vault = 0;
    d.bank = static_cast<BankId>((i / 8) % 16);
    d.row = (i / 128) % 64;
    d.column = static_cast<LineId>(i % 8);
    const Tick when = i * 2 * sim::kDramTicksPerCycle;
    sim.schedule_at(when, [&vault, req, d, when] {
      vault.receive(req, d, when);
    });
  }
  // Bounded run: the vault keeps scheduling refresh maintenance forever,
  // so drain up to a horizon that covers all the traffic above.
  sim.run_until(u64{4000} * 2 * sim::kDramTicksPerCycle + 4'000'000);

  std::printf("custom scheme '%s' on a vault-level stream:\n",
              vault.scheme().name().c_str());
  std::printf("  responses        : %llu\n",
              static_cast<unsigned long long>(responses));
  std::printf("  prefetches       : %llu\n",
              static_cast<unsigned long long>(vault.prefetches_issued()));
  std::printf("  buffer hits      : %llu\n",
              static_cast<unsigned long long>(vault.buffer().hits()));
  std::printf("  row buffer hits  : %llu, conflicts: %llu\n\n",
              static_cast<unsigned long long>(vault.row_hits()),
              static_cast<unsigned long long>(vault.row_conflicts()));

  // Full-system reference points for the same workload.
  using camps::exp::Table;
  Table table({"scheme", "geomean IPC", "pf accuracy"});
  for (auto kind : {prefetch::SchemeKind::kNone, prefetch::SchemeKind::kCamps,
                    prefetch::SchemeKind::kCampsMod}) {
    const auto r = run_with(workload, kind);
    table.add_row({r.scheme, Table::fmt(r.geomean_ipc),
                   Table::pct(r.prefetch_accuracy)});
  }
  std::printf("full-system reference on %s:\n%s", workload.c_str(),
              table.to_string().c_str());
  return 0;
}
