// Working with traces: generate a synthetic SPEC-like trace, inspect its
// statistics, persist it to the binary .ctrc format, reload it, and run the
// reloaded trace through the full system on all eight cores.
//
// Usage: trace_tools [benchmark] [records] [output.ctrc]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "system/system.hpp"
#include "trace/spec_profiles.hpp"
#include "trace/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace camps;
  const std::string bench = argc > 1 ? argv[1] : "sphinx";
  const size_t records = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                  : 200000;
  const std::string path =
      argc > 3 ? argv[3] : "/tmp/camps_" + bench + ".ctrc";

  system::SystemConfig cfg = system::table1_config();
  const auto geometry = cfg.pattern_geometry();

  // 1. Generate.
  const auto& profile = trace::benchmark(bench);
  std::printf("benchmark %-8s (%s): %s\n", profile.name.c_str(),
              trace::to_string(profile.mem_class), profile.character.c_str());
  auto source = profile.make_source(/*seed=*/42, geometry);
  const auto trace_records = trace::collect(*source, records);

  // 2. Inspect.
  const auto stats = trace::summarize(trace_records);
  std::printf("  records          : %llu\n",
              static_cast<unsigned long long>(stats.records));
  std::printf("  instructions     : %llu\n",
              static_cast<unsigned long long>(stats.instructions));
  std::printf("  reads / writes   : %llu / %llu\n",
              static_cast<unsigned long long>(stats.reads),
              static_cast<unsigned long long>(stats.writes));
  std::printf("  distinct lines   : %llu\n",
              static_cast<unsigned long long>(stats.distinct_lines));
  std::printf("  accesses / kinst : %.1f\n", stats.accesses_per_kilo_instr);

  // 3. Persist and reload.
  trace::write_trace_file(path, trace_records);
  std::printf("  written to       : %s\n", path.c_str());
  trace::TraceFileSource reloaded(path);
  std::printf("  reloaded records : %llu\n",
              static_cast<unsigned long long>(reloaded.record_count()));

  // 4. Run the file-backed trace on all eight cores of the Table I system.
  cfg.core.warmup_instructions = 20000;
  cfg.core.measure_instructions = 100000;
  std::vector<std::unique_ptr<trace::TraceSource>> sources;
  for (u32 c = 0; c < cfg.cores; ++c) {
    sources.push_back(std::make_unique<trace::TraceFileSource>(path));
  }
  system::System sys(cfg, std::move(sources));
  const auto results = sys.run();
  std::printf("\nfull-system run of the reloaded trace (CAMPS-MOD):\n%s",
              results.summary().c_str());
  return 0;
}
