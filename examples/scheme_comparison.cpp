// Compare all prefetching schemes (plus the no-prefetch substrate baseline)
// on one Table II workload, printing the full metric set each scheme
// produces. Usage:
//   scheme_comparison [workload-id] [instructions-per-core]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "exp/table.hpp"
#include "system/system.hpp"

int main(int argc, char** argv) {
  using namespace camps;
  const std::string workload = argc > 1 ? argv[1] : "HM2";
  const u64 instructions =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 300000;

  std::printf("workload %s, %llu instructions/core after warmup\n\n",
              workload.c_str(),
              static_cast<unsigned long long>(instructions));

  exp::Table table({"scheme", "IPC", "vs BASE", "AMAT", "mem lat",
                    "conflicts", "pf count", "pf accuracy", "buf hits",
                    "energy (uJ)"});
  double base_ipc = 0.0;
  for (auto kind :
       {prefetch::SchemeKind::kNone, prefetch::SchemeKind::kBase,
        prefetch::SchemeKind::kBaseHit, prefetch::SchemeKind::kMmd,
        prefetch::SchemeKind::kCamps, prefetch::SchemeKind::kCampsMod}) {
    system::SystemConfig cfg = system::table1_config(kind);
    cfg.core.warmup_instructions = instructions / 5;
    cfg.core.measure_instructions = instructions;
    const auto r = system::make_workload_system(cfg, workload)->run();
    if (kind == prefetch::SchemeKind::kBase) base_ipc = r.geomean_ipc;
    table.add_row({r.scheme, exp::Table::fmt(r.geomean_ipc),
                   base_ipc > 0.0
                       ? exp::Table::fmt(r.geomean_ipc / base_ipc)
                       : std::string("-"),
                   exp::Table::fmt(r.amat_cycles, 1),
                   exp::Table::fmt(r.mem_latency_cycles, 1),
                   exp::Table::pct(r.row_conflict_rate),
                   std::to_string(r.prefetches),
                   exp::Table::pct(r.prefetch_accuracy),
                   std::to_string(r.buffer_hits),
                   exp::Table::fmt(r.energy_pj / 1e6, 1)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
