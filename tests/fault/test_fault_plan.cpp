// FaultPlan determinism and bookkeeping.
#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/stats.hpp"

namespace camps::fault {
namespace {

TEST(FaultPlan, DefaultConfigInjectsNothing) {
  FaultPlan plan(FaultConfig{}, nullptr);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_FALSE(plan.roll(Site::kLinkDownCrc, 0));
    EXPECT_FALSE(plan.roll(Site::kVaultStall, static_cast<u32>(i % 32)));
  }
  EXPECT_EQ(plan.injected(), 0u);
}

TEST(FaultPlan, RateOneAlwaysFaults) {
  FaultConfig cfg;
  cfg.link_crc_rate = 1.0;
  FaultPlan plan(cfg, nullptr);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(plan.roll(Site::kLinkDownCrc, 2));
    EXPECT_TRUE(plan.roll(Site::kLinkUpCrc, 2));
  }
}

TEST(FaultPlan, DecisionsAreAPureFunctionOfCoordinates) {
  FaultConfig cfg;
  cfg.link_crc_rate = 0.3;
  cfg.seed = 7;

  // Plan A rolls only unit 0; plan B interleaves three units. The unit-0
  // decision stream must be identical — this independence is what makes
  // fault campaigns byte-stable across --jobs orderings.
  FaultPlan a(cfg, nullptr);
  FaultPlan b(cfg, nullptr);
  std::vector<bool> stream_a, stream_b;
  for (int i = 0; i < 2000; ++i) {
    stream_a.push_back(a.roll(Site::kLinkDownCrc, 0));
  }
  for (int i = 0; i < 2000; ++i) {
    stream_b.push_back(b.roll(Site::kLinkDownCrc, 0));
    b.roll(Site::kLinkDownCrc, 1);
    b.roll(Site::kLinkUpCrc, 0);  // same unit, different site
  }
  EXPECT_EQ(stream_a, stream_b);
}

TEST(FaultPlan, RateMatchesFrequency) {
  FaultConfig cfg;
  cfg.link_drop_rate = 0.1;
  FaultPlan plan(cfg, nullptr);
  int faults = 0;
  for (int i = 0; i < 10000; ++i) {
    if (plan.roll(Site::kLinkDownDrop, 0)) ++faults;
  }
  // 1000 expected; +-4.5 sigma keeps the test deterministic yet tight.
  EXPECT_GT(faults, 860);
  EXPECT_LT(faults, 1140);
}

TEST(FaultPlan, SeedChangesTheDecisionStream) {
  FaultConfig cfg1, cfg2;
  cfg1.link_crc_rate = cfg2.link_crc_rate = 0.5;
  cfg1.seed = 1;
  cfg2.seed = 2;
  FaultPlan p1(cfg1, nullptr), p2(cfg2, nullptr);
  bool differ = false;
  for (int i = 0; i < 200; ++i) {
    differ |= p1.roll(Site::kLinkDownCrc, 0) != p2.roll(Site::kLinkDownCrc, 0);
  }
  EXPECT_TRUE(differ);
}

TEST(FaultPlan, TargetedFaultHitsExactCoordinate) {
  FaultConfig cfg;
  cfg.targeted.push_back({Site::kVaultStall, /*unit=*/3, /*sequence=*/2});
  FaultPlan plan(cfg, nullptr);
  EXPECT_EQ(plan.next_sequence(Site::kVaultStall, 3), 0u);
  EXPECT_FALSE(plan.roll(Site::kVaultStall, 3));  // sequence 0
  EXPECT_FALSE(plan.roll(Site::kVaultStall, 3));  // sequence 1
  EXPECT_TRUE(plan.roll(Site::kVaultStall, 3));   // sequence 2 <- targeted
  EXPECT_FALSE(plan.roll(Site::kVaultStall, 3));  // sequence 3
  EXPECT_EQ(plan.next_sequence(Site::kVaultStall, 3), 4u);
  // Same sequence at a different unit or site: untouched.
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(plan.roll(Site::kVaultStall, 4));
    EXPECT_FALSE(plan.roll(Site::kXbarDrop, 3));
  }
}

TEST(FaultPlan, CountersAndHistogramRegister) {
  StatRegistry stats;
  FaultConfig cfg;
  cfg.link_crc_rate = 0.5;
  FaultPlan plan(cfg, &stats);
  plan.count_crc_error();
  plan.count_replay(/*recovery_ticks=*/2400);
  plan.count_link_drop();
  plan.count_xbar_drop();
  plan.count_vault_stall();
  plan.count_host_retry();
  plan.count_host_poison(/*recovery_ticks=*/4800);
  plan.count_late_response();
  plan.count_degrade_flush();
  plan.count_token_stall_ticks(17);
  EXPECT_EQ(stats.counter_value("fault.crc_errors"), 1u);
  EXPECT_EQ(stats.counter_value("fault.replays"), 1u);
  EXPECT_EQ(stats.counter_value("fault.link_drops"), 1u);
  EXPECT_EQ(stats.counter_value("fault.xbar_drops"), 1u);
  EXPECT_EQ(stats.counter_value("fault.vault_stalls"), 1u);
  EXPECT_EQ(stats.counter_value("fault.host_retries"), 1u);
  EXPECT_EQ(stats.counter_value("fault.host_poisoned"), 1u);
  EXPECT_EQ(stats.counter_value("fault.late_responses"), 1u);
  EXPECT_EQ(stats.counter_value("fault.degrade_flushes"), 1u);
  EXPECT_EQ(stats.counter_value("fault.token_stall_ticks"), 17u);
  const Histogram* h = stats.find_histogram("fault.recovery_cycles");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);  // one replay + one poison
  EXPECT_EQ(plan.injected(), 4u);  // crc + link drop + xbar drop + stall
}

TEST(FaultPlan, EnabledReflectsConfiguration) {
  FaultConfig off;
  EXPECT_FALSE(off.enabled());
  FaultConfig rate;
  rate.vault_stall_rate = 1e-6;
  EXPECT_TRUE(rate.enabled());
  FaultConfig tokens;
  tokens.link_tokens = 32;
  EXPECT_TRUE(tokens.enabled());
  FaultConfig targeted;
  targeted.targeted.push_back({Site::kXbarDrop, 0, 0});
  EXPECT_TRUE(targeted.enabled());
}

}  // namespace
}  // namespace camps::fault
