// Observability integration: request-lifecycle tracing, the latency
// breakdown, machine-readable exports, and the epoch sampler — all running
// through the full system stack.

#include <gtest/gtest.h>
#include <set>
#include <string>

#include "exp/runner.hpp"
#include "system/system.hpp"

namespace camps::system {
namespace {

SystemConfig quick(prefetch::SchemeKind scheme, u64 measure = 40000) {
  SystemConfig cfg = table1_config(scheme);
  cfg.core.warmup_instructions = measure / 5;
  cfg.core.measure_instructions = measure;
  return cfg;
}

TEST(Observability, TraceDisabledByDefault) {
  auto r = make_workload_system(quick(prefetch::SchemeKind::kCampsMod, 5000),
                                "LM1")
               ->run();
  EXPECT_EQ(r.trace_spans, nullptr);
  EXPECT_EQ(r.trace_recorded, 0u);
  EXPECT_EQ(r.trace_dropped, 0u);
}

TEST(Observability, TraceCoversEveryInstrumentedComponent) {
  SystemConfig cfg = quick(prefetch::SchemeKind::kCampsMod);
  cfg.obs.trace_enabled = true;
  cfg.obs.trace_capacity = 1u << 20;  // retain everything at this scale
  auto r = make_workload_system(cfg, "HM1")->run();

  ASSERT_NE(r.trace_spans, nullptr);
  ASSERT_FALSE(r.trace_spans->empty());
  EXPECT_EQ(r.trace_recorded, r.trace_spans->size() + r.trace_dropped);

  std::set<obs::Stage> stages;
  Tick prev_begin = 0;
  for (const obs::Span& s : *r.trace_spans) {
    stages.insert(s.stage);
    EXPECT_LE(s.begin, s.end);
    EXPECT_GE(s.begin, prev_begin) << "spans must be tick-ordered";
    prev_begin = s.begin;
  }

  // At least one span from each of the six instrumented components.
  EXPECT_TRUE(stages.count(obs::Stage::kHostRead));          // host_controller
  EXPECT_TRUE(stages.count(obs::Stage::kLinkDown) ||
              stages.count(obs::Stage::kLinkUp));            // serial_link
  EXPECT_TRUE(stages.count(obs::Stage::kXbarDown) ||
              stages.count(obs::Stage::kXbarUp));            // crossbar
  EXPECT_TRUE(stages.count(obs::Stage::kVaultQueue) ||
              stages.count(obs::Stage::kBufferHit));         // vault_controller
  EXPECT_TRUE(stages.count(obs::Stage::kBankService));       // dram/bank
  EXPECT_TRUE(stages.count(obs::Stage::kPfInsert) ||
              stages.count(obs::Stage::kPfEvict));           // prefetch_buffer
}

TEST(Observability, TracingCannotChangeSimulatedResults) {
  SystemConfig cfg = quick(prefetch::SchemeKind::kCamps, 20000);
  auto plain = make_workload_system(cfg, "MX1")->run();
  cfg.obs.trace_enabled = true;
  cfg.obs.trace_capacity = 4096;  // deliberately small: ring wrap is fine
  auto traced = make_workload_system(cfg, "MX1")->run();

  EXPECT_DOUBLE_EQ(plain.geomean_ipc, traced.geomean_ipc);
  EXPECT_EQ(plain.row_conflicts, traced.row_conflicts);
  EXPECT_EQ(plain.buffer_hits, traced.buffer_hits);
  EXPECT_DOUBLE_EQ(plain.energy_pj, traced.energy_pj);
  EXPECT_EQ(plain.events_executed, traced.events_executed);
  EXPECT_GT(traced.trace_dropped, 0u) << "small ring should have wrapped";
}

TEST(Observability, LatencyBreakdownIsPopulated) {
  auto r = make_workload_system(quick(prefetch::SchemeKind::kCampsMod), "HM1")
               ->run();
  EXPECT_GT(r.latency.total_read.count, 0u);
  EXPECT_GT(r.latency.total_read.mean, 0.0);
  EXPECT_LE(r.latency.total_read.p50, r.latency.total_read.p95);
  EXPECT_LE(r.latency.total_read.p95, r.latency.total_read.p99);
  EXPECT_GT(r.latency.link_down.count, 0u);
  EXPECT_GT(r.latency.link_up.count, 0u);
  EXPECT_GT(r.latency.vault_queue.count, 0u);
  EXPECT_GT(r.latency.bank_service.count, 0u);
  EXPECT_GT(r.latency.bank_service.mean, 0.0);
  // The whole round trip dominates any single stage.
  EXPECT_GT(r.latency.total_read.mean, r.latency.bank_service.mean);
  EXPECT_NE(r.summary().find("latency breakdown"), std::string::npos);
}

TEST(Observability, RunResultsJsonIsByteStableAndExcludesWallClock) {
  auto run = [] {
    return make_workload_system(quick(prefetch::SchemeKind::kCamps, 20000),
                                "LM1")
        ->run();
  };
  const RunResults a = run();
  const RunResults b = run();
  const std::string json = a.to_json(2);
  EXPECT_EQ(json, b.to_json(2)) << "identical runs must serialize identically";
  EXPECT_EQ(json.find("wall_seconds"), std::string::npos);
  EXPECT_NE(json.find("\"geomean_ipc\":"), std::string::npos);
  EXPECT_NE(json.find("\"latency\":"), std::string::npos);
  EXPECT_NE(json.find("\"bank_service\":"), std::string::npos);
  EXPECT_NE(json.find("\"cores\":"), std::string::npos);
}

TEST(Observability, EpochSamplerProducesTimeSeries) {
  SystemConfig cfg = quick(prefetch::SchemeKind::kCampsMod, 20000);
  cfg.obs.epoch_ticks = 24'000;  // 1 us of simulated time
  auto r = make_workload_system(cfg, "MX1")->run();

  ASSERT_NE(r.epochs, nullptr);
  ASSERT_GT(r.epochs->size(), 2u);
  Tick prev = 0;
  for (const obs::EpochSample& s : *r.epochs) {
    EXPECT_EQ(s.tick, prev + cfg.obs.epoch_ticks);
    prev = s.tick;
    EXPECT_LE(s.row_conflict_rate, 1.0);
    EXPECT_LE(s.buffer_hit_rate, 1.0);
  }
  // Cumulative counters are monotone across epochs.
  const auto& first = r.epochs->front();
  const auto& last = r.epochs->back();
  EXPECT_GE(last.demand_reads, first.demand_reads);
  EXPECT_GT(last.demand_reads, 0u);
}

// The acceptance bar for every machine-readable export: a sweep's results
// are byte-identical whether it ran on one worker thread or two.
TEST(Observability, ExportsAreIdenticalAcrossJobCounts) {
  auto sweep = [](u32 jobs) {
    exp::ExperimentConfig cfg;
    cfg.warmup_instructions = 2000;
    cfg.measure_instructions = 10000;
    cfg.jobs = jobs;
    cfg.obs.trace_enabled = true;
    cfg.obs.trace_capacity = 8192;
    exp::Runner runner(cfg);
    runner.run_all({"MX1", "LM1"}, {prefetch::SchemeKind::kBase,
                                    prefetch::SchemeKind::kCampsMod});
    return runner;
  };
  exp::Runner one = sweep(1);
  exp::Runner two = sweep(2);

  ASSERT_EQ(one.results().size(), 4u);
  ASSERT_EQ(one.results().size(), two.results().size());
  auto it1 = one.results().begin();
  auto it2 = two.results().begin();
  for (; it1 != one.results().end(); ++it1, ++it2) {
    EXPECT_EQ(it1->first, it2->first);
    EXPECT_EQ(it1->second.to_json(), it2->second.to_json())
        << it1->first.first;
    ASSERT_NE(it1->second.trace_spans, nullptr);
    ASSERT_NE(it2->second.trace_spans, nullptr);
    EXPECT_EQ(*it1->second.trace_spans, *it2->second.trace_spans)
        << it1->first.first;
  }
}

}  // namespace
}  // namespace camps::system
