// Whole-system integration: small-scale runs through the full stack.
#include <gtest/gtest.h>
#include <memory>
#include <vector>

#include "system/system.hpp"

namespace camps::system {
namespace {

SystemConfig quick(prefetch::SchemeKind scheme, u64 measure = 40000) {
  SystemConfig cfg = table1_config(scheme);
  cfg.core.warmup_instructions = measure / 5;
  cfg.core.measure_instructions = measure;
  return cfg;
}

TEST(System, RunsAWorkloadEndToEnd) {
  auto sys = make_workload_system(quick(prefetch::SchemeKind::kCampsMod),
                                  "MX1");
  const RunResults r = sys->run();
  EXPECT_FALSE(r.partial);
  EXPECT_EQ(r.scheme, "CAMPS-MOD");
  ASSERT_EQ(r.cores.size(), 8u);
  for (const auto& core : r.cores) {
    EXPECT_GT(core.ipc, 0.0);
    EXPECT_EQ(core.instructions, 40000u);
  }
  EXPECT_GT(r.geomean_ipc, 0.0);
  EXPECT_LE(r.geomean_ipc, 4.0);
  EXPECT_GT(r.amat_cycles, 1.0);
  EXPECT_GT(r.mem_latency_cycles, 50.0);
  EXPECT_GT(r.memory_reads, 0u);
  EXPECT_GT(r.mpki, 0.0);
  EXPECT_GT(r.energy_pj, 0.0);
  EXPECT_GT(r.prefetches, 0u);
}

TEST(System, DeterministicForSameSeed) {
  auto run = [] {
    auto sys = make_workload_system(quick(prefetch::SchemeKind::kCamps, 20000),
                                    "LM1");
    return sys->run();
  };
  const RunResults a = run();
  const RunResults b = run();
  EXPECT_DOUBLE_EQ(a.geomean_ipc, b.geomean_ipc);
  EXPECT_EQ(a.row_conflicts, b.row_conflicts);
  EXPECT_EQ(a.prefetches, b.prefetches);
  EXPECT_EQ(a.buffer_hits, b.buffer_hits);
  EXPECT_DOUBLE_EQ(a.energy_pj, b.energy_pj);
}

TEST(System, SeedChangesResults) {
  SystemConfig cfg = quick(prefetch::SchemeKind::kCamps, 20000);
  auto a = make_workload_system(cfg, "LM1")->run();
  cfg.seed = 2;
  auto b = make_workload_system(cfg, "LM1")->run();
  EXPECT_NE(a.row_conflicts, b.row_conflicts);
}

TEST(System, RunTwiceForbidden) {
  auto sys = make_workload_system(quick(prefetch::SchemeKind::kNone, 5000),
                                  "LM1");
  sys->run();
  EXPECT_DEATH(sys->run(), "once");
}

TEST(System, BaseSchemeHasNearZeroConflicts) {
  auto r = make_workload_system(quick(prefetch::SchemeKind::kBase), "MX1")
               ->run();
  EXPECT_LT(r.row_conflict_rate, 0.02)
      << "BASE precharges after every copy (Fig. 6)";
}

TEST(System, NoneSchemeDoesNotPrefetch) {
  auto r = make_workload_system(quick(prefetch::SchemeKind::kNone, 20000),
                                "LM2")
               ->run();
  EXPECT_EQ(r.prefetches, 0u);
  EXPECT_EQ(r.buffer_hits, 0u);
}

TEST(System, CampsModBeatsBaseOnMemoryIntensiveWork) {
  // The paper's headline direction, at reduced scale.
  const double base =
      make_workload_system(quick(prefetch::SchemeKind::kBase), "HM2")
          ->run()
          .geomean_ipc;
  const double camps_mod =
      make_workload_system(quick(prefetch::SchemeKind::kCampsMod), "HM2")
          ->run()
          .geomean_ipc;
  EXPECT_GT(camps_mod, base * 1.05);
}

TEST(System, HmWorkloadsHaveHigherMpkiThanLm) {
  const double hm =
      make_workload_system(quick(prefetch::SchemeKind::kNone), "HM1")
          ->run()
          .mpki;
  const double lm =
      make_workload_system(quick(prefetch::SchemeKind::kNone), "LM1")
          ->run()
          .mpki;
  EXPECT_GT(hm, lm);
}

TEST(System, MaxCyclesBoundsRuntime) {
  SystemConfig cfg = quick(prefetch::SchemeKind::kNone, 100000000);
  cfg.max_cycles = 50000;  // far too small to finish
  auto r = make_workload_system(cfg, "HM1")->run();
  EXPECT_TRUE(r.partial);
}

TEST(System, CustomTraceSources) {
  // The public API accepts arbitrary traces, not just Table II workloads.
  SystemConfig cfg = quick(prefetch::SchemeKind::kCampsMod, 10000);
  cfg.cores = 2;
  std::vector<std::unique_ptr<trace::TraceSource>> traces;
  for (u32 c = 0; c < 2; ++c) {
    trace::PatternParams p;
    p.region_bytes = u64{1} << 26;
    p.seed = c + 1;
    traces.push_back(std::make_unique<trace::SequentialStream>(
        p, cfg.pattern_geometry(), 64.0));
  }
  System sys(cfg, std::move(traces));
  const RunResults r = sys.run();
  EXPECT_EQ(r.cores.size(), 2u);
  EXPECT_GT(r.geomean_ipc, 0.0);
}

TEST(System, WrongTraceCountAsserts) {
  SystemConfig cfg = quick(prefetch::SchemeKind::kNone, 1000);
  std::vector<std::unique_ptr<trace::TraceSource>> traces;  // none for 8 cores
  EXPECT_DEATH(System(cfg, std::move(traces)), "one trace source per core");
}

// Every Table II workload runs clean under the flagship scheme.
class WorkloadSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadSweep, CompletesWithSaneMetrics) {
  auto r = make_workload_system(quick(prefetch::SchemeKind::kCampsMod, 20000),
                                GetParam())
               ->run();
  EXPECT_FALSE(r.partial) << GetParam();
  EXPECT_GT(r.geomean_ipc, 0.05) << GetParam();
  EXPECT_GT(r.mpki, 0.5) << GetParam();
  EXPECT_LE(r.row_conflict_rate, 1.0);
  EXPECT_GE(r.prefetch_accuracy, 0.0);
  EXPECT_LE(r.prefetch_accuracy, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Table2, WorkloadSweep,
                         ::testing::Values("HM1", "HM2", "HM3", "HM4", "LM1",
                                           "LM2", "LM3", "LM4", "MX1", "MX2",
                                           "MX3", "MX4"));

}  // namespace
}  // namespace camps::system
