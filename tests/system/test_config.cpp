#include "system/config.hpp"

#include <gtest/gtest.h>
#include <string>

namespace camps::system {
namespace {

TEST(SystemConfig, TableIDefaults) {
  const SystemConfig cfg = table1_config();
  EXPECT_EQ(cfg.cores, 8u);
  EXPECT_EQ(cfg.core.issue_width, 4u);
  EXPECT_EQ(cfg.caches.l1.size_bytes, 32u * 1024);
  EXPECT_EQ(cfg.caches.l1.ways, 2u);
  EXPECT_EQ(cfg.caches.l2.size_bytes, 256u * 1024);
  EXPECT_EQ(cfg.caches.l2.ways, 4u);
  EXPECT_EQ(cfg.caches.l3.size_bytes, 16u * 1024 * 1024);
  EXPECT_EQ(cfg.caches.l3.ways, 16u);
  EXPECT_EQ(cfg.caches.l3.line_bytes, 64u);
  EXPECT_EQ(cfg.hmc.geometry.vaults, 32u);
  EXPECT_EQ(cfg.hmc.geometry.banks_per_vault, 16u);
  EXPECT_EQ(cfg.hmc.geometry.row_bytes, 1024u);
  EXPECT_EQ(cfg.hmc.vault.read_queue, 32u);
  EXPECT_EQ(cfg.hmc.vault.write_queue, 32u);
  EXPECT_EQ(cfg.hmc.num_links, 4u);
  EXPECT_EQ(cfg.hmc.vault.buffer.entries, 16u);
  EXPECT_EQ(cfg.hmc.vault.buffer.hit_latency, 22u);
  EXPECT_EQ(cfg.hmc.vault.timing.tRCD, 11u);
  EXPECT_EQ(cfg.scheme, prefetch::SchemeKind::kCampsMod);
}

TEST(SystemConfig, SchemeParameterPropagates) {
  EXPECT_EQ(table1_config(prefetch::SchemeKind::kBase).scheme,
            prefetch::SchemeKind::kBase);
}

TEST(SystemConfig, PatternGeometryMatchesAddressMap) {
  const SystemConfig cfg = table1_config();
  const auto g = cfg.pattern_geometry();
  EXPECT_EQ(g.line_bytes, 64u);
  EXPECT_EQ(g.row_bytes, 1024u);
  EXPECT_EQ(g.same_bank_row_stride, u64{1} << 19);
}

TEST(SystemConfig, CoreSliceDividesCapacity) {
  const SystemConfig cfg = table1_config();
  EXPECT_EQ(cfg.core_slice_bytes(), (u64{8} << 30) / 8);
}

TEST(SystemConfig, OverridesApply) {
  auto cfg = ConfigFile::parse(
      "cores = 4\n"
      "seed = 99\n"
      "core.issue_width = 2\n"
      "core.warmup = 1000\n"
      "core.measure = 5000\n"
      "hmc.vaults = 16\n"
      "buffer.entries = 8\n"
      "camps.threshold = 6\n"
      "scheme = MMD\n");
  const SystemConfig out = apply_overrides(table1_config(), cfg);
  EXPECT_EQ(out.cores, 4u);
  EXPECT_EQ(out.seed, 99u);
  EXPECT_EQ(out.core.issue_width, 2u);
  EXPECT_EQ(out.core.warmup_instructions, 1000u);
  EXPECT_EQ(out.core.measure_instructions, 5000u);
  EXPECT_EQ(out.hmc.geometry.vaults, 16u);
  EXPECT_EQ(out.hmc.vault.buffer.entries, 8u);
  EXPECT_EQ(out.scheme_params.camps.utilization_threshold, 6u);
  EXPECT_EQ(out.scheme, prefetch::SchemeKind::kMmd);
}

TEST(SystemConfig, OverridesKeepDefaultsWhenAbsent) {
  const SystemConfig out =
      apply_overrides(table1_config(), ConfigFile::parse(""));
  EXPECT_EQ(out.cores, 8u);
  EXPECT_EQ(out.scheme, prefetch::SchemeKind::kCampsMod);
}

TEST(SystemConfig, BankOverrideKeepsVaultConsistent) {
  auto cfg = ConfigFile::parse("hmc.banks = 8\n");
  const SystemConfig out = apply_overrides(table1_config(), cfg);
  EXPECT_EQ(out.hmc.geometry.banks_per_vault, 8u);
  EXPECT_EQ(out.hmc.vault.banks, 8u);
}

TEST(SystemConfig, BadSchemeNameThrows) {
  auto cfg = ConfigFile::parse("scheme = turbo\n");
  EXPECT_THROW(apply_overrides(table1_config(), cfg), std::out_of_range);
}

TEST(SystemConfig, MisspelledKeyFailsLoudly) {
  // Regression: a typo'd key used to be silently ignored, leaving the
  // default in force — e.g. audits that never ran. It must throw, naming
  // the bad key and the intended one.
  auto cfg = ConfigFile::parse("audit_evry = 100000\n");
  try {
    apply_overrides(table1_config(), cfg);
    FAIL() << "misspelled key was accepted";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("audit_evry"), std::string::npos) << msg;
    EXPECT_NE(msg.find("audit_every"), std::string::npos) << msg;
  }
}

TEST(SystemConfig, FaultOverridesApply) {
  auto cfg = ConfigFile::parse(
      "[fault]\n"
      "link_crc_rate = 0.0001\n"
      "link_drop_rate = 0.001\n"
      "xbar_drop_rate = 0.002\n"
      "vault_stall_rate = 0.003\n"
      "vault_stall_ticks = 4800\n"
      "host_timeout_ticks = 96000\n"
      "host_backoff_ticks = 24000\n"
      "retry_budget = 5\n"
      "degrade_threshold = 8\n"
      "link_tokens = 64\n"
      "seed = 42\n");
  const SystemConfig out = apply_overrides(table1_config(), cfg);
  const fault::FaultConfig& f = out.hmc.fault;
  EXPECT_DOUBLE_EQ(f.link_crc_rate, 0.0001);
  EXPECT_DOUBLE_EQ(f.link_drop_rate, 0.001);
  EXPECT_DOUBLE_EQ(f.xbar_drop_rate, 0.002);
  EXPECT_DOUBLE_EQ(f.vault_stall_rate, 0.003);
  EXPECT_EQ(f.vault_stall_ticks, 4800u);
  EXPECT_EQ(f.host_timeout_ticks, 96000u);
  EXPECT_EQ(f.host_backoff_ticks, 24000u);
  EXPECT_EQ(f.host_retry_budget, 5u);
  EXPECT_EQ(f.vault_degrade_threshold, 8u);
  EXPECT_EQ(f.link_tokens, 64u);
  EXPECT_EQ(f.seed, 42u);
  EXPECT_TRUE(f.enabled());
}

TEST(SystemConfig, FaultsDisabledByDefault) {
  const SystemConfig out =
      apply_overrides(table1_config(), ConfigFile::parse(""));
  EXPECT_FALSE(out.hmc.fault.enabled());
}

}  // namespace
}  // namespace camps::system
