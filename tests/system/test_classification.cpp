// Calibration test for the SPEC CPU2006 substitution (DESIGN.md §2): the
// paper classifies benchmarks by L3 MPKI — HM means MPKI >= 20, LM means
// 1 <= MPKI < 20. The synthetic profiles must land in their classes when
// run through the Table I cache hierarchy.
//
// Note on bounds: at this test's reduced instruction budget the cold-miss
// tail (first touches of each working set) inflates MPKI relative to the
// long steady-state windows the paper measures, so LM accepts up to 25;
// the structural requirements are that every HM benchmark clears the HM
// bound with margin and sits far above every LM benchmark.
#include <gtest/gtest.h>
#include <memory>
#include <string>
#include <vector>

#include "system/system.hpp"
#include "trace/spec_profiles.hpp"

namespace camps::system {
namespace {

double measure_mpki(const trace::BenchmarkProfile& profile) {
  SystemConfig cfg = table1_config(prefetch::SchemeKind::kNone);
  cfg.core.warmup_instructions = 30000;
  cfg.core.measure_instructions = 100000;
  std::vector<std::unique_ptr<trace::TraceSource>> sources;
  for (u32 c = 0; c < cfg.cores; ++c) {
    sources.push_back(profile.make_source(500 + c, cfg.pattern_geometry()));
  }
  System sys(cfg, std::move(sources));
  return sys.run().mpki;
}

class ClassificationSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(ClassificationSweep, BenchmarkLandsInItsClass) {
  const auto& profile = trace::all_benchmarks()[GetParam()];
  const double mpki = measure_mpki(profile);
  if (profile.mem_class == trace::MemClass::kHigh) {
    EXPECT_GE(mpki, 30.0) << profile.name << " must be clearly HM";
  } else {
    EXPECT_GE(mpki, 1.0) << profile.name;
    EXPECT_LE(mpki, 25.0) << profile.name << " must be clearly LM";
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ClassificationSweep,
                         ::testing::Range<size_t>(0, 15));

TEST(Classification, EveryHmAboveEveryLm) {
  double min_hm = 1e9, max_lm = 0.0;
  std::string min_hm_name, max_lm_name;
  for (const auto& profile : trace::all_benchmarks()) {
    const double mpki = measure_mpki(profile);
    if (profile.mem_class == trace::MemClass::kHigh) {
      if (mpki < min_hm) {
        min_hm = mpki;
        min_hm_name = profile.name;
      }
    } else if (mpki > max_lm) {
      max_lm = mpki;
      max_lm_name = profile.name;
    }
  }
  EXPECT_GT(min_hm, 1.5 * max_lm)
      << "classes must separate clearly: weakest HM " << min_hm_name << " ("
      << min_hm << ") vs strongest LM " << max_lm_name << " (" << max_lm
      << ")";
}

}  // namespace
}  // namespace camps::system
