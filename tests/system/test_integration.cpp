// Cross-cutting integration behaviours at full-system scale.
#include <gtest/gtest.h>
#include <string>

#include "system/system.hpp"

namespace camps::system {
namespace {

SystemConfig quick(prefetch::SchemeKind scheme, u64 measure = 30000) {
  SystemConfig cfg = table1_config(scheme);
  cfg.core.warmup_instructions = measure / 5;
  cfg.core.measure_instructions = measure;
  return cfg;
}

TEST(Integration, RefreshCostsPerformance) {
  SystemConfig with = quick(prefetch::SchemeKind::kNone);
  SystemConfig without = quick(prefetch::SchemeKind::kNone);
  without.hmc.vault.refresh_enabled = false;
  const auto r_with = make_workload_system(with, "HM1")->run();
  const auto r_without = make_workload_system(without, "HM1")->run();
  // Refresh steals bank time: never faster, usually measurably slower.
  EXPECT_LE(r_with.geomean_ipc, r_without.geomean_ipc * 1.005);
}

TEST(Integration, LinkUtilizationSaneAndDirectional) {
  const auto r =
      make_workload_system(quick(prefetch::SchemeKind::kNone), "HM2")->run();
  EXPECT_GT(r.link_down_utilization, 0.0);
  EXPECT_LT(r.link_down_utilization, 1.0);
  EXPECT_GT(r.link_up_utilization, 0.0);
  EXPECT_LT(r.link_up_utilization, 1.0);
  // Read responses carry 5 flits vs 1 request flit; writes add 5-flit
  // requests, but reads dominate -> upstream busier than downstream.
  EXPECT_GT(r.link_up_utilization, r.link_down_utilization);
}

TEST(Integration, EnergyScalesWithWork) {
  const auto small =
      make_workload_system(quick(prefetch::SchemeKind::kNone, 20000), "MX1")
          ->run();
  const auto large =
      make_workload_system(quick(prefetch::SchemeKind::kNone, 60000), "MX1")
          ->run();
  EXPECT_GT(large.energy_pj, small.energy_pj * 1.5);
}

TEST(Integration, StatsRegistryCarriesVaultDetail) {
  auto sys = make_workload_system(quick(prefetch::SchemeKind::kCampsMod),
                                  "LM1");
  sys->run();
  const std::string dump = sys->stats().dump();
  EXPECT_NE(dump.find("vault0.queue_wait_cycles"), std::string::npos);
  EXPECT_NE(dump.find("vault31.rb_hit"), std::string::npos);
  EXPECT_GT(sys->stats().sum_matching("vault*.rb_hit") +
                sys->stats().sum_matching("vault*.rb_empty") +
                sys->stats().sum_matching("vault*.rb_conflict"),
            0u);
}

TEST(Integration, StreamSchemeRunsFullSystem) {
  const auto r =
      make_workload_system(quick(prefetch::SchemeKind::kStream), "LM1")->run();
  EXPECT_FALSE(r.partial);
  EXPECT_EQ(r.scheme, "STREAM");
  EXPECT_GT(r.geomean_ipc, 0.0);
}

TEST(Integration, ClosedPagePolicyKillsConflicts) {
  SystemConfig open_cfg = quick(prefetch::SchemeKind::kNone);
  SystemConfig closed_cfg = quick(prefetch::SchemeKind::kNone);
  closed_cfg.hmc.vault.page_policy = hmc::PagePolicy::kClosed;
  const auto open_r = make_workload_system(open_cfg, "HM3")->run();
  const auto closed_r = make_workload_system(closed_cfg, "HM3")->run();
  EXPECT_LT(closed_r.row_conflict_rate, open_r.row_conflict_rate * 0.5);
}

// Robustness sweep: off-default geometries and sizes must simulate cleanly
// (no asserts, no deadlocks, sane results), since every ablation bench
// depends on them.
struct ConfigCase {
  u32 vaults;
  u32 banks;
  u32 links;
  u32 buffer_entries;
  hmc::PagePolicy policy;
};

class ConfigSweep : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(ConfigSweep, RunsClean) {
  const ConfigCase& c = GetParam();
  SystemConfig cfg = quick(prefetch::SchemeKind::kCampsMod, 15000);
  cfg.hmc.geometry.vaults = c.vaults;
  cfg.hmc.geometry.banks_per_vault = c.banks;
  cfg.hmc.vault.banks = c.banks;
  cfg.hmc.num_links = c.links;
  cfg.hmc.vault.buffer.entries = c.buffer_entries;
  cfg.hmc.vault.page_policy = c.policy;
  const auto r = make_workload_system(cfg, "MX2")->run();
  EXPECT_FALSE(r.partial);
  EXPECT_GT(r.geomean_ipc, 0.01);
  EXPECT_LE(r.row_conflict_rate, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConfigSweep,
    ::testing::Values(ConfigCase{32, 16, 4, 16, hmc::PagePolicy::kOpen},
                      ConfigCase{16, 16, 4, 16, hmc::PagePolicy::kOpen},
                      ConfigCase{8, 8, 2, 8, hmc::PagePolicy::kOpen},
                      ConfigCase{32, 16, 1, 4, hmc::PagePolicy::kOpen},
                      ConfigCase{32, 16, 4, 64, hmc::PagePolicy::kOpen},
                      ConfigCase{32, 32, 4, 16, hmc::PagePolicy::kOpen},
                      ConfigCase{32, 16, 4, 16, hmc::PagePolicy::kClosed},
                      ConfigCase{64, 8, 8, 16, hmc::PagePolicy::kOpen}));

TEST(Integration, MemoryLatencyDominatedByDramNotLinks) {
  // A sanity bound on the latency budget: at low load the round trip is a
  // few hundred CPU cycles, far below a microsecond.
  const auto r =
      make_workload_system(quick(prefetch::SchemeKind::kNone, 20000), "LM4")
          ->run();
  EXPECT_GT(r.mem_latency_cycles, 100.0);
  EXPECT_LT(r.mem_latency_cycles, 3000.0);
}

}  // namespace
}  // namespace camps::system
