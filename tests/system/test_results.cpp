#include "system/results.hpp"


#include <cmath>
#include <gtest/gtest.h>
#include <string>
#include <vector>

namespace camps::system {
namespace {

TEST(GeometricMean, Basics) {
  EXPECT_DOUBLE_EQ(geometric_mean({4.0}), 4.0);
  EXPECT_NEAR(geometric_mean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geometric_mean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(GeometricMean, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(geometric_mean({}), 0.0);
}

TEST(GeometricMean, NonPositiveElementYieldsZero) {
  EXPECT_DOUBLE_EQ(geometric_mean({1.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(geometric_mean({1.0, -2.0}), 0.0);
}

TEST(GeometricMean, BelowArithmeticMean) {
  const std::vector<double> v{0.5, 1.0, 2.0, 8.0};
  double arith = 0;
  for (double x : v) arith += x;
  arith /= static_cast<double>(v.size());
  EXPECT_LT(geometric_mean(v), arith);
}

TEST(RunResults, SummaryContainsHeadlines) {
  RunResults r;
  r.scheme = "CAMPS-MOD";
  r.geomean_ipc = 1.25;
  r.row_conflict_rate = 0.33;
  r.prefetch_accuracy = 0.705;
  const std::string s = r.summary();
  EXPECT_NE(s.find("CAMPS-MOD"), std::string::npos);
  EXPECT_NE(s.find("1.25"), std::string::npos);
  EXPECT_NE(s.find("70.5"), std::string::npos);
}

TEST(RunResults, PartialFlagVisible) {
  RunResults r;
  r.scheme = "BASE";
  r.partial = true;
  EXPECT_NE(r.summary().find("PARTIAL"), std::string::npos);
}

}  // namespace
}  // namespace camps::system
