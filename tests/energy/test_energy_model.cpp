#include "energy/energy_model.hpp"

#include <gtest/gtest.h>
#include <string>

namespace camps::energy {
namespace {

TEST(EnergyModel, StartsAtZero) {
  EnergyModel e;
  EXPECT_DOUBLE_EQ(e.dynamic_pj(), 0.0);
  for (size_t i = 0; i < kEnergyEventCount; ++i) {
    EXPECT_EQ(e.count(static_cast<EnergyEvent>(i)), 0u);
  }
}

TEST(EnergyModel, AccumulatesEvents) {
  EnergyModel e;
  e.add(EnergyEvent::kActivate);
  e.add(EnergyEvent::kActivate, 4);
  EXPECT_EQ(e.count(EnergyEvent::kActivate), 5u);
}

TEST(EnergyModel, DynamicEnergyUsesPerEventCosts) {
  EnergyParams p;
  EnergyModel e(p);
  e.add(EnergyEvent::kActivate, 2);
  e.add(EnergyEvent::kRowFetch, 1);
  const double expect =
      2 * p.pj_per_event[static_cast<size_t>(EnergyEvent::kActivate)] +
      p.pj_per_event[static_cast<size_t>(EnergyEvent::kRowFetch)];
  EXPECT_DOUBLE_EQ(e.dynamic_pj(), expect);
}

TEST(EnergyModel, BackgroundScalesWithTime) {
  EnergyParams p;
  p.background_watts = 0.5;  // 0.5 W = 500 pJ/ns
  EnergyModel e(p);
  EXPECT_DOUBLE_EQ(e.background_pj(100.0), 50000.0);
  EXPECT_DOUBLE_EQ(e.total_pj(100.0), 50000.0);
}

TEST(EnergyModel, RowMovesCostMoreThanLineOps) {
  const EnergyParams p;
  EXPECT_GT(p.pj_per_event[static_cast<size_t>(EnergyEvent::kRowFetch)],
            4 * p.pj_per_event[static_cast<size_t>(EnergyEvent::kReadLine)]);
  EXPECT_LT(p.pj_per_event[static_cast<size_t>(EnergyEvent::kRowFetch)],
            16 * p.pj_per_event[static_cast<size_t>(EnergyEvent::kReadLine)])
      << "the wide TSV bus amortizes per-line overheads";
}

TEST(EnergyModel, BreakdownNamesAllEvents) {
  EnergyModel e;
  e.add(EnergyEvent::kRefresh, 3);
  const std::string b = e.breakdown();
  EXPECT_NE(b.find("refresh: 3 events"), std::string::npos);
  EXPECT_NE(b.find("activate"), std::string::npos);
  EXPECT_NE(b.find("link_flit"), std::string::npos);
}

TEST(EnergyModel, ResetZeroes) {
  EnergyModel e;
  e.add(EnergyEvent::kPrecharge, 7);
  e.reset();
  EXPECT_EQ(e.count(EnergyEvent::kPrecharge), 0u);
  EXPECT_DOUBLE_EQ(e.dynamic_pj(), 0.0);
}

TEST(EnergyModel, EventNamesStable) {
  EXPECT_STREQ(to_string(EnergyEvent::kActivate), "activate");
  EXPECT_STREQ(to_string(EnergyEvent::kRowWriteback), "row_writeback");
  EXPECT_STREQ(to_string(EnergyEvent::kBufferAccess), "buffer_access");
}

}  // namespace
}  // namespace camps::energy
