#include "trace/trace_io.hpp"


#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <string>
#include <vector>

namespace camps::trace {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/camps_trace_test.ctrc";
  void TearDown() override { std::remove(path_.c_str()); }
};

std::vector<TraceRecord> sample(size_t n) {
  std::vector<TraceRecord> v;
  for (size_t i = 0; i < n; ++i) {
    v.push_back({static_cast<u32>(i % 7), 0x1000 + 64 * i,
                 i % 3 == 0 ? AccessType::kWrite : AccessType::kRead});
  }
  return v;
}

TEST_F(TraceIoTest, RoundTripSmall) {
  const auto records = sample(10);
  write_trace_file(path_, records);
  EXPECT_EQ(read_trace_file(path_), records);
}

TEST_F(TraceIoTest, RoundTripEmpty) {
  write_trace_file(path_, {});
  EXPECT_TRUE(read_trace_file(path_).empty());
}

TEST_F(TraceIoTest, RoundTripLarge) {
  const auto records = sample(50000);
  write_trace_file(path_, records);
  EXPECT_EQ(read_trace_file(path_), records);
}

TEST_F(TraceIoTest, ExtremeFieldValues) {
  const std::vector<TraceRecord> records = {
      {0xFFFFFFFFu, 0xFFFFFFFFFFFFFFC0ull, AccessType::kWrite},
      {0, 0, AccessType::kRead},
  };
  write_trace_file(path_, records);
  EXPECT_EQ(read_trace_file(path_), records);
}

TEST_F(TraceIoTest, StreamingSourceMatchesBulkRead) {
  const auto records = sample(1000);
  write_trace_file(path_, records);
  TraceFileSource src(path_);
  EXPECT_EQ(src.record_count(), records.size());
  for (const auto& want : records) {
    auto got = src.next();
    ASSERT_TRUE(got);
    EXPECT_EQ(*got, want);
  }
  EXPECT_FALSE(src.next().has_value());
}

TEST_F(TraceIoTest, StreamingSourceReset) {
  write_trace_file(path_, sample(5));
  TraceFileSource src(path_);
  src.next();
  src.next();
  src.reset();
  size_t n = 0;
  while (src.next()) ++n;
  EXPECT_EQ(n, 5u);
}

TEST_F(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW(read_trace_file("/nonexistent/x.ctrc"), std::runtime_error);
  EXPECT_THROW(TraceFileSource("/nonexistent/x.ctrc"), std::runtime_error);
}

TEST_F(TraceIoTest, BadMagicThrows) {
  std::ofstream(path_, std::ios::binary) << "NOTATRACEFILE___________";
  EXPECT_THROW(read_trace_file(path_), std::runtime_error);
}

TEST_F(TraceIoTest, TruncatedBodyThrows) {
  write_trace_file(path_, sample(10));
  // Chop the last record in half.
  std::ifstream in(path_, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  data.resize(data.size() - 8);
  std::ofstream(path_, std::ios::binary | std::ios::trunc) << data;
  EXPECT_THROW(read_trace_file(path_), std::runtime_error);
}

TEST_F(TraceIoTest, CorruptPadBytesThrow) {
  write_trace_file(path_, sample(2));
  std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
  // Header is 20 bytes; pad bytes of record 0 are at offset 20+5..20+7.
  f.seekp(26);
  f.put(static_cast<char>(0xAB));
  f.close();
  EXPECT_THROW(read_trace_file(path_), std::runtime_error);
}

TEST_F(TraceIoTest, CorruptTypeThrows) {
  write_trace_file(path_, sample(2));
  std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(24);  // type byte of record 0
  f.put(7);
  f.close();
  EXPECT_THROW(read_trace_file(path_), std::runtime_error);
}

TEST_F(TraceIoTest, UnsupportedVersionThrows) {
  write_trace_file(path_, sample(1));
  std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(8);  // version field
  f.put(99);
  f.close();
  EXPECT_THROW(read_trace_file(path_), std::runtime_error);
}

// --- malformed-input diagnostics -------------------------------------------

/// Runs `fn`, returning the std::runtime_error message it throws ("" if it
/// does not throw) so tests can pin the diagnostic text.
template <typename Fn>
std::string thrown_message(Fn&& fn) {
  try {
    fn();
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return {};
}

TEST_F(TraceIoTest, EmptyFileReportedAsEmptyNotBadMagic) {
  { std::ofstream out(path_, std::ios::binary); }
  const std::string msg = thrown_message([&] { read_trace_file(path_); });
  EXPECT_NE(msg.find("empty file"), std::string::npos) << msg;
  const std::string src_msg =
      thrown_message([&] { TraceFileSource src(path_); });
  EXPECT_NE(src_msg.find("empty file"), std::string::npos) << src_msg;
}

TEST_F(TraceIoTest, ShortHeaderReportedAsTruncatedHeader) {
  std::ofstream(path_, std::ios::binary) << "CAM";
  const std::string msg = thrown_message([&] { read_trace_file(path_); });
  EXPECT_NE(msg.find("truncated header"), std::string::npos) << msg;
}

TEST_F(TraceIoTest, TruncatedBodyNamesTheFailingRecord) {
  write_trace_file(path_, sample(10));
  std::ifstream in(path_, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  data.resize(data.size() - 8);  // chop the last record in half
  std::ofstream(path_, std::ios::binary | std::ios::trunc) << data;
  const std::string msg = thrown_message([&] { read_trace_file(path_); });
  EXPECT_NE(msg.find("record 10 of 10"), std::string::npos) << msg;
}

TEST_F(TraceIoTest, CorruptPadBytesNameTheFailingRecord) {
  write_trace_file(path_, sample(3));
  std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
  // 20-byte header + one 16-byte record; record 2's pad bytes start at
  // offset 20 + 16 + 5.
  f.seekp(41);
  f.put(static_cast<char>(0xAB));
  f.close();
  const std::string msg = thrown_message([&] { read_trace_file(path_); });
  EXPECT_NE(msg.find("pad bytes"), std::string::npos) << msg;
  EXPECT_NE(msg.find("record 2 of 3"), std::string::npos) << msg;
}

TEST_F(TraceIoTest, TrailingBytesAfterDeclaredCountThrow) {
  write_trace_file(path_, sample(3));
  std::ofstream(path_, std::ios::binary | std::ios::app) << '\x00';
  const std::string msg = thrown_message([&] { read_trace_file(path_); });
  EXPECT_NE(msg.find("trailing bytes"), std::string::npos) << msg;
}

TEST_F(TraceIoTest, StreamingSourceNamesTheFailingRecord) {
  write_trace_file(path_, sample(4));
  std::ifstream in(path_, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  data.resize(data.size() - 20);  // lose the last record and part of #3
  std::ofstream(path_, std::ios::binary | std::ios::trunc) << data;
  TraceFileSource src(path_);
  EXPECT_TRUE(src.next().has_value());
  EXPECT_TRUE(src.next().has_value());
  const std::string msg = thrown_message([&] { src.next(); });
  EXPECT_NE(msg.find("record 3 of 4"), std::string::npos) << msg;
}

// --- version 2 (compact varint-delta) --------------------------------------

TEST_F(TraceIoTest, V2RoundTripSmall) {
  const auto records = sample(10);
  write_trace_file_v2(path_, records);
  EXPECT_EQ(read_trace_file(path_), records);
}

TEST_F(TraceIoTest, V2RoundTripEmpty) {
  write_trace_file_v2(path_, {});
  EXPECT_TRUE(read_trace_file(path_).empty());
}

TEST_F(TraceIoTest, V2RoundTripLargeMixedDirections) {
  // Forward and backward jumps of varying magnitude.
  std::vector<TraceRecord> records;
  u64 x = 99;
  Addr addr = u64{1} << 33;
  for (int i = 0; i < 20000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const i64 delta = static_cast<i64>((x >> 20) % 4096) - 2048;
    addr = static_cast<Addr>(static_cast<i64>(addr) + delta * 64);
    records.push_back({static_cast<u32>(x % 17), addr,
                       (x & 1) ? AccessType::kWrite : AccessType::kRead});
  }
  write_trace_file_v2(path_, records);
  EXPECT_EQ(read_trace_file(path_), records);
}

TEST_F(TraceIoTest, V2StreamingSourceMatches) {
  const auto records = sample(500);
  write_trace_file_v2(path_, records);
  TraceFileSource src(path_);
  EXPECT_EQ(src.record_count(), records.size());
  for (const auto& want : records) {
    auto got = src.next();
    ASSERT_TRUE(got);
    EXPECT_EQ(*got, want);
  }
  EXPECT_FALSE(src.next().has_value());
  src.reset();
  size_t n = 0;
  while (src.next()) ++n;
  EXPECT_EQ(n, records.size());
}

TEST_F(TraceIoTest, V2CompressesSequentialTraces) {
  std::vector<TraceRecord> records;
  for (size_t i = 0; i < 10000; ++i) {
    records.push_back({2, 0x1000 + 64 * i, AccessType::kRead});
  }
  write_trace_file(path_, records);
  std::ifstream v1(path_, std::ios::binary | std::ios::ate);
  const auto v1_size = v1.tellg();
  write_trace_file_v2(path_, records);
  std::ifstream v2(path_, std::ios::binary | std::ios::ate);
  const auto v2_size = v2.tellg();
  EXPECT_LT(v2_size * 4, v1_size) << "sequential traces must compress >= 4x";
}

TEST_F(TraceIoTest, V2RejectsUnalignedAddresses) {
  EXPECT_THROW(
      write_trace_file_v2(path_, {{0, 0x1001, AccessType::kRead}}),
      std::runtime_error);
}

TEST_F(TraceIoTest, V2TruncatedBodyThrows) {
  write_trace_file_v2(path_, sample(100));
  std::ifstream in(path_, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  data.resize(data.size() / 2);
  std::ofstream(path_, std::ios::binary | std::ios::trunc) << data;
  EXPECT_THROW(read_trace_file(path_), std::runtime_error);
}

TEST_F(TraceIoTest, V2CorruptFlagsThrow) {
  write_trace_file_v2(path_, sample(2));
  std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(20);  // first record's flags byte (after the 20-byte header)
  f.put(static_cast<char>(0xF0));
  f.close();
  EXPECT_THROW(read_trace_file(path_), std::runtime_error);
}

}  // namespace
}  // namespace camps::trace
