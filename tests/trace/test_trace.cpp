#include "trace/trace.hpp"

#include <gtest/gtest.h>
#include <vector>

namespace camps::trace {
namespace {

std::vector<TraceRecord> sample_records() {
  return {
      {2, 0x1000, AccessType::kRead},
      {0, 0x1040, AccessType::kWrite},
      {5, 0x1000, AccessType::kRead},
  };
}

TEST(VectorTraceSource, ReplaysInOrder) {
  VectorTraceSource src(sample_records());
  auto a = src.next();
  auto b = src.next();
  auto c = src.next();
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(a->addr, 0x1000u);
  EXPECT_EQ(b->type, AccessType::kWrite);
  EXPECT_EQ(c->gap, 5u);
  EXPECT_FALSE(src.next().has_value());
}

TEST(VectorTraceSource, ResetRewinds) {
  VectorTraceSource src(sample_records());
  src.next();
  src.next();
  src.reset();
  auto a = src.next();
  ASSERT_TRUE(a);
  EXPECT_EQ(a->addr, 0x1000u);
}

TEST(VectorTraceSource, EmptyTraceEndsImmediately) {
  VectorTraceSource src({});
  EXPECT_FALSE(src.next().has_value());
}

TEST(Collect, StopsAtMaxOrEnd) {
  VectorTraceSource src(sample_records());
  EXPECT_EQ(collect(src, 2).size(), 2u);
  src.reset();
  EXPECT_EQ(collect(src, 100).size(), 3u);
}

TEST(Summarize, CountsEverything) {
  const auto s = summarize(sample_records());
  EXPECT_EQ(s.records, 3u);
  EXPECT_EQ(s.reads, 2u);
  EXPECT_EQ(s.writes, 1u);
  // instructions = gaps (2+0+5) + 3 accesses = 10
  EXPECT_EQ(s.instructions, 10u);
  // 0x1000 and 0x1040 are distinct 64 B lines; the third repeats the first.
  EXPECT_EQ(s.distinct_lines, 2u);
  EXPECT_DOUBLE_EQ(s.accesses_per_kilo_instr, 300.0);
}

TEST(Summarize, EmptyIsAllZero) {
  const auto s = summarize({});
  EXPECT_EQ(s.records, 0u);
  EXPECT_EQ(s.instructions, 0u);
  EXPECT_DOUBLE_EQ(s.accesses_per_kilo_instr, 0.0);
}

TEST(TraceRecord, EqualityCoversAllFields) {
  const TraceRecord a{1, 0x40, AccessType::kRead};
  EXPECT_EQ(a, (TraceRecord{1, 0x40, AccessType::kRead}));
  EXPECT_NE(a, (TraceRecord{2, 0x40, AccessType::kRead}));
  EXPECT_NE(a, (TraceRecord{1, 0x80, AccessType::kRead}));
  EXPECT_NE(a, (TraceRecord{1, 0x40, AccessType::kWrite}));
}

}  // namespace
}  // namespace camps::trace
