#include "workload/workloads.hpp"

#include <array>
#include <gtest/gtest.h>
#include <string>

namespace camps::workload {
namespace {

TEST(Workloads, TwelveWorkloadsInPaperOrder) {
  const auto& all = table2_workloads();
  ASSERT_EQ(all.size(), 12u);
  const char* expected[] = {"HM1", "HM2", "HM3", "HM4", "LM1", "LM2",
                            "LM3", "LM4", "MX1", "MX2", "MX3", "MX4"};
  for (size_t i = 0; i < 12; ++i) EXPECT_EQ(all[i].id, expected[i]);
}

TEST(Workloads, LookupAndUnknownThrows) {
  EXPECT_EQ(workload("HM3").id, "HM3");
  EXPECT_THROW(workload("HM9"), std::out_of_range);
}

TEST(Workloads, ClassesMatchPrefix) {
  for (const auto& w : table2_workloads()) {
    if (w.id.starts_with("HM")) {
      EXPECT_EQ(w.cls, WorkloadClass::kHM);
    }
    if (w.id.starts_with("LM")) {
      EXPECT_EQ(w.cls, WorkloadClass::kLM);
    }
    if (w.id.starts_with("MX")) {
      EXPECT_EQ(w.cls, WorkloadClass::kMX);
    }
  }
}

TEST(Workloads, HmWorkloadsUseOnlyHighBenchmarks) {
  for (const auto& w : table2_workloads()) {
    if (w.cls != WorkloadClass::kHM) continue;
    for (const auto& name : w.benchmarks) {
      EXPECT_EQ(trace::benchmark(name).mem_class, trace::MemClass::kHigh)
          << w.id << "/" << name;
    }
  }
}

TEST(Workloads, LmWorkloadsUseOnlyLowBenchmarks) {
  for (const auto& w : table2_workloads()) {
    if (w.cls != WorkloadClass::kLM) continue;
    for (const auto& name : w.benchmarks) {
      EXPECT_EQ(trace::benchmark(name).mem_class, trace::MemClass::kLow)
          << w.id << "/" << name;
    }
  }
}

TEST(Workloads, MxWorkloadsMixFourAndFour) {
  for (const auto& w : table2_workloads()) {
    if (w.cls != WorkloadClass::kMX) continue;
    int hm = 0, lm = 0;
    for (const auto& name : w.benchmarks) {
      (trace::benchmark(name).mem_class == trace::MemClass::kHigh ? hm : lm)++;
    }
    EXPECT_EQ(hm, 4) << w.id;
    EXPECT_EQ(lm, 4) << w.id;
  }
}

TEST(Workloads, Table2FirstRowVerbatim) {
  const auto& hm1 = workload("HM1");
  const std::array<std::string, 8> want = {"bwaves", "gems", "gcc", "lbm",
                                           "bwaves", "gcc", "lbm", "gems"};
  EXPECT_EQ(hm1.benchmarks, want);
}

TEST(Workloads, MakeSourcesGivesEightDistinctStreams) {
  const auto& hm1 = workload("HM1");
  auto sources = hm1.make_sources(1, trace::PatternGeometry{});
  ASSERT_EQ(sources.size(), 8u);
  // Cores 0 and 4 both run bwaves but must not produce identical streams.
  const auto a = trace::collect(*sources[0], 300);
  const auto b = trace::collect(*sources[4], 300);
  EXPECT_NE(a, b);
}

TEST(Workloads, MakeSourcesDeterministicPerSeed) {
  const auto& mx2 = workload("MX2");
  auto s1 = mx2.make_sources(9, trace::PatternGeometry{});
  auto s2 = mx2.make_sources(9, trace::PatternGeometry{});
  for (size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(trace::collect(*s1[i], 200), trace::collect(*s2[i], 200));
  }
}

TEST(Workloads, EveryBenchmarkNameResolves) {
  for (const auto& w : table2_workloads()) {
    for (const auto& name : w.benchmarks) {
      EXPECT_NO_THROW(trace::benchmark(name)) << w.id << "/" << name;
    }
  }
}

}  // namespace
}  // namespace camps::workload
