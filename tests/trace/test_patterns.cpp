#include "trace/patterns.hpp"


#include <gtest/gtest.h>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

namespace camps::trace {
namespace {

PatternGeometry geom() { return PatternGeometry{}; }

PatternParams base_params(u64 seed = 1) {
  PatternParams p;
  p.base = 0;
  p.region_bytes = u64{1} << 24;  // 16 MiB
  p.mean_gap = 2.0;
  p.write_ratio = 0.25;
  p.seed = seed;
  return p;
}

template <typename Pattern, typename... Args>
std::vector<TraceRecord> draw(size_t n, Args&&... args) {
  Pattern p(std::forward<Args>(args)...);
  return collect(p, n);
}

// --- generic invariants, checked for every pattern type ------------------

template <typename MakeFn>
void check_common_invariants(MakeFn make) {
  auto src = make(base_params(3));
  const auto recs = collect(*src, 5000);
  ASSERT_EQ(recs.size(), 5000u);
  const PatternParams p = base_params(3);
  for (const auto& r : recs) {
    EXPECT_EQ(r.addr % 64, 0u) << "addresses must be line-aligned";
    EXPECT_GE(r.addr, p.base);
    EXPECT_LT(r.addr, p.base + p.region_bytes);
  }
  // Write ratio within loose statistical bounds.
  const auto s = summarize(recs);
  EXPECT_NEAR(static_cast<double>(s.writes) / static_cast<double>(s.records),
              p.write_ratio, 0.05);
  // Determinism: same seed reproduces the identical stream.
  auto src2 = make(base_params(3));
  EXPECT_EQ(collect(*src2, 5000), recs);
  // reset() replays from the start.
  src->reset();
  EXPECT_EQ(collect(*src, 5000), recs);
}

TEST(SequentialStream, CommonInvariants) {
  check_common_invariants([](const PatternParams& p) {
    return std::make_unique<SequentialStream>(p, geom(), 32.0);
  });
}

TEST(HotRowPattern, CommonInvariants) {
  check_common_invariants([](const PatternParams& p) {
    return std::make_unique<HotRowPattern>(p, geom(), 32, 8.0, 0.1);
  });
}

TEST(ConflictStreams, CommonInvariants) {
  check_common_invariants([](const PatternParams& p) {
    return std::make_unique<ConflictStreams>(p, geom(), 4, 4, 8);
  });
}

TEST(StridedPattern, CommonInvariants) {
  check_common_invariants([](const PatternParams& p) {
    return std::make_unique<StridedPattern>(p, geom(), 256);
  });
}

TEST(RandomPattern, CommonInvariants) {
  check_common_invariants([](const PatternParams& p) {
    return std::make_unique<RandomPattern>(p, geom());
  });
}

// --- pattern-specific structure -------------------------------------------

TEST(SequentialStream, RunsAreSequentialLines) {
  SequentialStream s(base_params(), geom(), 1000.0);  // very long runs
  const auto recs = collect(s, 500);
  size_t sequential_steps = 0;
  for (size_t i = 1; i < recs.size(); ++i) {
    if (recs[i].addr == recs[i - 1].addr + 64) ++sequential_steps;
  }
  // With mean run 1000, nearly every step is sequential.
  EXPECT_GT(sequential_steps, 480u);
}

TEST(SequentialStream, GapMeanMatchesParameter) {
  PatternParams p = base_params();
  p.mean_gap = 5.0;
  SequentialStream s(p, geom(), 32.0);
  const auto recs = collect(s, 20000);
  double total = 0;
  for (const auto& r : recs) total += r.gap;
  EXPECT_NEAR(total / static_cast<double>(recs.size()), 5.0, 0.5);
}

TEST(SequentialStream, ZeroGapMeanGivesZeroGaps) {
  PatternParams p = base_params();
  p.mean_gap = 0.0;
  SequentialStream s(p, geom(), 32.0);
  for (const auto& r : collect(s, 100)) EXPECT_EQ(r.gap, 0u);
}

TEST(HotRowPattern, ConcentratesOnFewRows) {
  HotRowPattern h(base_params(), geom(), /*hot_rows=*/8, /*mean_reuse=*/16.0,
                  /*cold_ratio=*/0.0);
  const auto recs = collect(h, 4000);
  std::map<Addr, u64> per_row;
  for (const auto& r : recs) ++per_row[r.addr / 1024];
  // Hot set rotates slowly; the top-8 rows must still dominate.
  std::vector<u64> counts;
  for (auto& [row, c] : per_row) counts.push_back(c);
  std::sort(counts.rbegin(), counts.rend());
  u64 top8 = 0;
  for (size_t i = 0; i < std::min<size_t>(8, counts.size()); ++i) {
    top8 += counts[i];
  }
  EXPECT_GT(top8, recs.size() * 3 / 5);
}

TEST(HotRowPattern, ColdRatioProducesScatter) {
  HotRowPattern h(base_params(), geom(), 4, 8.0, /*cold_ratio=*/0.5);
  const auto recs = collect(h, 4000);
  std::set<Addr> rows;
  for (const auto& r : recs) rows.insert(r.addr / 1024);
  EXPECT_GT(rows.size(), 500u);  // cold accesses spray over the region
}

TEST(ConflictStreams, AlternatesRowsWithinSameBankLane) {
  const auto g = geom();
  ConflictStreams c(base_params(), g, /*streams=*/2, /*accesses_per_row=*/1,
                    /*banks_covered=*/1);
  const auto recs = collect(c, 100);
  // With one bank lane and two walkers issuing alternately, consecutive
  // accesses must differ by a multiple of the same-bank row stride —
  // i.e. same bank, different row: a guaranteed row-buffer conflict.
  for (size_t i = 1; i < recs.size(); ++i) {
    const Addr a = recs[i - 1].addr, b = recs[i].addr;
    const Addr delta = a > b ? a - b : b - a;
    EXPECT_EQ(delta % g.same_bank_row_stride, 0u)
        << "i=" << i << " a=" << a << " b=" << b;
    EXPECT_NE(delta, 0u);
  }
}

TEST(ConflictStreams, AccessesPerRowHonored) {
  const auto g = geom();
  PatternParams p = base_params();
  p.region_bytes = u64{1} << 26;
  ConflictStreams c(p, g, 2, /*accesses_per_row=*/4, 1);
  const auto recs = collect(c, 64);
  // Each walker contributes 4 accesses per row before advancing; count
  // accesses per row and confirm the mode is 4.
  std::map<Addr, int> per_row;
  for (const auto& r : recs) ++per_row[r.addr / 1024];
  std::map<int, int> histogram;
  for (auto& [row, cnt] : per_row) ++histogram[cnt];
  EXPECT_GE(histogram[4], 6);
}

TEST(ConflictStreams, BurstsAreSpatialWithinOneRow) {
  const auto g = geom();
  // burst 3, 6 accesses/row: each turn issues 3 consecutive lines of one
  // walker's row before yielding.
  ConflictStreams c(base_params(), g, 2, 6, 1, 3);
  const auto recs = collect(c, 60);
  int within_row_steps = 0, row_switches = 0;
  for (size_t i = 1; i < recs.size(); ++i) {
    const Addr row_a = recs[i - 1].addr / 1024;
    const Addr row_b = recs[i].addr / 1024;
    if (row_a == row_b) {
      ++within_row_steps;
      EXPECT_EQ(recs[i].addr - recs[i - 1].addr, 64u)
          << "burst lines are consecutive";
    } else {
      ++row_switches;
    }
  }
  // Per 3-access burst: 2 within-row steps then a switch.
  EXPECT_NEAR(static_cast<double>(within_row_steps) / row_switches, 2.0, 0.5);
}

TEST(ConflictStreams, InstancesDecorrelateByLaneOffset) {
  const auto g = geom();
  ConflictStreams a(base_params(1), g, 2, 4, 4);
  ConflictStreams b(base_params(2), g, 2, 4, 4);
  const auto ra = collect(a, 50), rb = collect(b, 50);
  size_t same = 0;
  for (size_t i = 0; i < ra.size(); ++i) {
    if (ra[i].addr == rb[i].addr) ++same;
  }
  EXPECT_LT(same, 10u) << "different seeds must hit different lanes";
}

TEST(HotRowPattern, ActiveLinesRestrictsCoverage) {
  HotRowPattern h(base_params(), geom(), /*hot_rows=*/4, /*mean_reuse=*/64.0,
                  /*cold_ratio=*/0.0, /*active_lines=*/4);
  const auto recs = collect(h, 4000);
  std::map<Addr, std::set<Addr>> lines_per_row;
  for (const auto& r : recs) {
    lines_per_row[r.addr / 1024].insert(r.addr % 1024 / 64);
  }
  // Every row (hot set rotates slowly, so a few extra rows may appear)
  // exposes at most 4 distinct lines.
  for (const auto& [row, lines] : lines_per_row) {
    EXPECT_LE(lines.size(), 4u) << "row " << row;
  }
}

TEST(HotRowPattern, ActiveLinesZeroMeansAllLines) {
  HotRowPattern h(base_params(), geom(), 2, 512.0, 0.0, 0);
  const auto recs = collect(h, 4000);
  std::map<Addr, std::set<Addr>> lines_per_row;
  for (const auto& r : recs) {
    lines_per_row[r.addr / 1024].insert(r.addr % 1024 / 64);
  }
  size_t max_lines = 0;
  for (const auto& [row, lines] : lines_per_row) {
    max_lines = std::max(max_lines, lines.size());
  }
  EXPECT_EQ(max_lines, 16u);
}

TEST(StridedPattern, ExactStride) {
  StridedPattern s(base_params(), geom(), 4096);
  const auto recs = collect(s, 100);
  for (size_t i = 1; i < recs.size(); ++i) {
    if (recs[i].addr > recs[i - 1].addr) {  // ignore the wrap
      EXPECT_EQ(recs[i].addr - recs[i - 1].addr, 4096u);
    }
  }
}

TEST(StridedPattern, StrideBelowLineClampsToLine) {
  StridedPattern s(base_params(), geom(), 1);
  const auto recs = collect(s, 10);
  EXPECT_EQ(recs[1].addr - recs[0].addr, 64u);
}

TEST(StridedPattern, WrapsInsideRegion) {
  PatternParams p = base_params();
  p.region_bytes = 1 << 20;
  StridedPattern s(p, geom(), 4096);
  const auto recs = collect(s, 1000);
  for (const auto& r : recs) EXPECT_LT(r.addr, p.base + p.region_bytes);
}

TEST(RandomPattern, CoversRegionBroadly) {
  RandomPattern r(base_params(), geom());
  const auto recs = collect(r, 10000);
  std::set<Addr> rows;
  for (const auto& rec : recs) rows.insert(rec.addr / 1024);
  EXPECT_GT(rows.size(), 4000u);  // 16 MiB region = 16384 rows
}

TEST(MixturePattern, RespectsWeights) {
  // Two strided patterns in disjoint regions make components identifiable.
  PatternParams a = base_params(5);
  a.base = 0;
  PatternParams b = base_params(6);
  b.base = u64{1} << 30;
  std::vector<MixturePattern::Component> comps;
  comps.push_back({0.8, std::make_unique<StridedPattern>(a, geom(), 64)});
  comps.push_back({0.2, std::make_unique<StridedPattern>(b, geom(), 64)});
  MixturePattern mix(std::move(comps), 99);
  const auto recs = collect(mix, 20000);
  size_t in_a = 0;
  for (const auto& r : recs) {
    if (r.addr < (u64{1} << 30)) ++in_a;
  }
  EXPECT_NEAR(static_cast<double>(in_a) / static_cast<double>(recs.size()),
              0.8, 0.02);
}

TEST(MixturePattern, ResetReplaysIdentically) {
  std::vector<MixturePattern::Component> comps;
  comps.push_back(
      {1.0, std::make_unique<RandomPattern>(base_params(7), geom())});
  MixturePattern mix(std::move(comps), 3);
  const auto first = collect(mix, 200);
  mix.reset();
  EXPECT_EQ(collect(mix, 200), first);
}

TEST(PatternGeometry, DefaultsMatchTableI) {
  const PatternGeometry g;
  EXPECT_EQ(g.line_bytes, 64u);
  EXPECT_EQ(g.row_bytes, 1024u);
  EXPECT_EQ(g.lines_per_row(), 16u);
  // 64 B x 16 cols x 32 vaults x 16 banks = 512 KiB
  EXPECT_EQ(g.same_bank_row_stride, u64{1} << 19);
}

// Seeds sweep: different seeds must give different streams for every
// stochastic pattern.
class PatternSeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(PatternSeedSweep, SeedsDecorrelate) {
  const int kind = GetParam();
  auto make = [&](u64 seed) -> std::unique_ptr<TraceSource> {
    const PatternParams p = base_params(seed);
    switch (kind) {
      case 0: return std::make_unique<SequentialStream>(p, geom(), 16.0);
      case 1: return std::make_unique<HotRowPattern>(p, geom(), 16, 8.0, 0.1);
      case 2: return std::make_unique<RandomPattern>(p, geom());
      default: return std::make_unique<StridedPattern>(p, geom(), 128);
    }
  };
  auto a = make(1), b = make(2);
  const auto ra = collect(*a, 300), rb = collect(*b, 300);
  if (kind == 3) {
    // Strided is deterministic in addresses; gaps/types still differ.
    EXPECT_NE(ra, rb);
  } else {
    size_t same_addr = 0;
    for (size_t i = 0; i < ra.size(); ++i) {
      if (ra[i].addr == rb[i].addr) ++same_addr;
    }
    EXPECT_LT(same_addr, 150u);
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, PatternSeedSweep, ::testing::Range(0, 4));

}  // namespace
}  // namespace camps::trace
