#include "trace/spec_profiles.hpp"


#include <gtest/gtest.h>
#include <set>
#include <string>

namespace camps::trace {
namespace {

TEST(SpecProfiles, FifteenBenchmarks) {
  EXPECT_EQ(all_benchmarks().size(), 15u);
}

TEST(SpecProfiles, EightHighSevenLow) {
  size_t hm = 0, lm = 0;
  for (const auto& b : all_benchmarks()) {
    (b.mem_class == MemClass::kHigh ? hm : lm)++;
  }
  EXPECT_EQ(hm, 8u);
  EXPECT_EQ(lm, 7u);
}

TEST(SpecProfiles, NamesUniqueAndLookupWorks) {
  std::set<std::string> names;
  for (const auto& b : all_benchmarks()) {
    EXPECT_TRUE(names.insert(b.name).second) << "duplicate: " << b.name;
    EXPECT_EQ(&benchmark(b.name), &b);
  }
}

TEST(SpecProfiles, UnknownNameThrows) {
  EXPECT_THROW(benchmark("povray"), std::out_of_range);
}

TEST(SpecProfiles, PaperBenchmarksPresentWithClass) {
  // Classification implied by Table II's set membership.
  for (const char* name :
       {"bwaves", "gems", "gcc", "lbm", "milc", "sphinx", "omnetpp", "mcf"}) {
    EXPECT_EQ(benchmark(name).mem_class, MemClass::kHigh) << name;
  }
  for (const char* name :
       {"cactus", "bzip2", "astar", "wrf", "tonto", "zeusmp", "h264ref"}) {
    EXPECT_EQ(benchmark(name).mem_class, MemClass::kLow) << name;
  }
}

class AllProfilesSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(AllProfilesSweep, SourceIsDeterministicAndWellFormed) {
  const auto& profile = all_benchmarks()[GetParam()];
  const PatternGeometry g;
  auto src = profile.make_source(42, g);
  const auto recs = collect(*src, 3000);
  ASSERT_EQ(recs.size(), 3000u) << "profiles are infinite sources";
  for (const auto& r : recs) {
    EXPECT_EQ(r.addr % g.line_bytes, 0u);
  }
  auto src2 = profile.make_source(42, g);
  EXPECT_EQ(collect(*src2, 3000), recs);
  src->reset();
  EXPECT_EQ(collect(*src, 3000), recs);
}

TEST_P(AllProfilesSweep, SeedsDecorrelateInstances) {
  const auto& profile = all_benchmarks()[GetParam()];
  const PatternGeometry g;
  auto a = profile.make_source(1, g);
  auto b = profile.make_source(2, g);
  const auto ra = collect(*a, 500), rb = collect(*b, 500);
  EXPECT_NE(ra, rb);
}

TEST_P(AllProfilesSweep, MemoryAccessesReachLargeRegions) {
  // Every profile must send part of its traffic beyond the friendly region
  // (>= 1 GiB offset), otherwise it could never miss the L3.
  const auto& profile = all_benchmarks()[GetParam()];
  auto src = profile.make_source(7, PatternGeometry{});
  const auto recs = collect(*src, 20000);
  size_t far = 0;
  for (const auto& r : recs) {
    if (r.addr >= (u64{1} << 30)) ++far;
  }
  EXPECT_GT(far, 100u) << profile.name;
  EXPECT_LT(far, recs.size()) << profile.name << " must also have hot traffic";
}

TEST_P(AllProfilesSweep, HighClassHasMoreFarTrafficThanLow) {
  // Cross-check the APKI-times-weight structure: HM profiles put a larger
  // fraction of accesses into memory regions than LM profiles.
  const auto& profile = all_benchmarks()[GetParam()];
  auto src = profile.make_source(11, PatternGeometry{});
  const auto recs = collect(*src, 30000);
  size_t far = 0;
  for (const auto& r : recs) {
    if (r.addr >= (u64{1} << 30)) ++far;
  }
  const double frac = static_cast<double>(far) / static_cast<double>(recs.size());
  if (profile.mem_class == MemClass::kHigh) {
    EXPECT_GT(frac, 0.10) << profile.name;
  } else {
    EXPECT_LT(frac, 0.08) << profile.name;
  }
}

INSTANTIATE_TEST_SUITE_P(All, AllProfilesSweep, ::testing::Range<size_t>(0, 15));

TEST(SpecProfiles, WriteRatiosFollowCharacterization) {
  // lbm is documented as write-heavy (45%) and h264ref write-leaning
  // (35%); mcf and milc are read-dominated (20%).
  auto write_fraction = [](const char* name) {
    auto src = trace::benchmark(name).make_source(3, PatternGeometry{});
    const auto recs = collect(*src, 30000);
    const auto s = summarize(recs);
    return static_cast<double>(s.writes) / static_cast<double>(s.records);
  };
  EXPECT_NEAR(write_fraction("lbm"), 0.45, 0.03);
  EXPECT_NEAR(write_fraction("h264ref"), 0.35, 0.03);
  EXPECT_NEAR(write_fraction("mcf"), 0.20, 0.03);
  EXPECT_NEAR(write_fraction("milc"), 0.20, 0.03);
  EXPECT_GT(write_fraction("lbm"), write_fraction("mcf") + 0.15);
}

TEST(SpecProfiles, StreamingProfilesHaveLongerRuns) {
  // Sequential-step fraction in the far-memory region: lbm (streaming)
  // must exceed mcf (pointer chasing) by a wide margin.
  auto seq_fraction = [](const char* name) {
    auto src = trace::benchmark(name).make_source(5, PatternGeometry{});
    const auto recs = collect(*src, 60000);
    u64 far_steps = 0, far_seq = 0;
    Addr prev = 0;
    bool have_prev = false;
    for (const auto& r : recs) {
      if (r.addr < (u64{1} << 30)) {
        have_prev = false;
        continue;
      }
      if (have_prev) {
        ++far_steps;
        if (r.addr == prev + 64) ++far_seq;
      }
      prev = r.addr;
      have_prev = true;
    }
    return far_steps == 0 ? 0.0
                          : static_cast<double>(far_seq) /
                                static_cast<double>(far_steps);
  };
  EXPECT_GT(seq_fraction("lbm"), seq_fraction("mcf") + 0.3);
}

}  // namespace
}  // namespace camps::trace
