#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace camps {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, WaitIdleIsABarrier) {
  // After wait_idle returns, every side effect of every submitted task must
  // be visible to the caller without further synchronization.
  ThreadPool pool(4);
  std::vector<int> results(64, 0);
  for (int i = 0; i < 64; ++i) {
    pool.submit([&results, i] { results[static_cast<size_t>(i)] = i + 1; });
  }
  pool.wait_idle();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(results[static_cast<size_t>(i)], i + 1);
}

TEST(ThreadPool, ReusableAcrossRounds) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(ran.load(), (round + 1) * 10);
  }
}

TEST(ThreadPool, DestructorDrainsPendingWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // no wait_idle: the destructor must finish the queue before joining
  EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPool, SizeAndDefaults) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_GE(ThreadPool::default_threads(), 1u);
  ThreadPool defaulted(0);  // 0 = hardware concurrency, at least one thread
  EXPECT_GE(defaulted.size(), 1u);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, TasksRunOffTheCallingThread) {
  ThreadPool pool(1);
  std::thread::id worker_id;
  pool.submit([&worker_id] { worker_id = std::this_thread::get_id(); });
  pool.wait_idle();
  EXPECT_NE(worker_id, std::this_thread::get_id());
}

}  // namespace
}  // namespace camps
