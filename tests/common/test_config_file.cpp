#include "common/config_file.hpp"


#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <string>

namespace camps {
namespace {

TEST(ConfigFile, ParsesKeyValues) {
  auto cfg = ConfigFile::parse("a = 1\nb= hello\nc =3.5\n");
  EXPECT_EQ(cfg.get_int("a"), 1);
  EXPECT_EQ(cfg.get_string("b"), "hello");
  EXPECT_DOUBLE_EQ(cfg.get_double("c"), 3.5);
}

TEST(ConfigFile, SectionsFoldIntoKeys) {
  auto cfg = ConfigFile::parse("[hmc]\nvaults = 32\n[cpu]\ncores = 8\n");
  EXPECT_EQ(cfg.get_uint("hmc.vaults"), 32u);
  EXPECT_EQ(cfg.get_uint("cpu.cores"), 8u);
  EXPECT_FALSE(cfg.has("vaults"));
}

TEST(ConfigFile, CommentsAndBlankLinesIgnored) {
  auto cfg = ConfigFile::parse(
      "# full line comment\n\n  ; another\n a = 1 # trailing\n");
  EXPECT_EQ(cfg.get_int("a"), 1);
  EXPECT_EQ(cfg.keys().size(), 1u);
}

TEST(ConfigFile, WhitespaceTrimmed) {
  auto cfg = ConfigFile::parse("   key   =    value with spaces   \n");
  EXPECT_EQ(cfg.get_string("key"), "value with spaces");
}

TEST(ConfigFile, FallbacksWhenMissing) {
  ConfigFile cfg;
  EXPECT_EQ(cfg.get_int("x", -5), -5);
  EXPECT_EQ(cfg.get_uint("x", 7), 7u);
  EXPECT_DOUBLE_EQ(cfg.get_double("x", 1.5), 1.5);
  EXPECT_EQ(cfg.get_string("x", "d"), "d");
  EXPECT_TRUE(cfg.get_bool("x", true));
}

TEST(ConfigFile, BoolForms) {
  auto cfg = ConfigFile::parse(
      "a=true\nb=FALSE\nc=1\nd=0\ne=Yes\nf=no\ng=on\nh=OFF\n");
  EXPECT_TRUE(cfg.get_bool("a"));
  EXPECT_FALSE(cfg.get_bool("b"));
  EXPECT_TRUE(cfg.get_bool("c"));
  EXPECT_FALSE(cfg.get_bool("d"));
  EXPECT_TRUE(cfg.get_bool("e"));
  EXPECT_FALSE(cfg.get_bool("f"));
  EXPECT_TRUE(cfg.get_bool("g"));
  EXPECT_FALSE(cfg.get_bool("h"));
}

TEST(ConfigFile, NegativeIntParses) {
  auto cfg = ConfigFile::parse("x = -42\n");
  EXPECT_EQ(cfg.get_int("x"), -42);
}

TEST(ConfigFile, BadIntThrows) {
  auto cfg = ConfigFile::parse("x = 12abc\n");
  EXPECT_THROW(cfg.get_int("x"), std::runtime_error);
}

TEST(ConfigFile, BadBoolThrows) {
  auto cfg = ConfigFile::parse("x = maybe\n");
  EXPECT_THROW(cfg.get_bool("x"), std::runtime_error);
}

TEST(ConfigFile, BadDoubleThrows) {
  auto cfg = ConfigFile::parse("x = 1.2.3\n");
  EXPECT_THROW(cfg.get_double("x"), std::runtime_error);
}

TEST(ConfigFile, MalformedLineThrowsWithLineNumber) {
  try {
    ConfigFile::parse("good = 1\nno equals sign here\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ConfigFile, UnterminatedSectionThrows) {
  EXPECT_THROW(ConfigFile::parse("[hmc\n"), std::runtime_error);
}

TEST(ConfigFile, EmptyKeyThrows) {
  EXPECT_THROW(ConfigFile::parse(" = 1\n"), std::runtime_error);
}

TEST(ConfigFile, LastDuplicateWins) {
  auto cfg = ConfigFile::parse("a = 1\na = 2\n");
  EXPECT_EQ(cfg.get_int("a"), 2);
}

TEST(ConfigFile, SetOverridesAndKeysSorted) {
  auto cfg = ConfigFile::parse("b = 1\n");
  cfg.set("a", "2");
  cfg.set("b", "3");
  const auto keys = cfg.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
  EXPECT_EQ(cfg.get_int("b"), 3);
}

TEST(ConfigFile, RequireKnownAcceptsExactKeys) {
  const auto cfg = ConfigFile::parse("seed = 1\n[hmc]\nvaults = 32\n");
  EXPECT_NO_THROW(cfg.require_known({"hmc.vaults", "seed", "unused.key"}));
}

TEST(ConfigFile, RequireKnownRejectsUnknownKey) {
  const auto cfg = ConfigFile::parse("bogus = 1\n");
  EXPECT_THROW(cfg.require_known({"seed"}), std::runtime_error);
}

TEST(ConfigFile, RequireKnownSuggestsNearMiss) {
  // A typo'd key must fail loudly and point at the intended key.
  const auto cfg = ConfigFile::parse("audit_evry = 1000\n");
  try {
    cfg.require_known({"audit_every", "seed", "cores"});
    FAIL() << "unknown key was accepted";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("audit_evry"), std::string::npos) << msg;
    EXPECT_NE(msg.find("did you mean 'audit_every'"), std::string::npos)
        << msg;
  }
}

TEST(ConfigFile, RequireKnownListsEveryUnknownKey) {
  const auto cfg = ConfigFile::parse("first_bad = 1\nsecond_bad = 2\n");
  try {
    cfg.require_known({"seed"});
    FAIL() << "unknown keys were accepted";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("first_bad"), std::string::npos) << msg;
    EXPECT_NE(msg.find("second_bad"), std::string::npos) << msg;
  }
}

TEST(ConfigFile, LoadMissingFileThrows) {
  EXPECT_THROW(ConfigFile::load("/nonexistent/path/cfg.ini"),
               std::runtime_error);
}

TEST(ConfigFile, LoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/camps_cfg_test.ini";
  {
    std::ofstream out(path);
    out << "[sim]\nticks = 123\n";
  }
  auto cfg = ConfigFile::load(path);
  EXPECT_EQ(cfg.get_uint("sim.ticks"), 123u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace camps
