#include "common/stats.hpp"

#include <gtest/gtest.h>
#include <string>

namespace camps {
namespace {

TEST(Counter, StartsAtZero) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, IncrementsByOneAndBy) {
  Counter c;
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, Reset) {
  Counter c;
  c.inc(5);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, EmptyIsZero) {
  Histogram h(10, 10);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(Histogram, TracksExactAggregates) {
  Histogram h(10, 10);
  h.sample(5);
  h.sample(25);
  h.sample(15);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 45u);
  EXPECT_EQ(h.min(), 5u);
  EXPECT_EQ(h.max(), 25u);
  EXPECT_DOUBLE_EQ(h.mean(), 15.0);
}

TEST(Histogram, BucketPlacement) {
  Histogram h(10, 4);  // buckets [0,10) [10,20) [20,30) [30,40) + overflow
  h.sample(0);
  h.sample(9);
  h.sample(10);
  h.sample(39);
  h.sample(40);   // overflow
  h.sample(1000); // overflow
  const auto& b = h.buckets();
  EXPECT_EQ(b[0], 2u);
  EXPECT_EQ(b[1], 1u);
  EXPECT_EQ(b[2], 0u);
  EXPECT_EQ(b[3], 1u);
  EXPECT_EQ(b[4], 2u);
}

TEST(Histogram, PercentileOrdering) {
  Histogram h(1, 128);
  for (u64 v = 0; v < 100; ++v) h.sample(v);
  EXPECT_LE(h.percentile(10), h.percentile(50));
  EXPECT_LE(h.percentile(50), h.percentile(99));
  EXPECT_NEAR(h.percentile(50), 50.0, 2.0);
}

TEST(Histogram, PercentileEdgeCases) {
  // Empty histogram: every percentile is 0.
  Histogram empty(10, 4);
  EXPECT_DOUBLE_EQ(empty.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(100), 0.0);

  // Single sample: all percentiles land in its bucket (midpoint reported).
  Histogram one(10, 4);
  one.sample(17);
  EXPECT_DOUBLE_EQ(one.percentile(0), 15.0);
  EXPECT_DOUBLE_EQ(one.percentile(50), 15.0);
  EXPECT_DOUBLE_EQ(one.percentile(100), 15.0);

  // Out-of-range p clamps instead of reading past the distribution.
  EXPECT_DOUBLE_EQ(one.percentile(-5), one.percentile(0));
  EXPECT_DOUBLE_EQ(one.percentile(250), one.percentile(100));

  // Samples past the last bucket land in the overflow bucket, which reports
  // its lower edge (the bucketing can't know how far past it they went).
  Histogram over(10, 4);  // tracked range [0, 40), overflow edge at 40
  over.sample(1000);
  EXPECT_DOUBLE_EQ(over.percentile(50), 40.0);
  EXPECT_EQ(over.max(), 1000u);
}

TEST(Histogram, ResetClearsEverything) {
  Histogram h(10, 4);
  h.sample(3);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  for (u64 b : h.buckets()) EXPECT_EQ(b, 0u);
}

TEST(StatRegistry, CounterIdentityIsStable) {
  StatRegistry reg;
  Counter& a = reg.counter("x.y");
  a.inc(3);
  EXPECT_EQ(&reg.counter("x.y"), &a);
  EXPECT_EQ(reg.counter_value("x.y"), 3u);
}

TEST(StatRegistry, MissingCounterReadsZero) {
  StatRegistry reg;
  EXPECT_EQ(reg.counter_value("nope"), 0u);
  EXPECT_FALSE(reg.has_counter("nope"));
}

TEST(StatRegistry, HistogramKeepsParamsOnRelookup) {
  StatRegistry reg;
  Histogram& h = reg.histogram("lat", 100, 8);
  h.sample(50);
  Histogram& again = reg.histogram("lat", 999, 1);  // params ignored
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.count(), 1u);
}

TEST(StatRegistry, SumMatchingWildcard) {
  StatRegistry reg;
  reg.counter("vault0.acts").inc(2);
  reg.counter("vault1.acts").inc(3);
  reg.counter("vault10.acts").inc(5);
  reg.counter("vault1.pres").inc(100);
  EXPECT_EQ(reg.sum_matching("vault*.acts"), 10u);
  EXPECT_EQ(reg.sum_matching("vault1.acts"), 3u);
  EXPECT_EQ(reg.sum_matching("vault*.nothing"), 0u);
}

TEST(StatRegistry, SumMatchingExactWhenNoStar) {
  StatRegistry reg;
  reg.counter("a.b").inc(7);
  EXPECT_EQ(reg.sum_matching("a.b"), 7u);
}

TEST(StatRegistry, FormulaEvaluatedAtDump) {
  StatRegistry reg;
  Counter& hits = reg.counter("hits");
  Counter& total = reg.counter("total");
  reg.add_formula("hit_rate", [&] {
    return total.value() ? static_cast<double>(hits.value()) /
                               static_cast<double>(total.value())
                         : 0.0;
  });
  hits.inc(3);
  total.inc(4);
  const std::string dump = reg.dump();
  EXPECT_NE(dump.find("hit_rate = 0.75"), std::string::npos);
}

TEST(StatRegistry, DumpSortedAndComplete) {
  StatRegistry reg;
  reg.counter("zeta").inc(1);
  reg.counter("alpha").inc(2);
  const std::string dump = reg.dump();
  const auto a = dump.find("alpha");
  const auto z = dump.find("zeta");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, z);
}

TEST(Counter, MergeFromAdds) {
  Counter a, b;
  a.inc(5);
  b.inc(7);
  a.merge_from(b);
  EXPECT_EQ(a.value(), 12u);
  EXPECT_EQ(b.value(), 7u) << "merge_from must not mutate the source";
}

TEST(Histogram, MergeFromCombinesAllAggregates) {
  Histogram a(10, 4), b(10, 4);
  a.sample(5);
  a.sample(35);
  b.sample(15);
  b.sample(95);  // overflow bucket
  a.merge_from(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 150u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 95u);
  EXPECT_EQ(a.buckets()[0], 1u);
  EXPECT_EQ(a.buckets()[1], 1u);
  EXPECT_EQ(a.buckets()[3], 1u);
  EXPECT_EQ(a.buckets()[4], 1u);
}

TEST(Histogram, MergeFromEmptySidesPreserveMinMax) {
  Histogram a(10, 4), b(10, 4);
  b.sample(20);
  a.merge_from(b);  // empty += non-empty adopts the source min/max
  EXPECT_EQ(a.min(), 20u);
  EXPECT_EQ(a.max(), 20u);
  Histogram empty(10, 4);
  a.merge_from(empty);  // non-empty += empty is a no-op
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 20u);
}

TEST(StatRegistry, MergeFromAddsCountersAndCreatesMissing) {
  StatRegistry a, b;
  a.counter("shared").inc(1);
  b.counter("shared").inc(2);
  b.counter("only_b").inc(9);
  b.histogram("lat", 10, 4).sample(25);
  a.merge_from(b);
  EXPECT_EQ(a.counter_value("shared"), 3u);
  EXPECT_EQ(a.counter_value("only_b"), 9u);
  EXPECT_EQ(a.histogram("lat", 10, 4).count(), 1u);
  EXPECT_EQ(a.histogram("lat", 10, 4).buckets()[2], 1u);
}

TEST(StatRegistry, ResetZeroesCounters) {
  StatRegistry reg;
  reg.counter("c").inc(9);
  reg.histogram("h").sample(1);
  reg.reset();
  EXPECT_EQ(reg.counter_value("c"), 0u);
  EXPECT_EQ(reg.histogram("h").count(), 0u);
}

}  // namespace
}  // namespace camps
