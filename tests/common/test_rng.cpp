#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace camps {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  std::set<u64> seen;
  for (int i = 0; i < 100; ++i) seen.insert(r.next());
  EXPECT_GT(seen.size(), 95u);  // no stuck state
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(7);
  for (u64 bound : {u64{1}, u64{2}, u64{3}, u64{10}, u64{1000}, u64{1} << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng r(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(11);
  std::set<u64> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng r(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.next_below(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
  }
}

TEST(Rng, NextRangeInclusiveBounds) {
  Rng r(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const u64 v = r.next_range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    saw_lo |= v == 5;
    saw_hi |= v == 9;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextRangeDegenerate) {
  Rng r(19);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(r.next_range(33, 33), 33u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(23);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng r(29);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBoolExtremes) {
  Rng r(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.next_bool(0.0));
    EXPECT_TRUE(r.next_bool(1.0));
    EXPECT_FALSE(r.next_bool(-0.5));
    EXPECT_TRUE(r.next_bool(1.5));
  }
}

TEST(Rng, NextBoolMatchesProbability) {
  Rng r(37);
  int yes = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (r.next_bool(0.3)) ++yes;
  }
  EXPECT_NEAR(static_cast<double>(yes) / n, 0.3, 0.01);
}

TEST(Rng, GeometricAtLeastOne) {
  Rng r(41);
  for (double mean : {0.1, 1.0, 2.0, 16.0}) {
    for (int i = 0; i < 200; ++i) EXPECT_GE(r.next_geometric(mean), 1u);
  }
}

TEST(Rng, GeometricMeanApproximatelyCorrect) {
  Rng r(43);
  for (double mean : {2.0, 8.0, 64.0}) {
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(r.next_geometric(mean));
    EXPECT_NEAR(sum / n, mean, mean * 0.08) << "mean=" << mean;
  }
}

TEST(Rng, SplitIsIndependentOfParentUse) {
  Rng parent(55);
  Rng child1 = parent.split(1);
  parent.next();  // advancing the parent must not change future splits' seeds
  Rng child1_again = Rng(55).split(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child1.next(), child1_again.next());
}

TEST(Rng, SplitsWithDifferentSaltsDiffer) {
  Rng parent(55);
  Rng a = parent.split(1), b = parent.split(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

// Property sweep: next_below is in-bounds and hits both edges for a spread
// of bounds.
class RngBoundSweep : public ::testing::TestWithParam<u64> {};

TEST_P(RngBoundSweep, InBoundsAndEdgeReachable) {
  const u64 bound = GetParam();
  Rng r(bound * 7919 + 3);
  bool saw_zero = false, saw_top = false;
  for (int i = 0; i < 20000; ++i) {
    const u64 v = r.next_below(bound);
    ASSERT_LT(v, bound);
    saw_zero |= v == 0;
    saw_top |= v == bound - 1;
  }
  if (bound <= 64) {
    EXPECT_TRUE(saw_zero);
    EXPECT_TRUE(saw_top);
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep,
                         ::testing::Values(1, 2, 3, 5, 16, 17, 64, 1000,
                                           u64{1} << 32, u64{1} << 63));

}  // namespace
}  // namespace camps
