// Deterministic JSON emission: escaping, shortest-round-trip doubles, the
// streaming writer, and StatRegistry::dump_json's schema.
#include "common/json.hpp"


#include <cstdlib>
#include <gtest/gtest.h>
#include <string>

#include "common/stats.hpp"

namespace camps {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("MX1/CAMPS-MOD"), "MX1/CAMPS-MOD");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonDouble, IntegersRenderWithoutFraction) {
  EXPECT_EQ(json_double(0.0), "0");
  EXPECT_EQ(json_double(42.0), "42");
  EXPECT_EQ(json_double(-3.0), "-3");
}

TEST(JsonDouble, NonFiniteRendersAsZero) {
  EXPECT_EQ(json_double(std::numeric_limits<double>::quiet_NaN()), "0");
  EXPECT_EQ(json_double(std::numeric_limits<double>::infinity()), "0");
}

TEST(JsonDouble, ShortestRenderingRoundTrips) {
  for (double v : {0.1, 1.0 / 3.0, 2.5e-7, 123.456, 0.30000000000000004}) {
    const std::string s = json_double(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
  // The classic: 0.1 must render as "0.1", not "0.10000000000000001".
  EXPECT_EQ(json_double(0.1), "0.1");
}

TEST(JsonWriter, CompactNesting) {
  JsonWriter w;
  w.begin_object();
  w.field("a", u64{1});
  w.key("b");
  w.begin_array();
  w.value("x");
  w.value(true);
  w.value(2.5);
  w.end_array();
  w.key("c");
  w.begin_object();
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":["x",true,2.5],"c":{}})");
}

TEST(JsonWriter, PrettyPrintsWithIndent) {
  JsonWriter w(2);
  w.begin_object();
  w.field("a", u64{1});
  w.key("b");
  w.begin_array();
  w.value(u64{2});
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(JsonWriter, RawSplicesPreRenderedFragments) {
  JsonWriter w;
  w.begin_object();
  w.key("inner");
  w.raw(R"({"x":1})");
  w.field("y", u64{2});
  w.end_object();
  EXPECT_EQ(w.str(), R"({"inner":{"x":1},"y":2})");
}

TEST(StatRegistryJson, SchemaContainsAllSections) {
  StatRegistry reg;
  reg.counter("vault0.rb_hit").inc(7);
  auto& h = reg.histogram("latency.test_cycles", 10, 4);
  h.sample(5);
  h.sample(25);
  reg.add_formula("double_hits", [&reg] {
    return 2.0 * static_cast<double>(reg.counter_value("vault0.rb_hit"));
  });

  const std::string json = reg.dump_json();
  EXPECT_NE(json.find(R"("counters":{"vault0.rb_hit":7})"), std::string::npos)
      << json;
  EXPECT_NE(json.find(R"("latency.test_cycles":{"count":2,"sum":30)"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find(R"("bucket_width":10,"buckets":[1,0,1,0,0])"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find(R"("formulas":{"double_hits":14})"), std::string::npos)
      << json;
}

TEST(StatRegistryJson, DumpIsByteStableAcrossCalls) {
  StatRegistry reg;
  reg.counter("b").inc(2);
  reg.counter("a").inc(1);
  reg.histogram("h", 4, 8).sample(3);
  EXPECT_EQ(reg.dump_json(), reg.dump_json());
  // Keys come out in sorted map order regardless of registration order.
  const std::string json = reg.dump_json();
  EXPECT_LT(json.find("\"a\":"), json.find("\"b\":"));
}

}  // namespace
}  // namespace camps
