// Protocol oracle: end-to-end invariants of the memory system under
// randomized soak traffic, checked for every scheme and page policy.
//
//   1. every read gets exactly one response (no loss, no duplication);
//   2. no response beats the physical minimum latency;
//   3. responses to the same line from the same submission order never
//      reorder *within a bank-row stream* by more than the queue depth
//      would allow (sanity, not strict FIFO — FR-FCFS may reorder across
//      rows);
//   4. the device drains to idle when traffic stops.
#include <gtest/gtest.h>

#include <map>

#include "hmc/host_controller.hpp"

namespace camps::hmc {
namespace {

struct SoakCase {
  prefetch::SchemeKind scheme;
  PagePolicy policy;
  bool refresh;
};

class ProtocolSoak : public ::testing::TestWithParam<SoakCase> {};

TEST_P(ProtocolSoak, InvariantsHold) {
  const SoakCase& c = GetParam();
  sim::Simulator sim;
  HmcConfig cfg;
  cfg.vault.page_policy = c.policy;
  cfg.vault.refresh_enabled = c.refresh;
  StatRegistry stats;
  HostController host(sim, cfg, c.scheme, prefetch::SchemeParams{}, &stats);

  std::map<u64, Tick> submitted;       // request id -> submit tick
  std::map<u64, u64> responses;        // request id -> response count
  std::map<u64, Tick> completed_at;

  // The cheapest possible read: buffer hit (22 CPU cycles) plus one
  // crossbar+link round trip. Anything faster is a simulator bug.
  const Tick min_latency =
      2 * cfg.crossbar.latency_ticks + 2 * cfg.link.flight_ticks +
      cfg.vault.buffer.hit_latency * sim::kCpuTicksPerCycle;

  u64 x = 2026;
  u64 issued = 0;
  // Bursty traffic: busy windows of back-to-back requests, idle gaps that
  // cross refresh boundaries.
  Tick t = 0;
  for (int burst = 0; burst < 40; ++burst) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const int len = 10 + static_cast<int>((x >> 40) % 60);
    for (int i = 0; i < len; ++i) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
      const Addr addr = (x % (u64{1} << 31)) & ~u64{63};
      const bool write = (x & 15) == 0;
      const Tick when = t + static_cast<Tick>(i) * 30;
      sim.schedule_at(when, [&, addr, write, when] {
        if (write) {
          host.write(addr, 0);
        } else {
          const u64 id = host.read(addr, 0, nullptr);
          submitted[id] = when;
        }
      });
      if (!write) ++issued;
    }
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    t += static_cast<Tick>(len) * 30 + (x >> 45) % 300000;
  }

  // Hook completions through a polling wrapper: HostController already
  // invokes callbacks, but we issued with nullptr above; instead verify
  // through its aggregate counters plus a second pass with callbacks.
  // Re-issue a tracked subset with callbacks for per-request checks.
  for (int i = 0; i < 200; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const Addr addr = (x % (u64{1} << 31)) & ~u64{63};
    const Tick when = t + static_cast<Tick>(i) * 60;
    sim.schedule_at(when, [&, addr, when] {
      const u64 id = host.read(addr, 0, [&, id_holder = &responses,
                               when](const MemRequest& req) {
        ++(*id_holder)[req.id];
        completed_at[req.id] = sim.now();
        EXPECT_GE(sim.now() - when, min_latency)
            << "response faster than physically possible";
      });
      submitted[id] = when;
    });
  }
  issued += 200;

  sim.run_until(t + 200 * 60 + 50'000'000);

  EXPECT_EQ(host.reads_completed(), issued) << "every read answered";
  EXPECT_TRUE(host.idle()) << "device must drain";
  for (const auto& [id, count] : responses) {
    EXPECT_EQ(count, 1u) << "request " << id << " answered " << count
                         << " times";
  }
  EXPECT_EQ(responses.size(), 200u);
}

INSTANTIATE_TEST_SUITE_P(
    Soak, ProtocolSoak,
    ::testing::Values(
        SoakCase{prefetch::SchemeKind::kNone, PagePolicy::kOpen, true},
        SoakCase{prefetch::SchemeKind::kBase, PagePolicy::kOpen, true},
        SoakCase{prefetch::SchemeKind::kBaseHit, PagePolicy::kOpen, true},
        SoakCase{prefetch::SchemeKind::kMmd, PagePolicy::kOpen, true},
        SoakCase{prefetch::SchemeKind::kCamps, PagePolicy::kOpen, true},
        SoakCase{prefetch::SchemeKind::kCampsMod, PagePolicy::kOpen, true},
        SoakCase{prefetch::SchemeKind::kStream, PagePolicy::kOpen, true},
        SoakCase{prefetch::SchemeKind::kCampsMod, PagePolicy::kClosed, true},
        SoakCase{prefetch::SchemeKind::kCampsMod, PagePolicy::kOpen, false}));

}  // namespace
}  // namespace camps::hmc
