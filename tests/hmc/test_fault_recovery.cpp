// Fault injection and recovery: link replay, host retry/poison, vault
// degradation. Exercises the end-to-end paths ISSUE 5 specifies — a
// CRC-failed transfer replays byte-identically, retry-budget exhaustion
// surfaces as a poisoned completion, and a degradation flush leaves every
// audit invariant intact.
#include <gtest/gtest.h>
#include <memory>

#include "check/audit.hpp"
#include "hmc/host_controller.hpp"

namespace camps::hmc {
namespace {

struct DeviceHarness {
  sim::Simulator sim;
  StatRegistry stats;
  std::unique_ptr<HostController> host;

  explicit DeviceHarness(
      prefetch::SchemeKind scheme = prefetch::SchemeKind::kNone,
      HmcConfig cfg = {}) {
    cfg.vault.refresh_enabled = false;  // determinism for latency asserts
    host = std::make_unique<HostController>(sim, cfg, scheme,
                                            prefetch::SchemeParams{}, &stats);
  }
};

/// Encodes an address that routes to `vault` (link = vault % num_links).
Addr vault_addr(const DeviceHarness& h, u32 vault, u32 row) {
  DecodedAddr d;
  d.vault = vault;
  d.bank = 0;
  d.row = row;
  d.column = 0;
  return h.host->device().map().encode(d);
}

// --- serial-link replay ------------------------------------------------------

TEST(FaultRecovery, CrcFailedTransferReplaysByteIdentically) {
  fault::FaultConfig cfg;
  cfg.targeted.push_back({fault::Site::kLinkDownCrc, /*unit=*/0,
                          /*sequence=*/0});
  fault::FaultPlan plan(cfg, nullptr);

  LinkDirection faulty;
  faulty.attach_faults(&plan, /*link_index=*/0, /*upstream=*/false);
  LinkDirection clean;

  const auto clean_xfer = clean.submit_ex(0, 1);
  const auto xfer = faulty.submit_ex(0, 1);

  // The replay delivers the identical packet — same sequence number, same
  // flit count charged — it is only late by one detection flight, the
  // retry-request return trip, and a re-serialization.
  EXPECT_FALSE(xfer.dropped);
  EXPECT_EQ(xfer.replays, 1u);
  EXPECT_EQ(xfer.sequence, clean_xfer.sequence);
  EXPECT_EQ(faulty.crc_errors(), 1u);
  EXPECT_EQ(faulty.replays(), 1u);
  EXPECT_EQ(faulty.flits_carried(), clean.flits_carried());
  const Tick overhead = cfg.link_retry_overhead_ticks;
  EXPECT_EQ(xfer.deliver,
            clean_xfer.deliver + overhead + faulty.serialization_ticks(1) +
                LinkParams{}.flight_ticks);
  // The copy stays parked until the far end's acknowledgement returns.
  EXPECT_EQ(faulty.retry_buffer_depth(), 1u);

  // The next packet through the same direction is untouched (targeted
  // fault hit sequence 0 only), merely queued behind the replay.
  const auto next = faulty.submit_ex(0, 1);
  EXPECT_EQ(next.replays, 0u);
  EXPECT_FALSE(next.dropped);
  EXPECT_EQ(next.sequence, xfer.sequence + 1);
}

TEST(FaultRecovery, DroppedTransferNeverDelivers) {
  fault::FaultConfig cfg;
  cfg.targeted.push_back({fault::Site::kLinkDownDrop, 0, 0});
  fault::FaultPlan plan(cfg, nullptr);
  LinkDirection link;
  link.attach_faults(&plan, 0, false);
  const auto xfer = link.submit_ex(0, 1);
  EXPECT_TRUE(xfer.dropped);
  EXPECT_EQ(link.drops(), 1u);
  EXPECT_EQ(link.crc_errors(), 0u);
  // Nothing waits in the retry buffer: the loss is the requester's to fix.
  EXPECT_EQ(link.retry_buffer_depth(), 0u);
}

// --- token flow control ------------------------------------------------------

TEST(FaultRecovery, TokenPoolConservedAndStallsSerialization) {
  LinkParams p;
  p.tokens = 2;  // two 1-flit packets in flight, the third must wait
  LinkDirection link(p);

  const auto first = link.submit_ex(0, 1);
  EXPECT_EQ(link.tokens_available() + link.tokens_pending(), 2u);
  link.submit_ex(0, 1);
  EXPECT_EQ(link.tokens_available() + link.tokens_pending(), 2u);

  // Third packet: pool exhausted until the first packet's credit returns
  // one flight after its delivery.
  const auto third = link.submit_ex(0, 1);
  EXPECT_EQ(third.start, first.deliver + p.token_return_ticks);
  EXPECT_EQ(link.tokens_available() + link.tokens_pending(), 2u);
}

// --- host retry / poison -----------------------------------------------------

TEST(FaultRecovery, RetryBudgetExhaustionPoisonsTheRequest) {
  HmcConfig cfg;
  cfg.fault.link_drop_rate = 1.0;  // every transfer is lost
  cfg.fault.host_timeout_ticks = 24000;
  cfg.fault.host_backoff_ticks = 2400;
  cfg.fault.host_retry_budget = 2;
  DeviceHarness h(prefetch::SchemeKind::kNone, cfg);

  bool done = false;
  h.host->read(0x1000, 0, [&](const MemRequest& req) {
    done = true;
    EXPECT_TRUE(req.poisoned);
    EXPECT_EQ(req.addr, 0x1000u);
  });
  h.sim.run();

  EXPECT_TRUE(done);
  EXPECT_TRUE(h.host->idle());
  EXPECT_EQ(h.host->reads_poisoned(), 1u);
  EXPECT_EQ(h.host->retries_issued(), 2u);  // budget fully spent
  EXPECT_EQ(h.stats.counter_value("fault.host_poisoned"), 1u);
  EXPECT_EQ(h.stats.counter_value("fault.host_retries"), 2u);
  // Original + 2 retries each died at the downstream link.
  EXPECT_EQ(h.stats.counter_value("fault.link_drops"), 3u);
  // The poison event samples the recovery-latency histogram.
  const Histogram* rec = h.stats.find_histogram("fault.recovery_cycles");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->count(), 1u);
}

TEST(FaultRecovery, SingleDropRecoversWithinBudget) {
  HmcConfig cfg;
  cfg.fault.targeted.push_back({fault::Site::kLinkDownDrop, /*unit=*/0,
                                /*sequence=*/0});
  DeviceHarness h(prefetch::SchemeKind::kNone, cfg);

  bool done = false;
  const Addr addr = vault_addr(h, /*vault=*/0, /*row=*/1);  // via link 0
  h.host->read(addr, 0, [&](const MemRequest& req) {
    done = true;
    EXPECT_FALSE(req.poisoned);
  });
  h.sim.run();

  EXPECT_TRUE(done);
  EXPECT_EQ(h.host->reads_completed(), 1u);
  EXPECT_EQ(h.host->reads_poisoned(), 0u);
  EXPECT_EQ(h.host->retries_issued(), 1u);
  // Recovery latency (timeout + backoff + clean round trip) is sampled
  // once, for the retried read that eventually completed.
  const Histogram* rec = h.stats.find_histogram("fault.recovery_cycles");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->count(), 1u);
  EXPECT_GE(rec->mean(),
            static_cast<double>(cfg.fault.host_timeout_ticks) /
                sim::kCpuTicksPerCycle);
}

TEST(FaultRecovery, LateResponseToSupersededIdIsCountedNotDelivered) {
  HmcConfig cfg;
  // Stall the first vault response just past the host timeout: the retry
  // supersedes the original id, whose response then arrives to a dead id.
  // (The stall must stay moderate: the upstream link is a timestamp-chained
  // FIFO, so the retry's response serializes behind the stalled one and
  // both land shortly after the stall ends — inside the retry's timeout.)
  cfg.fault.targeted.push_back({fault::Site::kVaultStall, /*unit=*/0,
                                /*sequence=*/0});
  cfg.fault.vault_stall_ticks = 60000;
  cfg.fault.host_timeout_ticks = 48000;
  cfg.fault.host_backoff_ticks = 2400;
  DeviceHarness h(prefetch::SchemeKind::kNone, cfg);

  int completions = 0;
  h.host->read(vault_addr(h, 0, 1), 0,
               [&](const MemRequest& req) {
                 ++completions;
                 EXPECT_FALSE(req.poisoned);
               });
  h.sim.run();

  EXPECT_EQ(completions, 1);  // the late duplicate must not fire on_done
  EXPECT_EQ(h.host->reads_completed(), 1u);
  EXPECT_EQ(h.host->retries_issued(), 1u);
  EXPECT_EQ(h.host->reads_poisoned(), 0u);
  EXPECT_EQ(h.stats.counter_value("fault.vault_stalls"), 1u);
  EXPECT_EQ(h.stats.counter_value("fault.late_responses"), 1u);
  EXPECT_TRUE(h.host->idle());
}

// --- vault degradation -------------------------------------------------------

TEST(FaultRecovery, DegradationFlushKeepsEveryAuditInvariant) {
  HmcConfig cfg;
  cfg.fault.vault_stall_rate = 1.0;  // every response attributed as a fault
  cfg.fault.vault_stall_ticks = 240;
  cfg.fault.vault_degrade_threshold = 4;
  DeviceHarness h(prefetch::SchemeKind::kCampsMod, cfg);

  // Sequential rows through a handful of vaults: enough demand to fill
  // prefetch buffers and correlation state before the flushes strike.
  int completed = 0;
  for (u32 row = 1; row <= 16; ++row) {
    for (u32 vault = 0; vault < 4; ++vault) {
      h.host->read(vault_addr(h, vault, row), 0,
                   [&](const MemRequest&) { ++completed; });
    }
  }
  h.sim.run();

  EXPECT_EQ(completed, 64);
  EXPECT_GE(h.stats.counter_value("fault.degrade_flushes"), 1u);
  EXPECT_GE(h.host->device().vault(0).degrade_flushes(), 1u);

  // The flush must not corrupt the RUT/CT hand-off or buffer accounting:
  // the full audit pass (host ids, link tokens, every vault's scheme and
  // buffer invariants) comes back clean.
  check::AuditReporter rep;
  h.host->audit(rep);
  EXPECT_TRUE(rep.clean()) << rep.report();
  EXPECT_GT(rep.checks_run(), 0u);
}

TEST(FaultRecovery, FaultFreeConfigLeavesNoFaultState) {
  DeviceHarness h;
  EXPECT_EQ(h.host->device().fault_plan(), nullptr);
  h.host->read(0x1000, 0, nullptr);
  h.sim.run();
  EXPECT_FALSE(h.stats.has_counter("fault.crc_errors"));
  EXPECT_EQ(h.stats.find_histogram("fault.recovery_cycles"), nullptr);
  EXPECT_EQ(h.host->reads_poisoned(), 0u);
  EXPECT_EQ(h.host->retries_issued(), 0u);
}

}  // namespace
}  // namespace camps::hmc
