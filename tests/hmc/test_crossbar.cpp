#include "hmc/crossbar.hpp"

#include <gtest/gtest.h>

namespace camps::hmc {
namespace {

TEST(Crossbar, FixedLatency) {
  Crossbar xbar(4);
  EXPECT_EQ(xbar.route(100, 0), 100 + CrossbarParams{}.latency_ticks);
}

TEST(Crossbar, PerPortSerialization) {
  CrossbarParams p;
  p.latency_ticks = 60;
  p.port_interval_ticks = 30;
  Crossbar xbar(4, p);
  const Tick a = xbar.route(0, 2);
  const Tick b = xbar.route(0, 2);
  EXPECT_EQ(b - a, 30u);
}

TEST(Crossbar, DifferentPortsDoNotInterfere) {
  Crossbar xbar(4);
  const Tick a = xbar.route(0, 0);
  const Tick b = xbar.route(0, 1);
  EXPECT_EQ(a, b);
}

TEST(Crossbar, PortFreesAfterInterval) {
  CrossbarParams p;
  p.port_interval_ticks = 30;
  Crossbar xbar(2, p);
  xbar.route(0, 0);
  // A packet arriving after the interval passes without queueing.
  EXPECT_EQ(xbar.route(30, 0), 30 + p.latency_ticks);
}

TEST(Crossbar, CountsPackets) {
  Crossbar xbar(2);
  xbar.route(0, 0);
  xbar.route(0, 1);
  xbar.route(5, 0);
  EXPECT_EQ(xbar.packets_routed(), 3u);
  EXPECT_EQ(xbar.ports(), 2u);
}

TEST(Crossbar, BurstToOnePortQueuesLinearly) {
  CrossbarParams p;
  p.port_interval_ticks = 30;
  p.latency_ticks = 60;
  Crossbar xbar(1, p);
  for (u32 i = 0; i < 10; ++i) {
    EXPECT_EQ(xbar.route(0, 0), i * 30 + 60);
  }
}

}  // namespace
}  // namespace camps::hmc
