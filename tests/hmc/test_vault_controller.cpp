// Vault controller: queues, FR-FCFS, prefetch engine integration, refresh.

#include <gtest/gtest.h>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "hmc/vault_controller.hpp"
#include "prefetch/factory.hpp"

namespace camps::hmc {
namespace {

struct Harness {
  sim::Simulator sim;
  std::vector<std::pair<u64, Tick>> responses;  // (request id, ready tick)
  std::unique_ptr<VaultController> vault;
  u64 next_id = 1;

  explicit Harness(prefetch::SchemeKind scheme = prefetch::SchemeKind::kNone,
                   bool refresh = false,
                   const prefetch::SchemeParams& params = {},
                   PagePolicy policy = PagePolicy::kOpen) {
    VaultConfig cfg;
    cfg.refresh_enabled = refresh;
    cfg.page_policy = policy;
    vault = std::make_unique<VaultController>(
        sim, 0, cfg, prefetch::make_scheme(scheme, params), nullptr, nullptr,
        [this](const MemRequest& req, Tick ready) {
          responses.emplace_back(req.id, ready);
        });
  }

  u64 submit(BankId bank, RowId row, LineId column,
             AccessType type = AccessType::kRead, Tick when = 0) {
    MemRequest req;
    req.id = next_id++;
    req.type = type;
    req.created = when;
    DecodedAddr d;
    d.vault = 0;
    d.bank = bank;
    d.row = row;
    d.column = column;
    const u64 id = req.id;
    sim.schedule_at(when, [this, req, d] {
      vault->receive(req, d, sim.now());
    });
    return id;
  }

  /// Runs until all demand work completes. With refresh enabled the vault
  /// schedules maintenance wake-ups forever, so an unbounded sim.run()
  /// would never return; the horizon comfortably covers every test's
  /// traffic while executing any refreshes that fall inside it.
  void run(Tick horizon = 100'000'000) {
    sim.run_until(horizon);
    CAMPS_ASSERT_MSG(vault->idle(), "test traffic did not drain in horizon");
  }

  std::optional<Tick> response_time(u64 id) const {
    for (const auto& [rid, t] : responses) {
      if (rid == id) return t;
    }
    return std::nullopt;
  }
};

constexpr Tick kDram = sim::kDramTicksPerCycle;

TEST(VaultController, SingleReadLatency) {
  Harness h;
  const u64 id = h.submit(0, 5, 3);
  h.run();
  ASSERT_TRUE(h.response_time(id).has_value());
  // Cold read: ACT (tRCD=11) + RD (tCL=11 + tBURST=4) = 26 DRAM cycles
  // minimum, plus scheduler wake-up granularity.
  const auto& t = dram::default_timing();
  const Tick floor = (t.tRCD + t.tCL + t.tBURST) * kDram;
  EXPECT_GE(*h.response_time(id), floor);
  EXPECT_LE(*h.response_time(id), floor + 4 * kDram);
  EXPECT_EQ(h.vault->demand_reads(), 1u);
  EXPECT_EQ(h.vault->row_empties(), 1u);
  EXPECT_TRUE(h.vault->idle());
}

TEST(VaultController, RowHitFasterThanRowMiss) {
  Harness h;
  const u64 a = h.submit(0, 5, 0, AccessType::kRead, 0);
  const u64 b = h.submit(0, 5, 1, AccessType::kRead, 0);
  h.run();
  ASSERT_TRUE(h.response_time(a) && h.response_time(b));
  // Second access hits the open row: spaced by tCCD, far less than a full
  // ACT+RD round.
  const Tick gap = *h.response_time(b) - *h.response_time(a);
  EXPECT_LE(gap, dram::default_timing().tCCD * kDram + kDram);
  EXPECT_EQ(h.vault->row_hits(), 1u);
}

TEST(VaultController, ConflictClassifiedAndServed) {
  Harness h;
  const u64 a = h.submit(0, 5, 0);
  // Give the first row time to open, then hit the same bank, other row.
  const u64 b = h.submit(0, 9, 0, AccessType::kRead, 40 * kDram);
  h.run();
  ASSERT_TRUE(h.response_time(a) && h.response_time(b));
  EXPECT_EQ(h.vault->row_conflicts(), 1u);
}

TEST(VaultController, WritesArePostedAndCounted) {
  Harness h;
  h.submit(0, 5, 0, AccessType::kWrite);
  h.run();
  EXPECT_TRUE(h.responses.empty()) << "posted writes produce no response";
  EXPECT_EQ(h.vault->demand_writes(), 1u);
  EXPECT_TRUE(h.vault->idle());
}

TEST(VaultController, ManyRequestsAllComplete) {
  Harness h;
  u64 x = 9;
  std::vector<u64> reads;
  for (int i = 0; i < 300; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const BankId bank = (x >> 10) % 16;
    const RowId row = (x >> 20) % 64;
    const LineId col = (x >> 40) % 16;
    if ((x & 7) != 0) {
      reads.push_back(h.submit(bank, row, col, AccessType::kRead,
                               static_cast<Tick>(i) * 2 * kDram));
    } else {
      h.submit(bank, row, col, AccessType::kWrite,
               static_cast<Tick>(i) * 2 * kDram);
    }
  }
  h.run();
  EXPECT_EQ(h.responses.size(), reads.size());
  for (u64 id : reads) EXPECT_TRUE(h.response_time(id)) << "read " << id;
  EXPECT_TRUE(h.vault->idle());
}

TEST(VaultController, ResponsesNondecreasingPerBankRow) {
  // FIFO within the same line stream (no reordering of identical work).
  Harness h;
  std::vector<u64> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(h.submit(0, 5, static_cast<LineId>(i % 16),
                           AccessType::kRead, static_cast<Tick>(i) * kDram));
  }
  h.run();
  Tick prev = 0;
  for (u64 id : ids) {
    ASSERT_TRUE(h.response_time(id));
    EXPECT_GE(*h.response_time(id), prev);
    prev = *h.response_time(id);
  }
}

TEST(VaultController, BasePrefetchesAndPrecharges) {
  Harness h(prefetch::SchemeKind::kBase);
  const u64 a = h.submit(0, 5, 0);
  h.run();
  ASSERT_TRUE(h.response_time(a));
  EXPECT_EQ(h.vault->prefetches_issued(), 1u);
  EXPECT_TRUE(h.vault->buffer().contains(BankRow{0, 5}));
  // BASE serves through the copy: latency >= ACT + tCL + tROWFETCH + buffer
  // hit latency.
  const auto& t = dram::default_timing();
  const Tick floor = (t.tRCD + t.tCL + t.tROWFETCH) * kDram +
                     VaultConfig{}.buffer.hit_latency * sim::kCpuTicksPerCycle;
  EXPECT_GE(*h.response_time(a), floor);
}

TEST(VaultController, BaseSecondAccessServedFromBuffer) {
  Harness h(prefetch::SchemeKind::kBase);
  h.submit(0, 5, 0);
  const u64 b = h.submit(0, 5, 7, AccessType::kRead, 200 * kDram);
  h.run();
  ASSERT_TRUE(h.response_time(b));
  EXPECT_EQ(h.vault->buffer().hits(), 1u);
  EXPECT_EQ(h.vault->demand_reads(), 1u) << "only the first read hit DRAM";
  // Buffer hit: ~22 CPU cycles after arrival.
  EXPECT_LE(*h.response_time(b) - 200 * kDram,
            VaultConfig{}.buffer.hit_latency * sim::kCpuTicksPerCycle +
                2 * kDram);
}

TEST(VaultController, BaseLeavesNoRowConflicts) {
  Harness h(prefetch::SchemeKind::kBase);
  // Interleave two rows of the same bank — the BASE precharge-after-copy
  // policy must prevent any conflict classification (Fig. 6's note).
  for (int i = 0; i < 20; ++i) {
    h.submit(0, static_cast<RowId>(i % 2 ? 5 : 9), static_cast<LineId>(i % 16),
             AccessType::kRead, static_cast<Tick>(i) * 80 * kDram);
  }
  h.run();
  EXPECT_EQ(h.vault->row_conflicts(), 0u);
}

TEST(VaultController, CampsThresholdFetchServesLaterAccessesFromBuffer) {
  Harness h(prefetch::SchemeKind::kCamps);
  // Five accesses to distinct lines of one row: the fourth pushes the RUT
  // past the threshold; the row is copied and precharged; the fifth access
  // (arriving later) is served from the buffer.
  for (int i = 0; i < 4; ++i) {
    h.submit(0, 5, static_cast<LineId>(i), AccessType::kRead,
             static_cast<Tick>(i) * 2 * kDram);
  }
  const u64 last = h.submit(0, 5, 9, AccessType::kRead, 400 * kDram);
  h.run();
  ASSERT_TRUE(h.response_time(last));
  EXPECT_EQ(h.vault->prefetches_issued(), 1u);
  EXPECT_GE(h.vault->buffer().hits(), 1u);
  EXPECT_EQ(h.vault->demand_reads(), 4u);
}

TEST(VaultController, CampsConflictRowFetchedOnReactivation) {
  Harness h(prefetch::SchemeKind::kCamps);
  // Row 5 opens; row 9 displaces it (5 -> CT); row 5 reactivates -> fetch.
  h.submit(0, 5, 0, AccessType::kRead, 0);
  h.submit(0, 9, 0, AccessType::kRead, 100 * kDram);
  h.submit(0, 5, 1, AccessType::kRead, 200 * kDram);
  const u64 later = h.submit(0, 5, 2, AccessType::kRead, 500 * kDram);
  h.run();
  EXPECT_EQ(h.vault->prefetches_issued(), 1u);
  EXPECT_TRUE(h.vault->buffer().contains(BankRow{0, 5}));
  ASSERT_TRUE(h.response_time(later));
  EXPECT_GE(h.vault->buffer().hits(), 1u);
}

TEST(VaultController, DuplicatePrefetchActionsDropped) {
  prefetch::SchemeParams params;
  Harness h(prefetch::SchemeKind::kBase, false, params);
  // Two immediate reads to the same row: the second one's fetch decision
  // must not double-insert.
  h.submit(0, 5, 0, AccessType::kRead, 0);
  h.submit(0, 5, 1, AccessType::kRead, 0);
  h.run();
  EXPECT_EQ(h.vault->prefetches_issued(), 1u);
}

TEST(VaultController, RefreshHappensPeriodically) {
  Harness h(prefetch::SchemeKind::kNone, /*refresh=*/true);
  // Submit sparse traffic across several refresh intervals.
  const auto& t = dram::default_timing();
  std::vector<u64> ids;
  for (int i = 0; i < 30; ++i) {
    ids.push_back(h.submit((i * 3) % 16, static_cast<RowId>(i), 0,
                           AccessType::kRead,
                           static_cast<Tick>(i) * t.tREFI / 4 * kDram));
  }
  h.run();
  for (u64 id : ids) EXPECT_TRUE(h.response_time(id));
  EXPECT_TRUE(h.vault->idle());
}

TEST(VaultController, StatsResetKeepsState) {
  Harness h(prefetch::SchemeKind::kBase);
  h.submit(0, 5, 0);
  h.run();
  ASSERT_EQ(h.vault->prefetches_issued(), 1u);
  h.vault->reset_stats();
  EXPECT_EQ(h.vault->prefetches_issued(), 0u);
  EXPECT_EQ(h.vault->demand_reads(), 0u);
  EXPECT_TRUE(h.vault->buffer().contains(BankRow{0, 5}))
      << "buffer contents survive a stats reset";
}

TEST(VaultController, QueueBackpressureDoesNotLoseRequests) {
  Harness h;
  // Flood one bank-row pair far beyond the 32-entry read queue in one tick.
  std::vector<u64> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(h.submit(static_cast<BankId>(i % 2), 5,
                           static_cast<LineId>(i % 16)));
  }
  h.run();
  EXPECT_EQ(h.responses.size(), ids.size());
}

TEST(VaultController, FrFcfsServesRowHitBeforeOlderMiss) {
  Harness h;
  // Open row 5 in bank 0 and let everything settle.
  h.submit(0, 5, 0);
  // At t=1000 cycles: first an older request that misses (bank 1, cold),
  // then a younger request that hits bank 0's open row. First-ready picks
  // the hit despite its age.
  const u64 miss = h.submit(1, 7, 0, AccessType::kRead, 1000 * kDram);
  const u64 hit = h.submit(0, 5, 3, AccessType::kRead, 1000 * kDram);
  h.run();
  ASSERT_TRUE(h.response_time(miss) && h.response_time(hit));
  EXPECT_LT(*h.response_time(hit), *h.response_time(miss));
}

TEST(VaultController, TrrdSpacesActivations) {
  Harness h;
  // Two cold reads to different banks submitted together: their ACTs must
  // be spaced by at least tRRD, so the responses differ by >= tRRD.
  const u64 a = h.submit(0, 5, 0);
  const u64 b = h.submit(1, 9, 0);
  h.run();
  ASSERT_TRUE(h.response_time(a) && h.response_time(b));
  const Tick gap = *h.response_time(b) - *h.response_time(a);
  EXPECT_GE(gap, dram::default_timing().tRRD * kDram);
}

TEST(VaultController, TfawLimitsActivationBursts) {
  Harness h;
  // Five cold reads to five different banks at once: ACTs 1-4 are spaced
  // by tRRD; the fifth must additionally wait for tFAW after the first.
  std::vector<u64> ids;
  for (u32 b = 0; b < 5; ++b) ids.push_back(h.submit(b, 3, 0));
  h.run();
  const auto& t = dram::default_timing();
  // Response k (k=0..3) ~ first_resp + k*tRRD; response 4 is delayed until
  // the first ACT leaves the tFAW window.
  ASSERT_TRUE(h.response_time(ids[4]) && h.response_time(ids[0]));
  const Tick spread = *h.response_time(ids[4]) - *h.response_time(ids[0]);
  EXPECT_GE(spread, t.tFAW * kDram);
  const Tick inner = *h.response_time(ids[3]) - *h.response_time(ids[0]);
  EXPECT_LT(inner, t.tFAW * kDram) << "first four ACTs need only tRRD gaps";
}

TEST(VaultController, WriteDrainEventuallyWritesUnderReadPressure) {
  Harness h;
  // Saturate with reads while a burst of writes queues up; all writes must
  // still reach the banks (drain hysteresis) by the end.
  for (int i = 0; i < 64; ++i) {
    h.submit((i * 5) % 16, (i * 3) % 32, i % 16, AccessType::kRead,
             static_cast<Tick>(i) * kDram);
  }
  for (int i = 0; i < 30; ++i) {
    h.submit((i * 7) % 16, (i * 11) % 32, i % 16, AccessType::kWrite,
             static_cast<Tick>(i) * kDram);
  }
  h.run();
  EXPECT_EQ(h.vault->demand_writes(), 30u);
}

TEST(VaultControllerClosedPage, BankClosesAfterLoneAccess) {
  Harness h(prefetch::SchemeKind::kNone, false, {}, PagePolicy::kClosed);
  h.submit(0, 5, 0);
  // A second access to the same row long after: the bank must have been
  // precharged in between, so it classifies as empty, not a row hit.
  h.submit(0, 5, 1, AccessType::kRead, 300 * kDram);
  h.run();
  EXPECT_EQ(h.vault->row_hits(), 0u);
  EXPECT_EQ(h.vault->row_empties(), 2u);
  EXPECT_EQ(h.vault->row_conflicts(), 0u);
}

TEST(VaultControllerClosedPage, PendingRowHitsServedBeforeClose) {
  Harness h(prefetch::SchemeKind::kNone, false, {}, PagePolicy::kClosed);
  // Burst to one row arriving together: the close must not destroy the
  // queued row hits.
  std::vector<u64> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(h.submit(0, 5, static_cast<LineId>(i)));
  }
  h.run();
  for (u64 id : ids) EXPECT_TRUE(h.response_time(id));
  EXPECT_GE(h.vault->row_hits(), 5u) << "burst served from the open row";
}

TEST(VaultControllerClosedPage, RemovesConflictsOnPingPong) {
  auto conflicts_with = [](PagePolicy policy) {
    Harness h(prefetch::SchemeKind::kNone, false, {}, policy);
    for (int i = 0; i < 20; ++i) {
      h.submit(0, static_cast<RowId>(i % 2 ? 5 : 9), 0, AccessType::kRead,
               static_cast<Tick>(i) * 100 * kDram);
    }
    h.run();
    return h.vault->row_conflicts();
  };
  EXPECT_GT(conflicts_with(PagePolicy::kOpen), 15u);
  EXPECT_EQ(conflicts_with(PagePolicy::kClosed), 0u);
}

// Scheme sweep: every scheme must complete a mixed workload with all
// responses delivered (liveness).
class VaultSchemeSweep
    : public ::testing::TestWithParam<prefetch::SchemeKind> {};

TEST_P(VaultSchemeSweep, MixedTrafficCompletes) {
  Harness h(GetParam(), /*refresh=*/true);
  u64 x = 31;
  size_t reads = 0;
  for (int i = 0; i < 500; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const bool write = (x & 7) == 0;
    if (!write) ++reads;
    h.submit((x >> 9) % 16, (x >> 22) % 32, (x >> 45) % 16,
             write ? AccessType::kWrite : AccessType::kRead,
             static_cast<Tick>(i) * kDram);
  }
  h.run();
  EXPECT_EQ(h.responses.size(), reads);
  EXPECT_TRUE(h.vault->idle());
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, VaultSchemeSweep,
    ::testing::Values(prefetch::SchemeKind::kNone, prefetch::SchemeKind::kBase,
                      prefetch::SchemeKind::kBaseHit,
                      prefetch::SchemeKind::kMmd, prefetch::SchemeKind::kCamps,
                      prefetch::SchemeKind::kCampsMod));

}  // namespace
}  // namespace camps::hmc
