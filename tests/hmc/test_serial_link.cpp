#include "hmc/serial_link.hpp"

#include <gtest/gtest.h>

#include "sim/clock.hpp"

namespace camps::hmc {
namespace {

TEST(SerialLink, SerializationTimeMatchesBandwidth) {
  // 16 lanes x 12.5 Gbps = 25 bytes/ns. One flit (16 B) = 0.64 ns
  // = 15.36 ticks, rounded up to 16.
  LinkDirection dir;
  EXPECT_EQ(dir.serialization_ticks(1), 16u);
  // 5 flits = 80 B = 3.2 ns = 76.8 ticks -> 77.
  EXPECT_EQ(dir.serialization_ticks(5), 77u);
}

TEST(SerialLink, DeliveryIncludesFlightTime) {
  LinkParams p;
  p.flight_ticks = 96;
  LinkDirection dir(p);
  EXPECT_EQ(dir.submit(0, 1), 16u + 96u);
}

TEST(SerialLink, BackToBackPacketsSerialize) {
  LinkDirection dir;
  const Tick first = dir.submit(0, 5);
  const Tick second = dir.submit(0, 5);
  EXPECT_EQ(second - first, dir.serialization_ticks(5));
}

TEST(SerialLink, IdleGapsDoNotAccumulateCredit) {
  LinkDirection dir;
  dir.submit(0, 1);
  // Submit long after the link went idle: latency is from submission time.
  const Tick t = dir.submit(10000, 1);
  EXPECT_EQ(t, 10000 + dir.serialization_ticks(1) + LinkParams{}.flight_ticks);
}

TEST(SerialLink, CountsTraffic) {
  LinkDirection dir;
  dir.submit(0, 5);
  dir.submit(0, 1);
  EXPECT_EQ(dir.packets_carried(), 2u);
  EXPECT_EQ(dir.flits_carried(), 6u);
  EXPECT_EQ(dir.busy_ticks(),
            dir.serialization_ticks(5) + dir.serialization_ticks(1));
}

TEST(SerialLink, DirectionsAreIndependent) {
  SerialLink link;
  link.downstream().submit(0, 5);
  EXPECT_EQ(link.upstream().busy_until(), 0u);
  link.upstream().submit(0, 5);
  EXPECT_EQ(link.upstream().packets_carried(), 1u);
  EXPECT_EQ(link.downstream().packets_carried(), 1u);
}

TEST(SerialLink, ThroughputMatchesTableI) {
  // Saturate one direction for 1 us and verify ~25 GB/s (within the <3%
  // tick-rounding documented in serial_link.hpp).
  LinkDirection dir;
  const Tick horizon = 1000 * sim::kTicksPerNs;
  u64 flits = 0;
  while (dir.busy_until() < horizon) {
    dir.submit(0, 1);
    ++flits;
  }
  const double bytes_per_ns =
      static_cast<double>(flits) * kFlitBytes / 1000.0;
  EXPECT_GT(bytes_per_ns, 25.0 * 0.95);
  EXPECT_LE(bytes_per_ns, 25.0 * 1.01);
}

TEST(SerialLink, SlowerLinkTakesLonger) {
  LinkParams slow;
  slow.gbps_per_lane = 10.0;
  LinkDirection fast, slower(slow);
  EXPECT_GT(slower.serialization_ticks(5), fast.serialization_ticks(5));
}

TEST(SerialLink, PowerManagementSleepsAfterTimeout) {
  LinkParams p;
  p.power_management = true;
  p.sleep_timeout = 100;
  p.wake_ticks = 50;
  LinkDirection dir(p);
  dir.submit(0, 1);  // first packet never pays a wake penalty
  const Tick busy_after_first = dir.busy_until();
  // A packet well past the timeout pays the retrain latency.
  const Tick t = dir.submit(busy_after_first + 1000, 1);
  EXPECT_EQ(t, busy_after_first + 1000 + 50 + dir.serialization_ticks(1) +
                   p.flight_ticks);
  EXPECT_EQ(dir.wakeups(), 1u);
  EXPECT_EQ(dir.ticks_asleep(), 1000u - 100u);
}

TEST(SerialLink, PowerManagementIgnoresShortGaps) {
  LinkParams p;
  p.power_management = true;
  p.sleep_timeout = 100;
  LinkDirection dir(p);
  dir.submit(0, 1);
  const Tick busy = dir.busy_until();
  dir.submit(busy + 50, 1);  // gap below the timeout
  EXPECT_EQ(dir.wakeups(), 0u);
  EXPECT_EQ(dir.ticks_asleep(), 0u);
}

TEST(SerialLink, PowerManagementOffByDefault) {
  LinkDirection dir;
  dir.submit(0, 1);
  dir.submit(1000000, 1);
  EXPECT_EQ(dir.wakeups(), 0u);
}

TEST(SerialLink, FewerLanesTakeLonger) {
  LinkParams narrow;
  narrow.lanes = 8;
  LinkDirection full, half(narrow);
  // Half the lanes, double the time — up to the per-packet ceiling rounding
  // (each serialization rounds up independently).
  EXPECT_GE(half.serialization_ticks(1) + 1, 2 * full.serialization_ticks(1));
  EXPECT_LE(half.serialization_ticks(1), 2 * full.serialization_ticks(1));
}

}  // namespace
}  // namespace camps::hmc
