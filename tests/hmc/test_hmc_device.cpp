// Whole-device and host-controller behaviour.
#include <gtest/gtest.h>
#include <memory>

#include "hmc/host_controller.hpp"

namespace camps::hmc {
namespace {

struct DeviceHarness {
  sim::Simulator sim;
  StatRegistry stats;
  std::unique_ptr<HostController> host;

  explicit DeviceHarness(
      prefetch::SchemeKind scheme = prefetch::SchemeKind::kNone,
      HmcConfig cfg = {}) {
    cfg.vault.refresh_enabled = false;  // determinism for latency asserts
    host = std::make_unique<HostController>(sim, cfg, scheme,
                                            prefetch::SchemeParams{}, &stats);
  }
};

TEST(HostController, ReadCompletesWithCallback) {
  DeviceHarness h;
  bool done = false;
  h.host->read(0x1000, 0, [&](const MemRequest& req) {
    done = true;
    EXPECT_EQ(req.addr, 0x1000u);
  });
  h.sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(h.host->reads_completed(), 1u);
  EXPECT_TRUE(h.host->idle());
}

TEST(HostController, EndToEndLatencyIncludesLinksAndDram) {
  DeviceHarness h;
  h.host->read(0x1000, 0, nullptr);
  h.sim.run();
  // Round trip: link ser+flight (~4.7 ns) + xbar (2.5) + ACT+RD (32.5 ns)
  // + xbar + response link (~7.2 ns) => > 45 ns => > 135 CPU cycles.
  EXPECT_GT(h.host->mean_read_latency_cycles(), 135.0);
  EXPECT_LT(h.host->mean_read_latency_cycles(), 400.0);
}

TEST(HostController, WritesArePosted) {
  DeviceHarness h;
  h.host->write(0x2000, 1);
  h.sim.run();
  EXPECT_EQ(h.host->writes_issued(), 1u);
  EXPECT_EQ(h.host->reads_completed(), 0u);
  EXPECT_TRUE(h.host->idle());
}

TEST(HostController, ManyReadsAllComplete) {
  DeviceHarness h;
  int completed = 0;
  u64 x = 77;
  for (int i = 0; i < 1000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    h.host->read((x % (u64{1} << 33)) & ~u64{63}, x % 8,
                 [&](const MemRequest&) { ++completed; });
  }
  h.sim.run();
  EXPECT_EQ(completed, 1000);
  EXPECT_EQ(h.host->reads_completed(), 1000u);
  EXPECT_TRUE(h.host->idle());
}

TEST(HostController, LatencyHistogramPopulated) {
  DeviceHarness h;
  for (int i = 0; i < 50; ++i) {
    h.host->read(static_cast<Addr>(i) * 4096, 0, nullptr);
  }
  h.sim.run();
  EXPECT_EQ(h.host->latency_histogram().count(), 50u);
  EXPECT_GT(h.host->latency_histogram().mean(), 0.0);
}

TEST(HostController, ResetStatsClearsLatency) {
  DeviceHarness h;
  h.host->read(0, 0, nullptr);
  h.sim.run();
  h.host->reset_stats();
  EXPECT_EQ(h.host->reads_completed(), 0u);
  EXPECT_EQ(h.host->latency_histogram().count(), 0u);
  EXPECT_DOUBLE_EQ(h.host->mean_read_latency_cycles(), 0.0);
}

TEST(HmcDevice, RequestsRouteToCorrectVault) {
  DeviceHarness h;
  const AddressMap& map = h.host->device().map();
  // Target vault 7 explicitly through the address encoding.
  DecodedAddr d;
  d.vault = 7;
  d.bank = 3;
  d.row = 11;
  d.column = 2;
  const Addr addr = map.encode(d);
  h.host->read(addr, 0, nullptr);
  h.sim.run();
  EXPECT_EQ(h.host->device().vault(7).demand_reads(), 1u);
  for (VaultId v = 0; v < h.host->device().vault_count(); ++v) {
    if (v != 7) {
      EXPECT_EQ(h.host->device().vault(v).demand_reads(), 0u);
    }
  }
}

TEST(HmcDevice, AggregatesSumOverVaults) {
  DeviceHarness h;
  const AddressMap& map = h.host->device().map();
  for (u32 v = 0; v < 8; ++v) {
    DecodedAddr d;
    d.vault = v;
    d.bank = 0;
    d.row = 1;
    d.column = 0;
    h.host->read(map.encode(d), 0, nullptr);
  }
  h.sim.run();
  EXPECT_EQ(h.host->device().total_row_empties(), 8u);
  EXPECT_EQ(h.host->device().total_row_hits() +
                h.host->device().total_row_conflicts(),
            0u);
}

TEST(HmcDevice, EnergyAccumulatesLinkAndDramEvents) {
  DeviceHarness h;
  h.host->read(0x40, 0, nullptr);
  h.sim.run();
  const auto& e = h.host->device().energy();
  using energy::EnergyEvent;
  EXPECT_EQ(e.count(EnergyEvent::kActivate), 1u);
  EXPECT_EQ(e.count(EnergyEvent::kReadLine), 1u);
  // 1 request flit down + 5 response flits up.
  EXPECT_EQ(e.count(EnergyEvent::kLinkFlit), 6u);
}

TEST(HmcDevice, PrefetchAccuracyZeroWithoutPrefetching) {
  DeviceHarness h(prefetch::SchemeKind::kNone);
  h.host->read(0x40, 0, nullptr);
  h.sim.run();
  EXPECT_DOUBLE_EQ(h.host->device().prefetch_accuracy(), 0.0);
  EXPECT_EQ(h.host->device().total_prefetches(), 0u);
}

TEST(HmcDevice, BaseSchemePrefetchesAcrossVaults) {
  DeviceHarness h(prefetch::SchemeKind::kBase);
  u64 x = 5;
  for (int i = 0; i < 200; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    h.host->read((x % (u64{1} << 30)) & ~u64{63}, 0, nullptr);
  }
  h.sim.run();
  EXPECT_GT(h.host->device().total_prefetches(), 100u);
  EXPECT_EQ(h.host->device().total_row_conflicts(), 0u);
}

TEST(HmcDevice, ConflictRateComputedOverAllOutcomes) {
  DeviceHarness h;
  const AddressMap& map = h.host->device().map();
  DecodedAddr d;
  d.vault = 0;
  d.bank = 0;
  d.column = 0;
  // Alternate rows 1/2 in one bank with spacing: empty, then conflicts.
  for (int i = 0; i < 10; ++i) {
    d.row = 1 + (i % 2);
    const Addr addr = map.encode(d);
    h.sim.schedule_at(static_cast<Tick>(i) * 3000,
                      [&h, addr] { h.host->read(addr, 0, nullptr); });
  }
  h.sim.run();
  const double rate = h.host->device().row_conflict_rate();
  EXPECT_GT(rate, 0.5);
  EXPECT_LE(rate, 1.0);
}

TEST(HmcDevice, FewerLinksStillDeliver) {
  HmcConfig cfg;
  cfg.num_links = 1;
  DeviceHarness h(prefetch::SchemeKind::kNone, cfg);
  int completed = 0;
  for (int i = 0; i < 100; ++i) {
    h.host->read(static_cast<Addr>(i) * 64, 0,
                 [&](const MemRequest&) { ++completed; });
  }
  h.sim.run();
  EXPECT_EQ(completed, 100);
}

TEST(HmcDevice, StatRegistryExposesVaultCounters) {
  DeviceHarness h;
  h.host->read(0x40, 0, nullptr);
  h.sim.run();
  EXPECT_EQ(h.stats.sum_matching("vault*.rb_empty"), 1u);
}

}  // namespace
}  // namespace camps::hmc
