#include "hmc/address_map.hpp"


#include <gtest/gtest.h>
#include <set>
#include <vector>

namespace camps::hmc {
namespace {

TEST(Geometry, TableIDefaults) {
  const HmcGeometry g;
  EXPECT_EQ(g.vaults, 32u);
  EXPECT_EQ(g.banks_per_vault, 16u);
  EXPECT_EQ(g.row_bytes, 1024u);
  EXPECT_EQ(g.line_bytes, 64u);
  EXPECT_EQ(g.lines_per_row(), 16u);
  EXPECT_EQ(g.capacity_bytes(), u64{8} << 30);  // 8 GB cube
  EXPECT_TRUE(g.valid());
}

TEST(Geometry, NonPowerOfTwoInvalid) {
  HmcGeometry g;
  g.vaults = 12;
  EXPECT_FALSE(g.valid());
  g = HmcGeometry{};
  g.row_bytes = 1000;
  EXPECT_FALSE(g.valid());
}

TEST(AddressMap, DecodeEncodeRoundTrip) {
  const AddressMap map;
  u64 x = 17;
  for (int i = 0; i < 2000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const Addr addr = (x % map.geometry().capacity_bytes()) & ~u64{63};
    const DecodedAddr d = map.decode(addr);
    EXPECT_EQ(map.encode(d), addr);
  }
}

TEST(AddressMap, FieldRangesRespected) {
  const AddressMap map;
  u64 x = 23;
  for (int i = 0; i < 2000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const DecodedAddr d = map.decode(x);
    EXPECT_LT(d.vault, 32u);
    EXPECT_LT(d.bank, 16u);
    EXPECT_LT(d.row, map.geometry().rows_per_bank);
    EXPECT_LT(d.column, 16u);
    EXPECT_EQ(d.rank, 0u);
  }
}

TEST(AddressMap, RoRaBaVaCoConsecutiveLinesShareRow) {
  const AddressMap map;  // default order
  const DecodedAddr a = map.decode(0);
  for (Addr addr = 64; addr < 1024; addr += 64) {
    const DecodedAddr d = map.decode(addr);
    EXPECT_EQ(d.vault, a.vault);
    EXPECT_EQ(d.bank, a.bank);
    EXPECT_EQ(d.row, a.row);
    EXPECT_EQ(d.column, addr / 64);
  }
}

TEST(AddressMap, RoRaBaVaCoRowsStripeAcrossVaults) {
  const AddressMap map;
  const DecodedAddr a = map.decode(0);
  const DecodedAddr b = map.decode(1024);  // next row-sized block
  EXPECT_NE(b.vault, a.vault);
  EXPECT_EQ(b.bank, a.bank);
  EXPECT_EQ(b.row, a.row);
}

TEST(AddressMap, SameBankRowStrideChangesOnlyRow) {
  for (const FieldOrder& order : {kRoRaBaVaCo, kRoBaRaCoVa, kRoVaRaCoBa}) {
    const AddressMap map(HmcGeometry{}, order);
    const u64 stride = map.same_bank_row_stride();
    u64 x = 5;
    for (int i = 0; i < 200; ++i) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
      const Addr addr =
          (x % (map.geometry().capacity_bytes() - stride)) & ~u64{63};
      const DecodedAddr a = map.decode(addr);
      const DecodedAddr b = map.decode(addr + stride);
      EXPECT_EQ(a.vault, b.vault) << map.order_name();
      EXPECT_EQ(a.bank, b.bank) << map.order_name();
      EXPECT_EQ(a.rank, b.rank) << map.order_name();
      EXPECT_EQ(a.row + 1, b.row) << map.order_name();
    }
  }
}

TEST(AddressMap, DefaultStrideIs512KiB) {
  // 64 B x 16 columns x 32 vaults x 16 banks (rank size 1).
  EXPECT_EQ(AddressMap().same_bank_row_stride(), u64{1} << 19);
}

TEST(AddressMap, AddressesWrapAtCapacity) {
  const AddressMap map;
  const Addr cap = map.geometry().capacity_bytes();
  EXPECT_EQ(map.decode(cap + 4096), map.decode(4096));
}

TEST(AddressMap, OrderNames) {
  EXPECT_EQ(AddressMap(HmcGeometry{}, kRoRaBaVaCo).order_name(), "RoRaBaVaCo");
  EXPECT_EQ(AddressMap(HmcGeometry{}, kRoBaRaCoVa).order_name(), "RoBaRaCoVa");
  EXPECT_EQ(AddressMap(HmcGeometry{}, kRoVaRaCoBa).order_name(), "RoVaRaCoBa");
}

TEST(AddressMap, FineInterleaveOrderStripesLinesAcrossVaults) {
  const AddressMap map(HmcGeometry{}, kRoBaRaCoVa);
  // Vault is the least significant field: consecutive lines change vault.
  const DecodedAddr a = map.decode(0);
  const DecodedAddr b = map.decode(64);
  EXPECT_NE(a.vault, b.vault);
}

TEST(AddressMap, DistributesLinesUniformly) {
  const AddressMap map;
  std::vector<u64> per_vault(32, 0);
  for (Addr addr = 0; addr < (u64{1} << 22); addr += 64) {
    ++per_vault[map.decode(addr).vault];
  }
  const u64 expect = (u64{1} << 22) / 64 / 32;
  for (u64 count : per_vault) EXPECT_EQ(count, expect);
}

TEST(AddressMap, SmallGeometry) {
  HmcGeometry g;
  g.vaults = 1;
  g.banks_per_vault = 2;
  g.rows_per_bank = 4;
  const AddressMap map(g);
  std::set<std::tuple<u32, u32, u64, u32>> seen;
  for (Addr addr = 0; addr < g.capacity_bytes(); addr += 64) {
    const DecodedAddr d = map.decode(addr);
    EXPECT_TRUE(
        seen.emplace(d.vault, d.bank, d.row, d.column).second)
        << "each line address decodes uniquely";
  }
  EXPECT_EQ(seen.size(), g.capacity_bytes() / 64);
}

}  // namespace
}  // namespace camps::hmc
