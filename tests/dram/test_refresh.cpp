#include "dram/refresh.hpp"

#include <gtest/gtest.h>

namespace camps::dram {
namespace {

TEST(Refresh, NotDueBeforeFirstInterval) {
  const TimingParams t = default_timing();
  RefreshScheduler r(t);
  EXPECT_FALSE(r.due(0));
  EXPECT_FALSE(r.due(t.tREFI - 1));
  EXPECT_TRUE(r.due(t.tREFI));
  EXPECT_EQ(r.next_due(), t.tREFI);
}

TEST(Refresh, DisabledNeverDue) {
  const TimingParams t = default_timing();
  RefreshScheduler r(t, /*enabled=*/false);
  EXPECT_FALSE(r.due(100 * t.tREFI));
  EXPECT_EQ(r.next_due(), kTickNever);
}

TEST(Refresh, StartSetsBusyWindow) {
  const TimingParams t = default_timing();
  RefreshScheduler r(t);
  r.start(t.tREFI);
  EXPECT_EQ(r.busy_until(), t.tREFI + t.tRFC);
  EXPECT_TRUE(r.in_progress(t.tREFI));
  EXPECT_TRUE(r.in_progress(t.tREFI + t.tRFC - 1));
  EXPECT_FALSE(r.in_progress(t.tREFI + t.tRFC));
}

TEST(Refresh, NextDueAdvancesByFullInterval) {
  const TimingParams t = default_timing();
  RefreshScheduler r(t);
  r.start(t.tREFI + 50);  // started late
  // Due point anchored to the schedule, not the late start.
  EXPECT_EQ(r.next_due(), 2 * t.tREFI);
  EXPECT_EQ(r.refreshes_issued(), 1u);
}

TEST(Refresh, CatchesUpAfterLongStall) {
  const TimingParams t = default_timing();
  RefreshScheduler r(t);
  // Controller was blocked for 10 intervals; scheduler must not demand a
  // storm of 10 back-to-back refreshes.
  const u64 late = 10 * t.tREFI;
  ASSERT_TRUE(r.due(late));
  r.start(late);
  EXPECT_GE(r.next_due() + t.tREFI, late);
  EXPECT_EQ(r.refreshes_issued(), 1u);
}

TEST(Refresh, PeriodicSteadyState) {
  const TimingParams t = default_timing();
  RefreshScheduler r(t);
  u64 issued = 0;
  for (u64 cycle = 0; cycle < 20 * t.tREFI; ++cycle) {
    if (r.due(cycle) && !r.in_progress(cycle)) {
      r.start(cycle);
      ++issued;
      cycle = r.busy_until();
    }
  }
  EXPECT_EQ(issued, r.refreshes_issued());
  EXPECT_GE(issued, 19u);
  EXPECT_LE(issued, 20u);
}

}  // namespace
}  // namespace camps::dram
