#include "dram/bank.hpp"

#include <gtest/gtest.h>
#include <optional>

namespace camps::dram {
namespace {

class BankTest : public ::testing::Test {
 protected:
  TimingParams t_ = default_timing();
  Bank bank_{t_};
};

TEST_F(BankTest, StartsPrecharged) {
  EXPECT_EQ(bank_.state(0), BankState::kPrecharged);
  EXPECT_FALSE(bank_.open_row(0).has_value());
}

TEST_F(BankTest, ClassifyEmptyWhenPrecharged) {
  EXPECT_EQ(bank_.classify(0, 5), RowBufferOutcome::kEmpty);
}

TEST_F(BankTest, ActivateOpensRowAfterTrcd) {
  bank_.activate(0, 7);
  EXPECT_EQ(bank_.state(0), BankState::kActivating);
  EXPECT_EQ(bank_.state(t_.tRCD - 1), BankState::kActivating);
  EXPECT_EQ(bank_.state(t_.tRCD), BankState::kActive);
  EXPECT_EQ(bank_.open_row(0), std::make_optional<RowId>(7));
}

TEST_F(BankTest, ClassifyHitAndConflict) {
  bank_.activate(0, 7);
  EXPECT_EQ(bank_.classify(t_.tRCD, 7), RowBufferOutcome::kHit);
  EXPECT_EQ(bank_.classify(t_.tRCD, 8), RowBufferOutcome::kConflict);
}

TEST_F(BankTest, EarliestColumnRespectsTrcd) {
  bank_.activate(0, 7);
  EXPECT_EQ(bank_.earliest_column(0), t_.tRCD);
  EXPECT_EQ(bank_.earliest_column(t_.tRCD + 3), t_.tRCD + 3);
}

TEST_F(BankTest, ReadLatencyIsClPlusBurst) {
  bank_.activate(0, 7);
  const u64 issue = t_.tRCD;
  EXPECT_EQ(bank_.read(issue), issue + t_.tCL + t_.tBURST);
}

TEST_F(BankTest, BackToBackReadsSpacedByTccd) {
  bank_.activate(0, 7);
  const u64 first = t_.tRCD;
  bank_.read(first);
  EXPECT_EQ(bank_.earliest_column(first), first + t_.tCCD);
  bank_.read(first + t_.tCCD);
}

TEST_F(BankTest, EarliestPrechargeHonorsTras) {
  bank_.activate(0, 7);
  EXPECT_EQ(bank_.earliest_precharge(0), t_.tRAS);
}

TEST_F(BankTest, EarliestPrechargeHonorsReadToPre) {
  bank_.activate(0, 7);
  const u64 rd = t_.tRAS;  // read late so tRTP dominates tRAS
  bank_.read(rd);
  EXPECT_EQ(bank_.earliest_precharge(rd), rd + t_.tRTP);
}

TEST_F(BankTest, EarliestPrechargeHonorsWriteRecovery) {
  bank_.activate(0, 7);
  const u64 wr = t_.tRCD;
  const u64 data_end = bank_.write(wr);
  EXPECT_EQ(data_end, wr + t_.tWL + t_.tBURST);
  const u64 want = data_end + t_.tWR;
  EXPECT_EQ(bank_.earliest_precharge(want - 1), want);
}

TEST_F(BankTest, PrechargeClosesRowAfterTrp) {
  bank_.activate(0, 7);
  const u64 pre = bank_.earliest_precharge(t_.tRCD);
  bank_.precharge(pre);
  EXPECT_EQ(bank_.state(pre), BankState::kPrecharging);
  EXPECT_EQ(bank_.state(pre + t_.tRP), BankState::kPrecharged);
  EXPECT_FALSE(bank_.open_row(pre + t_.tRP).has_value());
}

TEST_F(BankTest, ActivateAfterPrechargeWaitsTrp) {
  bank_.activate(0, 7);
  const u64 pre = bank_.earliest_precharge(0);
  bank_.precharge(pre);
  EXPECT_EQ(bank_.earliest_activate(pre), pre + t_.tRP);
  bank_.activate(pre + t_.tRP, 9);
  EXPECT_EQ(bank_.open_row(pre + t_.tRP), std::make_optional<RowId>(9));
}

TEST_F(BankTest, EarliestActivateNeverWhileActive) {
  bank_.activate(0, 7);
  EXPECT_EQ(bank_.earliest_activate(t_.tRCD), kTickNever);
}

TEST_F(BankTest, EarliestColumnNeverWhilePrecharged) {
  EXPECT_EQ(bank_.earliest_column(0), kTickNever);
}

TEST_F(BankTest, RowFetchTakesClPlusRowFetchCycles) {
  bank_.activate(0, 7);
  const u64 start = t_.tRCD;
  EXPECT_EQ(bank_.fetch_row(start), start + t_.tCL + t_.tROWFETCH);
}

TEST_F(BankTest, RowFetchGatesPrecharge) {
  bank_.activate(0, 7);
  const u64 start = t_.tRAS;  // fetch late so its gate dominates tRAS
  const u64 done = bank_.fetch_row(start);
  EXPECT_EQ(bank_.earliest_precharge(start), done);
}

TEST_F(BankTest, RefreshBlocksUntilTrfc) {
  bank_.refresh(0);
  EXPECT_EQ(bank_.state(0), BankState::kRefreshing);
  EXPECT_EQ(bank_.state(t_.tRFC - 1), BankState::kRefreshing);
  EXPECT_EQ(bank_.state(t_.tRFC), BankState::kPrecharged);
  EXPECT_EQ(bank_.earliest_activate(0), t_.tRFC);
}

TEST_F(BankTest, CountsCommands) {
  bank_.activate(0, 1);
  bank_.read(t_.tRCD);
  bank_.write(t_.tRCD + t_.tCCD);
  bank_.fetch_row(t_.tRCD + 2 * t_.tCCD);
  const u64 pre = bank_.earliest_precharge(t_.tRCD + 2 * t_.tCCD);
  bank_.precharge(pre);
  EXPECT_EQ(bank_.activate_count(), 1u);
  EXPECT_EQ(bank_.read_count(), 1u);
  EXPECT_EQ(bank_.write_count(), 1u);
  EXPECT_EQ(bank_.row_fetch_count(), 1u);
  EXPECT_EQ(bank_.precharge_count(), 1u);
}

TEST_F(BankTest, FullCycleTwice) {
  // Two complete ACT-RD-PRE cycles; state machine must return to start.
  u64 now = 0;
  for (int i = 0; i < 2; ++i) {
    now = bank_.earliest_activate(now);
    ASSERT_NE(now, kTickNever);
    bank_.activate(now, static_cast<RowId>(i));
    now = bank_.earliest_column(now);
    bank_.read(now);
    now = bank_.earliest_precharge(now);
    bank_.precharge(now);
    now += t_.tRP;
  }
  EXPECT_EQ(bank_.activate_count(), 2u);
  EXPECT_EQ(bank_.state(now), BankState::kPrecharged);
}

TEST_F(BankTest, RandomLegalCommandFuzz) {
  // Drive the bank with thousands of randomly chosen commands, always at
  // the earliest legal cycle reported by the bank itself. The always-on
  // CAMPS_ASSERTs inside the command methods are the oracle: any
  // inconsistency between the earliest_* queries and command legality
  // aborts the test.
  u64 x = 424242;
  u64 cycle = 0;
  int issued = 0;
  for (int step = 0; step < 5000; ++step) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const int choice = static_cast<int>((x >> 33) % 5);
    switch (choice) {
      case 0: {  // activate
        const u64 when = bank_.earliest_activate(cycle);
        if (when == kTickNever) break;
        bank_.activate(when, (x >> 40) % 64);
        cycle = when;
        ++issued;
        break;
      }
      case 1: {  // read
        const u64 when = bank_.earliest_column(cycle);
        if (when == kTickNever) break;
        bank_.read(when);
        cycle = when;
        ++issued;
        break;
      }
      case 2: {  // write
        const u64 when = bank_.earliest_column(cycle);
        if (when == kTickNever) break;
        bank_.write(when);
        cycle = when;
        ++issued;
        break;
      }
      case 3: {  // row fetch
        const u64 when = bank_.earliest_column(cycle);
        if (when == kTickNever) break;
        bank_.fetch_row(when);
        cycle = when;
        ++issued;
        break;
      }
      case 4: {  // precharge
        const u64 when = bank_.earliest_precharge(cycle);
        if (when == kTickNever) break;
        bank_.precharge(when);
        cycle = when;
        ++issued;
        break;
      }
    }
    // Let time drift forward occasionally so transients settle.
    if ((x & 7) == 0) cycle += (x >> 50) % 40;
  }
  EXPECT_GT(issued, 2000) << "fuzzer must actually exercise the machine";
  EXPECT_EQ(bank_.activate_count(), bank_.precharge_count() +
                                        (bank_.open_row(cycle) ? 1u : 0u))
      << "every completed row lifetime pairs ACT with PRE";
}

// Property sweep: for a spread of timing configurations, the
// earliest_* queries must themselves be legal issue times.
struct TimingCase {
  u64 trcd, trp, tcl, tras;
};

class BankTimingSweep : public ::testing::TestWithParam<TimingCase> {};

TEST_P(BankTimingSweep, EarliestQueriesAreLegal) {
  const auto tc = GetParam();
  TimingParams t = default_timing();
  t.tRCD = tc.trcd;
  t.tRP = tc.trp;
  t.tCL = tc.tcl;
  t.tRAS = tc.tras;
  ASSERT_TRUE(t.valid());
  Bank bank(t);

  u64 now = 5;
  const u64 act = bank.earliest_activate(now);
  bank.activate(act, 3);
  const u64 col = bank.earliest_column(act);
  EXPECT_GE(col, act + t.tRCD);
  bank.read(col);
  const u64 pre = bank.earliest_precharge(col);
  EXPECT_GE(pre, act + t.tRAS);
  bank.precharge(pre);
  const u64 act2 = bank.earliest_activate(pre);
  EXPECT_EQ(act2, pre + t.tRP);
  bank.activate(act2, 4);
}

INSTANTIATE_TEST_SUITE_P(
    Timings, BankTimingSweep,
    ::testing::Values(TimingCase{11, 11, 11, 28}, TimingCase{1, 1, 1, 1},
                      TimingCase{5, 20, 7, 40}, TimingCase{20, 5, 30, 60},
                      TimingCase{11, 11, 11, 11}));

}  // namespace
}  // namespace camps::dram
