#include "dram/timing.hpp"

#include <gtest/gtest.h>

namespace camps::dram {
namespace {

TEST(Timing, DefaultsMatchTableI) {
  const TimingParams t = default_timing();
  EXPECT_EQ(t.tRCD, 11u);
  EXPECT_EQ(t.tRP, 11u);
  EXPECT_EQ(t.tCL, 11u);
}

TEST(Timing, DefaultsAreValid) {
  EXPECT_TRUE(default_timing().valid());
}

TEST(Timing, ZeroCoreParamsInvalid) {
  TimingParams t = default_timing();
  t.tRCD = 0;
  EXPECT_FALSE(t.valid());
  t = default_timing();
  t.tRP = 0;
  EXPECT_FALSE(t.valid());
  t = default_timing();
  t.tCL = 0;
  EXPECT_FALSE(t.valid());
  t = default_timing();
  t.tBURST = 0;
  EXPECT_FALSE(t.valid());
  t = default_timing();
  t.tROWFETCH = 0;
  EXPECT_FALSE(t.valid());
}

TEST(Timing, RasShorterThanRcdInvalid) {
  TimingParams t = default_timing();
  t.tRAS = t.tRCD - 1;
  EXPECT_FALSE(t.valid());
}

TEST(Timing, RefreshMustFitInterval) {
  TimingParams t = default_timing();
  t.tREFI = t.tRFC;
  EXPECT_FALSE(t.valid());
}

TEST(Timing, RefreshIntervalMatches78Microseconds) {
  // 7.8 us at 800 MHz = 6240 cycles.
  EXPECT_EQ(default_timing().tREFI, 6240u);
}

TEST(Timing, ActivationWindowConstraintsSane) {
  const TimingParams t = default_timing();
  // Four tRRD-spaced ACTs must not already exceed the tFAW window, or
  // tFAW would degenerate into a tighter tRRD.
  EXPECT_GT(t.tFAW, 3 * t.tRRD);
}

}  // namespace
}  // namespace camps::dram
