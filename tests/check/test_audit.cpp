// Audit subsystem tests: the reporter/scope machinery, clean audits of
// healthy components, and — the important half — corruption injection:
// damage a component's private state through the TestCorruptor back door
// and assert the audit *reports* the violation. A checker that cannot see
// planted corruption would silently pass the periodic --audit-every runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "cache/mshr.hpp"
#include "check/audit.hpp"
#include "dram/bank.hpp"
#include "prefetch/conflict_table.hpp"
#include "prefetch/prefetch_buffer.hpp"
#include "prefetch/replacement.hpp"
#include "prefetch/rut.hpp"
#include "prefetch/scheme_camps.hpp"
#include "sim/event_queue.hpp"
#include "system/system.hpp"

namespace camps::check {

// The test-only back door the model classes befriend. Each hook plants one
// specific inconsistency that a correct audit must flag.
struct TestCorruptor {
  static void duplicate_ct_entry(prefetch::ConflictTable& ct) {
    ct.lru_.push_back(ct.lru_.front());
  }
  static void overflow_ct(prefetch::ConflictTable& ct) {
    for (u32 i = 0; i <= ct.capacity_; ++i) {
      ct.lru_.push_back(BankRow{15, 40'000 + i});
    }
  }
  static void duplicate_recency(prefetch::PrefetchBuffer& buffer) {
    buffer.mru_order_.push_back(buffer.mru_order_.front());
  }
  static void skew_utilization(prefetch::PrefetchBuffer& buffer) {
    for (auto& entry : buffer.slots_) {
      if (entry.valid) {
        entry.utilization += 7;
        return;
      }
    }
  }
  static void scramble_bank_state(dram::Bank& bank) {
    bank.raw_state_ = static_cast<dram::BankState>(250);
  }
  static void unbalance_bank_counters(dram::Bank& bank) { ++bank.n_pre_; }
  static void delay_heap_root(sim::EventQueue& queue) {
    queue.heap_.front().when += Tick{1} << 40;
  }
  static void cross_rut_ct(prefetch::CampsScheme& scheme, BankId bank,
                           RowId row) {
    scheme.ct_.insert(BankRow{bank, row});
  }
};

namespace {

bool reports(const AuditReporter& rep, const std::string& invariant) {
  const auto& v = rep.violations();
  return std::any_of(v.begin(), v.end(), [&](const Violation& x) {
    return x.invariant == invariant;
  });
}

TEST(AuditReporter, ScopesNestIntoDottedComponentNames) {
  AuditReporter rep;
  rep.set_tick(42);
  {
    const AuditScope outer(rep, "vault3");
    {
      const AuditScope inner(rep, "bank7");
      rep.violation("test-rule", "something broke");
    }
    EXPECT_EQ(rep.component(), "vault3");
  }
  ASSERT_EQ(rep.violations().size(), 1u);
  EXPECT_EQ(rep.violations()[0].component, "vault3.bank7");
  EXPECT_EQ(rep.violations()[0].invariant, "test-rule");
  EXPECT_EQ(rep.violations()[0].tick, 42u);
  EXPECT_NE(rep.report().find("vault3.bank7"), std::string::npos);
  EXPECT_NE(rep.report().find("test-rule"), std::string::npos);
}

TEST(AuditReporter, ExpectCountsChecksAndRecordsOnlyFailures) {
  AuditReporter rep;
  EXPECT_TRUE(rep.expect(true, "holds", "fine"));
  EXPECT_FALSE(rep.expect(false, "broken", "not fine"));
  EXPECT_EQ(rep.checks_run(), 2u);
  ASSERT_EQ(rep.violations().size(), 1u);
  EXPECT_EQ(rep.violations()[0].invariant, "broken");
  EXPECT_FALSE(rep.clean());
}

TEST(AuditFail, AbortsThroughTheAssertPath) {
  AuditReporter rep;
  rep.violation("planted", "deliberate for the death test");
  EXPECT_DEATH(audit_fail(rep), "model audit");
}

// --- clean components must audit clean ---------------------------------

TEST(CleanAudit, EventQueueAfterMixedTraffic) {
  sim::EventQueue q;
  int fired = 0;
  for (int i = 0; i < 16; ++i) q.schedule(100 - i, [&fired] { ++fired; });
  for (int i = 0; i < 5; ++i) q.pop().second();
  AuditReporter rep;
  q.audit(rep);
  EXPECT_TRUE(rep.clean()) << rep.report();
  EXPECT_GT(rep.checks_run(), 0u);
}

TEST(CleanAudit, BankThroughLegalCommandSequence) {
  const dram::TimingParams t = dram::default_timing();
  dram::Bank bank(t);
  auto audit_clean = [&bank](const char* when) {
    AuditReporter rep;
    bank.audit(rep);
    EXPECT_TRUE(rep.clean()) << when << ":\n" << rep.report();
  };
  audit_clean("fresh");
  u64 cycle = bank.earliest_activate(0);
  bank.activate(cycle, 17);
  audit_clean("after ACT");
  cycle = bank.earliest_column(cycle);
  bank.read(cycle);
  audit_clean("after RD");
  cycle = bank.earliest_precharge(cycle);
  bank.precharge(cycle);
  audit_clean("after PRE");
}

TEST(CleanAudit, CampsTablesAfterSchemeTraffic) {
  prefetch::CampsScheme scheme;
  prefetch::AccessContext ctx;
  for (u32 i = 0; i < 200; ++i) {
    ctx.bank = i % 16;
    ctx.row = (i * 7) % 64;
    ctx.outcome = (i % 3 == 0) ? dram::RowBufferOutcome::kHit
                               : dram::RowBufferOutcome::kConflict;
    scheme.on_demand_access(ctx);
  }
  AuditReporter rep;
  scheme.audit(rep);
  EXPECT_TRUE(rep.clean()) << rep.report();
  EXPECT_GT(rep.checks_run(), 0u);
}

TEST(CleanAudit, PrefetchBufferAndMshr) {
  prefetch::PrefetchBuffer buffer({.entries = 4, .lines_per_row = 16},
                                  prefetch::make_lru());
  for (u32 r = 0; r < 6; ++r) buffer.insert(BankRow{0, r});
  buffer.access(BankRow{0, 4}, 3, AccessType::kRead);
  cache::MshrFile mshrs(8);
  mshrs.allocate(0x1000, [] {});
  mshrs.allocate(0x1000, [] {});
  AuditReporter rep;
  buffer.audit(rep);
  mshrs.audit(rep);
  EXPECT_TRUE(rep.clean()) << rep.report();
}

// --- corruption injection: the audit must see planted damage ------------

TEST(CorruptionAudit, ConflictTableLruDuplicate) {
  prefetch::ConflictTable ct(8);
  ct.insert(BankRow{2, 30});
  ct.insert(BankRow{3, 31});
  TestCorruptor::duplicate_ct_entry(ct);
  AuditReporter rep;
  ct.audit(rep);
  EXPECT_TRUE(reports(rep, "ct-duplicate")) << rep.report();
}

TEST(CorruptionAudit, ConflictTableOverflow) {
  prefetch::ConflictTable ct(8);
  TestCorruptor::overflow_ct(ct);
  AuditReporter rep;
  ct.audit(rep);
  EXPECT_TRUE(reports(rep, "ct-capacity")) << rep.report();
}

TEST(CorruptionAudit, RecencyStackNotAPermutation) {
  prefetch::PrefetchBuffer buffer({.entries = 8, .lines_per_row = 16},
                                  prefetch::make_lru());
  buffer.insert(BankRow{1, 10});
  buffer.insert(BankRow{1, 11});
  TestCorruptor::duplicate_recency(buffer);
  AuditReporter rep;
  buffer.audit(rep);
  EXPECT_TRUE(reports(rep, "recency-permutation")) << rep.report();
}

TEST(CorruptionAudit, UtilizationCounterDriftsFromBitmap) {
  prefetch::PrefetchBuffer buffer({.entries = 8, .lines_per_row = 16},
                                  prefetch::make_lru());
  buffer.insert(BankRow{1, 10});
  buffer.access(BankRow{1, 10}, 5, AccessType::kRead);
  TestCorruptor::skew_utilization(buffer);
  AuditReporter rep;
  buffer.audit(rep);
  EXPECT_TRUE(reports(rep, "utilization-popcount")) << rep.report();
}

TEST(CorruptionAudit, BankFsmStateOutOfRange) {
  const dram::TimingParams t = dram::default_timing();
  dram::Bank bank(t);
  TestCorruptor::scramble_bank_state(bank);
  AuditReporter rep;
  bank.audit(rep);
  EXPECT_TRUE(reports(rep, "fsm-state")) << rep.report();
}

TEST(CorruptionAudit, BankPrechargeWithoutActivate) {
  const dram::TimingParams t = dram::default_timing();
  dram::Bank bank(t);
  bank.activate(bank.earliest_activate(0), 3);
  TestCorruptor::unbalance_bank_counters(bank);
  AuditReporter rep;
  bank.audit(rep);
  EXPECT_TRUE(reports(rep, "act-pre-balance")) << rep.report();
}

TEST(CorruptionAudit, EventQueueHeapOrderBroken) {
  sim::EventQueue q;
  for (int i = 0; i < 8; ++i) q.schedule(10 + i, [] {});
  TestCorruptor::delay_heap_root(q);
  AuditReporter rep;
  q.audit(rep);
  EXPECT_TRUE(reports(rep, "heap-order")) << rep.report();
}

TEST(CorruptionAudit, RowProfiledInRutAndArchivedInCt) {
  prefetch::CampsScheme scheme;
  prefetch::AccessContext ctx;
  ctx.bank = 4;
  ctx.row = 99;
  ctx.outcome = dram::RowBufferOutcome::kEmpty;
  scheme.on_demand_access(ctx);  // installs (4, 99) in the RUT
  TestCorruptor::cross_rut_ct(scheme, 4, 99);
  AuditReporter rep;
  scheme.audit(rep);
  EXPECT_TRUE(reports(rep, "rut-ct-exclusive")) << rep.report();
}

// --- end-to-end: a real run under --audit-every stays clean -------------

TEST(SystemAudit, PeriodicAuditsRunCleanOverAWorkload) {
  system::SystemConfig cfg =
      system::table1_config(prefetch::SchemeKind::kCampsMod);
  cfg.core.warmup_instructions = 2'000;
  cfg.core.measure_instructions = 6'000;
  cfg.audit_every = 500;  // run() aborts on any violation
  auto sys = system::make_workload_system(cfg, "MX1");
  const auto results = sys->run();
  EXPECT_FALSE(results.partial);

  AuditReporter rep;
  sys->audit(rep);
  EXPECT_TRUE(rep.clean()) << rep.report();
  // The whole tree reported in: event queue, caches, and all 32 vaults.
  EXPECT_GT(rep.checks_run(), 1000u);
}

}  // namespace
}  // namespace camps::check
