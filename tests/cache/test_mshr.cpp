#include "cache/mshr.hpp"

#include <gtest/gtest.h>
#include <vector>

namespace camps::cache {
namespace {

TEST(Mshr, FirstAllocationMustFetch) {
  MshrFile mshrs;
  EXPECT_EQ(mshrs.allocate(0x1000, [] {}), MshrFile::Allocate::kMustFetch);
  EXPECT_TRUE(mshrs.pending(0x1000));
  EXPECT_EQ(mshrs.entries_in_use(), 1u);
}

TEST(Mshr, SecondAllocationMerges) {
  MshrFile mshrs;
  mshrs.allocate(0x1000, [] {});
  EXPECT_EQ(mshrs.allocate(0x1000, [] {}), MshrFile::Allocate::kMerged);
  EXPECT_EQ(mshrs.entries_in_use(), 1u);
  EXPECT_EQ(mshrs.merges(), 1u);
}

TEST(Mshr, CompleteWakesAllWaitersInOrder) {
  MshrFile mshrs;
  std::vector<int> order;
  mshrs.allocate(0x1000, [&] { order.push_back(1); });
  mshrs.allocate(0x1000, [&] { order.push_back(2); });
  mshrs.allocate(0x1000, [&] { order.push_back(3); });
  for (auto& wake : mshrs.complete(0x1000)) wake();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_FALSE(mshrs.pending(0x1000));
}

TEST(Mshr, DistinctLinesIndependent) {
  MshrFile mshrs;
  EXPECT_EQ(mshrs.allocate(0x1000, [] {}), MshrFile::Allocate::kMustFetch);
  EXPECT_EQ(mshrs.allocate(0x2000, [] {}), MshrFile::Allocate::kMustFetch);
  EXPECT_EQ(mshrs.entries_in_use(), 2u);
  mshrs.complete(0x1000);
  EXPECT_FALSE(mshrs.pending(0x1000));
  EXPECT_TRUE(mshrs.pending(0x2000));
}

TEST(Mshr, ReallocateAfterComplete) {
  MshrFile mshrs;
  mshrs.allocate(0x1000, [] {});
  mshrs.complete(0x1000);
  EXPECT_EQ(mshrs.allocate(0x1000, [] {}), MshrFile::Allocate::kMustFetch);
}

TEST(Mshr, CapacityLimit) {
  MshrFile mshrs(2);
  EXPECT_EQ(mshrs.allocate(0x1000, [] {}), MshrFile::Allocate::kMustFetch);
  EXPECT_EQ(mshrs.allocate(0x2000, [] {}), MshrFile::Allocate::kMustFetch);
  EXPECT_EQ(mshrs.allocate(0x3000, [] {}), MshrFile::Allocate::kFull);
  EXPECT_EQ(mshrs.full_rejections(), 1u);
  // Merging into an existing entry still works when full.
  EXPECT_EQ(mshrs.allocate(0x1000, [] {}), MshrFile::Allocate::kMerged);
}

TEST(Mshr, UnlimitedByDefault) {
  MshrFile mshrs;
  for (Addr a = 0; a < 1000 * 64; a += 64) {
    EXPECT_EQ(mshrs.allocate(a, [] {}), MshrFile::Allocate::kMustFetch);
  }
  EXPECT_EQ(mshrs.entries_in_use(), 1000u);
}

TEST(Mshr, CountsAllocations) {
  MshrFile mshrs;
  mshrs.allocate(0x1000, [] {});
  mshrs.allocate(0x2000, [] {});
  mshrs.allocate(0x1000, [] {});
  EXPECT_EQ(mshrs.allocations(), 2u);
  EXPECT_EQ(mshrs.merges(), 1u);
}

}  // namespace
}  // namespace camps::cache
