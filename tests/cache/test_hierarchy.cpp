// Three-level hierarchy: latency composition, fills, writebacks, MSHRs.

#include <functional>
#include <gtest/gtest.h>
#include <map>
#include <vector>

#include "cache/hierarchy.hpp"

namespace camps::cache {
namespace {

/// Scripted memory: records traffic, completes reads after a fixed delay.
class FakeMemory final : public MemoryPort {
 public:
  FakeMemory(sim::Simulator& sim, Tick latency) : sim_(sim), latency_(latency) {}

  void mem_read(Addr line, CoreId core, std::function<void()> done) override {
    reads.push_back({line, core});
    sim_.schedule(latency_, std::move(done));
  }
  void mem_write(Addr line, CoreId core) override {
    writes.push_back({line, core});
  }

  std::vector<std::pair<Addr, CoreId>> reads;
  std::vector<std::pair<Addr, CoreId>> writes;

 private:
  sim::Simulator& sim_;
  Tick latency_;
};

struct Harness {
  sim::Simulator sim;
  FakeMemory memory{sim, 600 * sim::kCpuTicksPerCycle};
  HierarchyConfig cfg;
  CacheHierarchy hier;

  explicit Harness(u32 cores = 2)
      : cfg(small_config()), hier(sim, cfg, cores, &memory) {}

  static HierarchyConfig small_config() {
    HierarchyConfig cfg;
    cfg.l1 = CacheConfig{1024, 2, 64, 2};
    cfg.l2 = CacheConfig{4096, 4, 64, 6};
    cfg.l3 = CacheConfig{16384, 4, 64, 20};
    return cfg;
  }

  /// Issues a read and returns its completion latency in CPU cycles.
  u64 timed_read(CoreId core, Addr addr) {
    const Tick start = sim.now();
    Tick end = 0;
    hier.read(core, addr, [&] { end = sim.now(); });
    sim.run();
    return (end - start) / sim::kCpuTicksPerCycle;
  }
};

TEST(Hierarchy, ColdReadGoesToMemory) {
  Harness h;
  const u64 cycles = h.timed_read(0, 0x10000);
  ASSERT_EQ(h.memory.reads.size(), 1u);
  EXPECT_EQ(h.memory.reads[0].first, 0x10000u);
  // Lookup path (2+6+20) + memory (600).
  EXPECT_EQ(cycles, 2 + 6 + 20 + 600u);
}

TEST(Hierarchy, L1HitAfterFill) {
  Harness h;
  h.timed_read(0, 0x10000);
  EXPECT_EQ(h.timed_read(0, 0x10000), 2u);
  EXPECT_EQ(h.memory.reads.size(), 1u) << "no second memory access";
}

TEST(Hierarchy, L2HitLatency) {
  Harness h;
  h.timed_read(0, 0x10000);
  // Evict from tiny L1 (8 sets x 2 ways): two same-set fills.
  const u64 l1_set_stride = h.cfg.l1.sets() * 64;
  h.timed_read(0, 0x10000 + l1_set_stride);
  h.timed_read(0, 0x10000 + 2 * l1_set_stride);
  // 0x10000 now misses L1; the L2 is big enough to keep it.
  EXPECT_EQ(h.timed_read(0, 0x10000), 2 + 6u);
}

TEST(Hierarchy, L3SharedAcrossCores) {
  Harness h;
  h.timed_read(0, 0x10000);  // core 0 brings the line in
  // Core 1 misses its private L1/L2 but hits the shared L3.
  EXPECT_EQ(h.timed_read(1, 0x10000), 2 + 6 + 20u);
  EXPECT_EQ(h.memory.reads.size(), 1u);
}

TEST(Hierarchy, PrivateL1sIndependent) {
  Harness h;
  h.timed_read(0, 0x10000);
  EXPECT_TRUE(h.hier.l1(0).probe(0x10000));
  EXPECT_FALSE(h.hier.l1(1).probe(0x10000))
      << "core 1's private L1 must not be filled by core 0's read";
}

TEST(Hierarchy, MshrMergesSameLineMisses) {
  Harness h;
  int done = 0;
  h.hier.read(0, 0x20000, [&] { ++done; });
  h.hier.read(1, 0x20000, [&] { ++done; });
  h.hier.read(0, 0x20040, [&] { ++done; });  // different line
  h.sim.run();
  EXPECT_EQ(done, 3);
  EXPECT_EQ(h.memory.reads.size(), 2u) << "same-line misses merged";
  EXPECT_EQ(h.hier.mshrs().merges(), 1u);
}

TEST(Hierarchy, WriteMissFetchesLine) {
  Harness h;
  h.hier.write(0, 0x30000);
  h.sim.run();
  ASSERT_EQ(h.memory.reads.size(), 1u) << "write-allocate";
  EXPECT_TRUE(h.hier.l1(0).probe(0x30000));
}

TEST(Hierarchy, DirtyLineWrittenBackToMemoryEventually) {
  Harness h;
  h.hier.write(0, 0x40000);
  h.sim.run();
  // Push the dirty line out of L1, L2, and L3 by filling each level's set.
  // Simplest reliable flood: read a working set larger than the whole L3.
  for (Addr a = 0; a < 64 * 1024; a += 64) {
    h.hier.read(0, 0x100000 + a, nullptr);
    h.sim.run();
  }
  bool found = false;
  for (const auto& [addr, core] : h.memory.writes) {
    found |= addr == 0x40000;
  }
  EXPECT_TRUE(found) << "dirty data must not be lost";
}

TEST(Hierarchy, CleanEvictionsProduceNoMemoryWrites) {
  Harness h;
  for (Addr a = 0; a < 64 * 1024; a += 64) {
    h.hier.read(0, 0x100000 + a, nullptr);
    h.sim.run();
  }
  EXPECT_TRUE(h.memory.writes.empty());
}

TEST(Hierarchy, AmatReflectsMix) {
  Harness h;
  h.timed_read(0, 0x50000);               // miss: 628
  EXPECT_EQ(h.timed_read(0, 0x50000), 2u); // hit: 2
  EXPECT_DOUBLE_EQ(h.hier.amat_cycles(), (628.0 + 2.0) / 2.0);
  EXPECT_EQ(h.hier.loads_completed(), 2u);
}

TEST(Hierarchy, MemoryTrafficCounters) {
  Harness h;
  h.timed_read(0, 0x60000);
  EXPECT_EQ(h.hier.memory_reads(), 1u);
  EXPECT_EQ(h.hier.l3_misses(), 1u);
}

TEST(Hierarchy, ResetStatsKeepsWarmContents) {
  Harness h;
  h.timed_read(0, 0x70000);
  h.hier.reset_stats();
  EXPECT_EQ(h.hier.memory_reads(), 0u);
  EXPECT_EQ(h.hier.loads_completed(), 0u);
  EXPECT_EQ(h.timed_read(0, 0x70000), 2u) << "contents stay warm";
}

TEST(Hierarchy, FiniteMshrsDeferButComplete) {
  sim::Simulator sim;
  FakeMemory memory{sim, 500 * sim::kCpuTicksPerCycle};
  HierarchyConfig cfg = Harness::small_config();
  cfg.mshr_entries = 2;
  CacheHierarchy hier(sim, cfg, 1, &memory);
  int done = 0;
  // Eight distinct-line misses with only two MSHRs: at most two fetches
  // may ever be outstanding, yet all loads must complete.
  for (int i = 0; i < 8; ++i) {
    hier.read(0, 0x100000 + 64 * static_cast<Addr>(i), [&] { ++done; });
    EXPECT_LE(hier.mshrs().entries_in_use(), 2u);
  }
  EXPECT_GT(hier.mshrs().full_rejections(), 0u);
  sim.run();
  EXPECT_EQ(done, 8);
  EXPECT_EQ(memory.reads.size(), 8u);
}

TEST(Hierarchy, FiniteMshrsSerializeMemoryTraffic) {
  sim::Simulator sim;
  FakeMemory memory{sim, 500 * sim::kCpuTicksPerCycle};
  HierarchyConfig cfg = Harness::small_config();
  cfg.mshr_entries = 1;
  CacheHierarchy hier(sim, cfg, 1, &memory);
  Tick first_done = 0, second_done = 0;
  hier.read(0, 0x200000, [&] { first_done = sim.now(); });
  hier.read(0, 0x300000, [&] { second_done = sim.now(); });
  sim.run();
  // With one MSHR the second fetch cannot overlap the first.
  EXPECT_GE(second_done - first_done, 500 * sim::kCpuTicksPerCycle * 9 / 10);
}

TEST(Hierarchy, WriteToPresentLineIsSilent) {
  Harness h;
  h.timed_read(0, 0x80000);
  h.hier.write(0, 0x80000);
  h.sim.run();
  EXPECT_EQ(h.memory.reads.size(), 1u);
}

}  // namespace
}  // namespace camps::cache
