#include "cache/cache.hpp"

#include <gtest/gtest.h>

namespace camps::cache {
namespace {

CacheConfig tiny() {
  // 4 sets x 2 ways x 64 B lines = 512 B.
  return CacheConfig{.size_bytes = 512, .ways = 2, .line_bytes = 64,
                     .hit_latency = 2};
}

TEST(CacheConfig, TableIConfigsValid) {
  EXPECT_TRUE((CacheConfig{32 * 1024, 2, 64, 2}).valid());
  EXPECT_TRUE((CacheConfig{256 * 1024, 4, 64, 6}).valid());
  EXPECT_TRUE((CacheConfig{16 * 1024 * 1024, 16, 64, 20}).valid());
}

TEST(CacheConfig, SetsComputed) {
  EXPECT_EQ((CacheConfig{16 * 1024 * 1024, 16, 64, 20}).sets(), 16384u);
}

TEST(CacheConfig, InvalidConfigs) {
  EXPECT_FALSE((CacheConfig{100, 2, 64, 1}).valid());   // not divisible
  EXPECT_FALSE((CacheConfig{512, 2, 60, 1}).valid());   // line not pow2
}

TEST(Cache, ColdMissThenHit) {
  Cache c(tiny());
  EXPECT_FALSE(c.access(0x1000, AccessType::kRead));
  c.fill(0x1000, false);
  EXPECT_TRUE(c.access(0x1000, AccessType::kRead));
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, ProbeHasNoSideEffects) {
  Cache c(tiny());
  c.fill(0x1000, false);
  EXPECT_TRUE(c.probe(0x1000));
  EXPECT_FALSE(c.probe(0x2000));
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 0u);
}

TEST(Cache, LineGranularity) {
  Cache c(tiny());
  c.fill(0x1000, false);
  EXPECT_TRUE(c.access(0x103F, AccessType::kRead)) << "same 64 B line";
  EXPECT_FALSE(c.access(0x1040, AccessType::kRead)) << "next line";
}

TEST(Cache, LruEvictionWithinSet) {
  Cache c(tiny());  // 4 sets: addresses 256 B apart share a set
  const Addr a = 0x0000, b = 0x0100 * 4, d = 0x0200 * 4;  // set 0 tags
  c.fill(a, false);
  c.fill(b, false);
  c.access(a, AccessType::kRead);       // a is MRU
  const auto victim = c.fill(d, false); // evicts b
  ASSERT_TRUE(victim);
  EXPECT_EQ(victim->line_addr, b);
  EXPECT_TRUE(c.probe(a));
  EXPECT_FALSE(c.probe(b));
}

TEST(Cache, VictimAddressReconstructedCorrectly) {
  Cache c(tiny());
  const Addr addr = 0xAB40;  // arbitrary
  c.fill(addr, false);
  // Fill same set with two more lines to force addr out.
  const u64 set_stride = 4 * 64;
  c.fill(addr + set_stride, false);
  const auto victim = c.fill(addr + 2 * set_stride, false);
  ASSERT_TRUE(victim);
  EXPECT_EQ(victim->line_addr, addr - addr % 64);
}

TEST(Cache, WriteSetsDirtyOnHit) {
  Cache c(tiny());
  c.fill(0x1000, false);
  c.access(0x1000, AccessType::kWrite);
  const auto dirty = c.invalidate(0x1000);
  ASSERT_TRUE(dirty.has_value());
  EXPECT_TRUE(*dirty);
}

TEST(Cache, DirtyVictimReported) {
  Cache c(tiny());
  c.fill(0x0000, true);
  c.fill(0x0400, false);
  const auto victim = c.fill(0x0800, false);
  ASSERT_TRUE(victim);
  EXPECT_TRUE(victim->dirty);
  EXPECT_EQ(c.dirty_evictions(), 1u);
}

TEST(Cache, FillPresentLineOrsDirty) {
  Cache c(tiny());
  c.fill(0x1000, false);
  const auto victim = c.fill(0x1000, true);
  EXPECT_FALSE(victim.has_value());
  EXPECT_TRUE(*c.invalidate(0x1000));
}

TEST(Cache, InvalidateAbsentLine) {
  Cache c(tiny());
  EXPECT_FALSE(c.invalidate(0x1000).has_value());
}

TEST(Cache, FillIntoInvalidWayNoVictim) {
  Cache c(tiny());
  EXPECT_FALSE(c.fill(0x0000, false).has_value());
  EXPECT_FALSE(c.fill(0x0400, false).has_value());  // second way, same set
  EXPECT_TRUE(c.fill(0x0800, false).has_value());   // now full
}

TEST(Cache, ResetStatsKeepsContents) {
  Cache c(tiny());
  c.fill(0x1000, false);
  c.access(0x1000, AccessType::kRead);
  c.reset_stats();
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_TRUE(c.probe(0x1000));
}

TEST(Cache, WorkingSetLargerThanCacheThrashes) {
  Cache c(tiny());
  // Touch 1024 distinct lines twice: second pass still misses (LRU).
  for (int pass = 0; pass < 2; ++pass) {
    for (Addr a = 0; a < 1024 * 64; a += 64) {
      if (!c.access(a, AccessType::kRead)) c.fill(a, false);
    }
  }
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 2 * 1024u);
}

TEST(Cache, WorkingSetSmallerThanCacheHitsOnSecondPass) {
  Cache c(tiny());
  for (int pass = 0; pass < 2; ++pass) {
    for (Addr a = 0; a < 8 * 64; a += 64) {
      if (!c.access(a, AccessType::kRead)) c.fill(a, false);
    }
  }
  EXPECT_EQ(c.hits(), 8u);
  EXPECT_EQ(c.misses(), 8u);
}

// Associativity sweep: a set never holds more lines than its way count.
class WaySweep : public ::testing::TestWithParam<u32> {};

TEST_P(WaySweep, SetCapacityRespected) {
  const u32 ways = GetParam();
  Cache c(CacheConfig{.size_bytes = u64{ways} * 4 * 64, .ways = ways,
                      .line_bytes = 64, .hit_latency = 1});
  // Fill one set with ways+3 distinct tags.
  const u64 set_stride = c.config().sets() * 64;
  for (u32 i = 0; i < ways + 3; ++i) {
    c.fill(static_cast<Addr>(i) * set_stride, false);
  }
  u32 resident = 0;
  for (u32 i = 0; i < ways + 3; ++i) {
    if (c.probe(static_cast<Addr>(i) * set_stride)) ++resident;
  }
  EXPECT_EQ(resident, ways);
  EXPECT_EQ(c.evictions(), 3u);
}

INSTANTIATE_TEST_SUITE_P(Ways, WaySweep, ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace camps::cache
