#include "prefetch/conflict_table.hpp"

#include <gtest/gtest.h>

namespace camps::prefetch {
namespace {

BankRow row(u32 bank, u64 r) { return BankRow{bank, r}; }

TEST(ConflictTable, StartsEmpty) {
  ConflictTable ct(32);
  EXPECT_EQ(ct.size(), 0u);
  EXPECT_EQ(ct.capacity(), 32u);
  EXPECT_FALSE(ct.contains(row(0, 1)));
}

TEST(ConflictTable, InsertAndContains) {
  ConflictTable ct(4);
  EXPECT_FALSE(ct.insert(row(0, 1)).has_value());
  EXPECT_TRUE(ct.contains(row(0, 1)));
  EXPECT_EQ(ct.size(), 1u);
}

TEST(ConflictTable, BankDistinguishesEntries) {
  ConflictTable ct(4);
  ct.insert(row(0, 1));
  EXPECT_FALSE(ct.contains(row(1, 1)));
}

TEST(ConflictTable, LruEvictionWhenFull) {
  ConflictTable ct(3);
  ct.insert(row(0, 1));
  ct.insert(row(0, 2));
  ct.insert(row(0, 3));
  const auto evicted = ct.insert(row(0, 4));
  ASSERT_TRUE(evicted);
  EXPECT_EQ(*evicted, row(0, 1));
  EXPECT_FALSE(ct.contains(row(0, 1)));
  EXPECT_EQ(ct.size(), 3u);
}

TEST(ConflictTable, ReinsertRefreshesLruPosition) {
  ConflictTable ct(3);
  ct.insert(row(0, 1));
  ct.insert(row(0, 2));
  ct.insert(row(0, 3));
  ct.insert(row(0, 1));  // refresh row 1 to MRU
  const auto evicted = ct.insert(row(0, 4));
  ASSERT_TRUE(evicted);
  EXPECT_EQ(*evicted, row(0, 2)) << "row 2 is now the LRU";
  EXPECT_TRUE(ct.contains(row(0, 1)));
}

TEST(ConflictTable, RemovePresentAndAbsent) {
  ConflictTable ct(4);
  ct.insert(row(0, 1));
  EXPECT_TRUE(ct.remove(row(0, 1)));
  EXPECT_FALSE(ct.contains(row(0, 1)));
  EXPECT_FALSE(ct.remove(row(0, 1)));
}

TEST(ConflictTable, SnapshotMruFirst) {
  ConflictTable ct(4);
  ct.insert(row(0, 1));
  ct.insert(row(0, 2));
  ct.insert(row(0, 3));
  const auto snap = ct.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0], row(0, 3));
  EXPECT_EQ(snap[2], row(0, 1));
}

TEST(ConflictTable, ContainsDoesNotRefreshLru) {
  ConflictTable ct(2);
  ct.insert(row(0, 1));
  ct.insert(row(0, 2));
  (void)ct.contains(row(0, 1));  // pure query
  const auto evicted = ct.insert(row(0, 3));
  ASSERT_TRUE(evicted);
  EXPECT_EQ(*evicted, row(0, 1)) << "contains() must not touch LRU order";
}

TEST(ConflictTable, PaperHardwareOverhead) {
  // Section 3.3: 32 entries x 20 bits per vault = 80 bytes.
  ConflictTable ct(32);
  EXPECT_EQ(ct.overhead_bits(), 640u);
  EXPECT_EQ(ct.overhead_bits() / 8, 80u);
}

TEST(ConflictTable, HeavyChurnInvariants) {
  ConflictTable ct(8);
  u64 x = 3;
  for (int i = 0; i < 2000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const BankRow r{static_cast<BankId>((x >> 5) % 4), (x >> 20) % 64};
    if ((x & 3) == 0) {
      ct.remove(r);
      EXPECT_FALSE(ct.contains(r));
    } else {
      ct.insert(r);
      EXPECT_TRUE(ct.contains(r));
    }
    ASSERT_LE(ct.size(), ct.capacity());
  }
}

}  // namespace
}  // namespace camps::prefetch
