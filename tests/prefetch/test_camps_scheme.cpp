// CAMPS decision flow (Figure 3 of the paper), checked transition by
// transition.
#include <gtest/gtest.h>

#include "prefetch/scheme_camps.hpp"

namespace camps::prefetch {
namespace {

using dram::RowBufferOutcome;

AccessContext ctx(RowBufferOutcome outcome, BankId bank, RowId row) {
  AccessContext c;
  c.bank = bank;
  c.row = row;
  c.line = 0;
  c.type = AccessType::kRead;
  c.outcome = outcome;
  c.queued_same_row = 0;
  c.dram_cycle = 0;
  return c;
}

CampsParams params(u32 threshold = 4) {
  CampsParams p;
  p.banks = 16;
  p.conflict_entries = 32;
  p.utilization_threshold = threshold;
  return p;
}

TEST(CampsScheme, RowHitsBelowThresholdDoNothing) {
  CampsScheme camps(params(4));
  // First access opened the row (empty), then two hits: counts 1,2,3.
  EXPECT_FALSE(camps.on_demand_access(ctx(RowBufferOutcome::kEmpty, 0, 5)).any());
  EXPECT_FALSE(camps.on_demand_access(ctx(RowBufferOutcome::kHit, 0, 5)).any());
  EXPECT_FALSE(camps.on_demand_access(ctx(RowBufferOutcome::kHit, 0, 5)).any());
  EXPECT_EQ(camps.rut().entry(0)->count, 3u);
}

TEST(CampsScheme, ThresholdTriggersFetchAndPrecharge) {
  CampsScheme camps(params(4));
  camps.on_demand_access(ctx(RowBufferOutcome::kEmpty, 0, 5));
  camps.on_demand_access(ctx(RowBufferOutcome::kHit, 0, 5));
  camps.on_demand_access(ctx(RowBufferOutcome::kHit, 0, 5));
  const auto d = camps.on_demand_access(ctx(RowBufferOutcome::kHit, 0, 5));
  EXPECT_TRUE(d.fetch_row);
  EXPECT_TRUE(d.precharge_after);
  EXPECT_FALSE(d.serve_via_buffer) << "the demand was served normally";
  EXPECT_FALSE(camps.rut().entry(0).has_value())
      << "RUT entry removed after the fetch";
  EXPECT_EQ(camps.threshold_prefetches(), 1u);
}

TEST(CampsScheme, ThresholdOneFiresImmediately) {
  CampsScheme camps(params(1));
  const auto d = camps.on_demand_access(ctx(RowBufferOutcome::kEmpty, 0, 5));
  EXPECT_TRUE(d.fetch_row);
}

TEST(CampsScheme, DisplacedRutEntryMovesToConflictTable) {
  CampsScheme camps(params());
  camps.on_demand_access(ctx(RowBufferOutcome::kEmpty, 0, 5));
  // A different row opens in bank 0: row 5's profile moves to the CT.
  camps.on_demand_access(ctx(RowBufferOutcome::kConflict, 0, 9));
  EXPECT_TRUE(camps.conflict_table().contains(BankRow{0, 5}));
  EXPECT_EQ(camps.rut().entry(0)->row, 9u);
}

TEST(CampsScheme, ConflictTableHitTriggersFetch) {
  CampsScheme camps(params());
  camps.on_demand_access(ctx(RowBufferOutcome::kEmpty, 0, 5));     // profile 5
  camps.on_demand_access(ctx(RowBufferOutcome::kConflict, 0, 9));  // 5 -> CT
  // Row 5 reactivates: it is a proven conflict-causer.
  const auto d = camps.on_demand_access(ctx(RowBufferOutcome::kConflict, 0, 5));
  EXPECT_TRUE(d.fetch_row);
  EXPECT_TRUE(d.precharge_after);
  EXPECT_FALSE(camps.conflict_table().contains(BankRow{0, 5}))
      << "CT entry removed after the fetch";
  EXPECT_EQ(camps.conflict_prefetches(), 1u);
}

TEST(CampsScheme, ConflictFetchLeavesRutAlone) {
  CampsScheme camps(params());
  camps.on_demand_access(ctx(RowBufferOutcome::kEmpty, 0, 5));
  camps.on_demand_access(ctx(RowBufferOutcome::kConflict, 0, 9));  // 5 -> CT
  camps.on_demand_access(ctx(RowBufferOutcome::kConflict, 0, 5));  // CT hit
  // Figure 3: on a CT hit the row is fetched and the bank precharged; the
  // RUT is not updated for it (entry for row 9 was displaced to the CT).
  EXPECT_FALSE(camps.rut().entry(0).has_value());
  EXPECT_TRUE(camps.conflict_table().contains(BankRow{0, 9}));
}

TEST(CampsScheme, MissWithNoCtEntryStartsProfiling) {
  CampsScheme camps(params());
  const auto d = camps.on_demand_access(ctx(RowBufferOutcome::kEmpty, 3, 42));
  EXPECT_FALSE(d.any());
  ASSERT_TRUE(camps.rut().entry(3).has_value());
  EXPECT_EQ(camps.rut().entry(3)->row, 42u);
  EXPECT_EQ(camps.rut().entry(3)->count, 1u);
}

TEST(CampsScheme, HitsAcrossBanksProfileIndependently) {
  CampsScheme camps(params(3));
  camps.on_demand_access(ctx(RowBufferOutcome::kEmpty, 0, 1));
  camps.on_demand_access(ctx(RowBufferOutcome::kEmpty, 1, 2));
  camps.on_demand_access(ctx(RowBufferOutcome::kHit, 0, 1));
  camps.on_demand_access(ctx(RowBufferOutcome::kHit, 1, 2));
  const auto d0 = camps.on_demand_access(ctx(RowBufferOutcome::kHit, 0, 1));
  EXPECT_TRUE(d0.fetch_row);
  // Bank 1 is still one access short.
  EXPECT_EQ(camps.rut().entry(1)->count, 2u);
}

TEST(CampsScheme, StaleRutEntryOnHitPathDisplacesToCt) {
  // A row can be closed by refresh and a different row opened without a
  // conflict classification; the stale profile must still migrate.
  CampsScheme camps(params());
  camps.on_demand_access(ctx(RowBufferOutcome::kEmpty, 0, 5));
  camps.on_demand_access(ctx(RowBufferOutcome::kHit, 0, 7));  // stale bank 0
  EXPECT_TRUE(camps.conflict_table().contains(BankRow{0, 5}));
  EXPECT_EQ(camps.rut().entry(0)->row, 7u);
}

TEST(CampsScheme, CtCapacityEvictsLru) {
  CampsParams p = params();
  p.conflict_entries = 2;
  CampsScheme camps(p);
  // Displace three profiles into the 2-entry CT.
  for (RowId r = 0; r < 4; ++r) {
    camps.on_demand_access(ctx(r == 0 ? RowBufferOutcome::kEmpty
                                      : RowBufferOutcome::kConflict,
                               0, 100 + r));
  }
  EXPECT_FALSE(camps.conflict_table().contains(BankRow{0, 100}))
      << "oldest conflict record evicted";
  EXPECT_TRUE(camps.conflict_table().contains(BankRow{0, 102}));
}

TEST(CampsScheme, NamesFollowVariant) {
  EXPECT_EQ(CampsScheme(params()).name(), "CAMPS");
  CampsParams p = params();
  p.modified_replacement = true;
  EXPECT_EQ(CampsScheme(p).name(), "CAMPS-MOD");
}

TEST(CampsScheme, ReplacementPolicyFollowsVariant) {
  EXPECT_EQ(CampsScheme(params()).make_replacement()->name(), "lru");
  CampsParams p = params();
  p.modified_replacement = true;
  EXPECT_EQ(CampsScheme(p).make_replacement()->name(), "util-recency");
}

TEST(CampsScheme, PaperHardwareOverhead) {
  // Section 3.3: (16 + 32) x 20 bits = 120 bytes per vault; x32 vaults =
  // 3.75 KB per cube.
  CampsScheme camps(params());
  EXPECT_EQ(camps.overhead_bits(), 960u);
  EXPECT_EQ(32 * camps.overhead_bits() / 8, 3840u);  // 3.75 KB
}

// Threshold sweep: the fetch fires exactly at the configured count.
class ThresholdSweep : public ::testing::TestWithParam<u32> {};

TEST_P(ThresholdSweep, FiresExactlyAtThreshold) {
  const u32 threshold = GetParam();
  CampsScheme camps(params(threshold));
  u32 count = 0;
  // First access opens the row; further accesses are hits.
  auto outcome = RowBufferOutcome::kEmpty;
  for (u32 i = 0; i < threshold - 1; ++i) {
    EXPECT_FALSE(camps.on_demand_access(ctx(outcome, 0, 5)).any())
        << "access " << i + 1 << " of threshold " << threshold;
    outcome = RowBufferOutcome::kHit;
    ++count;
  }
  EXPECT_TRUE(camps.on_demand_access(ctx(outcome, 0, 5)).fetch_row);
  (void)count;
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweep,
                         ::testing::Values(2, 3, 4, 8, 16));

}  // namespace
}  // namespace camps::prefetch
