#include "prefetch/rut.hpp"

#include <gtest/gtest.h>

namespace camps::prefetch {
namespace {

TEST(Rut, StartsEmpty) {
  RowUtilizationTable rut(16);
  EXPECT_EQ(rut.banks(), 16u);
  for (BankId b = 0; b < 16; ++b) {
    EXPECT_FALSE(rut.entry(b).has_value());
  }
}

TEST(Rut, TouchCreatesWithCountOne) {
  RowUtilizationTable rut(4);
  EXPECT_EQ(rut.touch(0, 7), 1u);
  const auto e = rut.entry(0);
  ASSERT_TRUE(e);
  EXPECT_EQ(e->row, 7u);
  EXPECT_EQ(e->count, 1u);
}

TEST(Rut, TouchIncrementsSameRow) {
  RowUtilizationTable rut(4);
  rut.touch(0, 7);
  EXPECT_EQ(rut.touch(0, 7), 2u);
  EXPECT_EQ(rut.touch(0, 7), 3u);
  EXPECT_EQ(rut.touch(0, 7), 4u);
}

TEST(Rut, TouchDifferentRowRestartsCount) {
  RowUtilizationTable rut(4);
  rut.touch(0, 7);
  rut.touch(0, 7);
  EXPECT_EQ(rut.touch(0, 9), 1u);
  EXPECT_EQ(rut.entry(0)->row, 9u);
}

TEST(Rut, BanksAreIndependent) {
  RowUtilizationTable rut(4);
  rut.touch(0, 7);
  rut.touch(1, 7);
  rut.touch(1, 7);
  EXPECT_EQ(rut.entry(0)->count, 1u);
  EXPECT_EQ(rut.entry(1)->count, 2u);
}

TEST(Rut, DisplaceReturnsOldEntryForDifferentRow) {
  RowUtilizationTable rut(4);
  rut.touch(2, 5);
  rut.touch(2, 5);
  rut.touch(2, 5);
  const auto displaced = rut.displace(2, 9);
  ASSERT_TRUE(displaced);
  EXPECT_EQ(displaced->row, 5u);
  EXPECT_EQ(displaced->count, 3u);
  EXPECT_FALSE(rut.entry(2).has_value());
}

TEST(Rut, DisplaceSameRowIsNoOp) {
  RowUtilizationTable rut(4);
  rut.touch(2, 5);
  EXPECT_FALSE(rut.displace(2, 5).has_value());
  EXPECT_TRUE(rut.entry(2).has_value());
}

TEST(Rut, DisplaceEmptyBankIsNoOp) {
  RowUtilizationTable rut(4);
  EXPECT_FALSE(rut.displace(3, 1).has_value());
}

TEST(Rut, RemoveClearsEntry) {
  RowUtilizationTable rut(4);
  rut.touch(1, 5);
  rut.remove(1);
  EXPECT_FALSE(rut.entry(1).has_value());
}

TEST(Rut, PaperHardwareOverhead) {
  // Section 3.3: 16 entries x 20 bits per vault = 40 bytes.
  RowUtilizationTable rut(16);
  EXPECT_EQ(rut.overhead_bits(), 320u);
  EXPECT_EQ(rut.overhead_bits() / 8, 40u);
}

}  // namespace
}  // namespace camps::prefetch
