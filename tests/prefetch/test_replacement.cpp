#include "prefetch/replacement.hpp"

#include <gtest/gtest.h>
#include <memory>
#include <vector>

namespace camps::prefetch {
namespace {

VictimCandidate cand(u32 slot, u32 util, u32 recency, bool full = false) {
  return VictimCandidate{
      .slot = slot, .utilization = util, .recency = recency, .fully_used = full};
}

TEST(LruReplacement, PicksMinimumRecency) {
  LruReplacement lru;
  EXPECT_EQ(lru.pick_victim({cand(0, 5, 10), cand(1, 0, 3), cand(2, 9, 7)}),
            1u);
}

TEST(LruReplacement, IgnoresUtilization) {
  LruReplacement lru;
  // Slot 0 heavily used but LRU — still the victim.
  EXPECT_EQ(lru.pick_victim({cand(0, 16, 0), cand(1, 0, 1)}), 0u);
}

TEST(LruReplacement, SingleCandidate) {
  LruReplacement lru;
  EXPECT_EQ(lru.pick_victim({cand(7, 3, 3)}), 7u);
}

TEST(LruReplacement, NameStable) {
  EXPECT_EQ(LruReplacement().name(), "lru");
}

TEST(UtilRecency, FullyUsedLeavesFirst) {
  UtilizationRecencyReplacement ur;
  // Slot 2 is fully transferred; despite high recency it goes first.
  EXPECT_EQ(ur.pick_victim({cand(0, 1, 0), cand(1, 2, 5),
                            cand(2, 16, 14, /*full=*/true)}),
            2u);
}

TEST(UtilRecency, FullyUsedTieBrokenByLowestRecency) {
  UtilizationRecencyReplacement ur;
  EXPECT_EQ(ur.pick_victim({cand(0, 16, 9, true), cand(1, 16, 2, true),
                            cand(2, 0, 0)}),
            1u);
}

TEST(UtilRecency, MinimumSumWinsWithoutFullRows) {
  UtilizationRecencyReplacement ur;
  // sums: 0 -> 5+10=15, 1 -> 2+4=6, 2 -> 8+1=9
  EXPECT_EQ(ur.pick_victim({cand(0, 5, 10), cand(1, 2, 4), cand(2, 8, 1)}),
            1u);
}

TEST(UtilRecency, SumTieBrokenByLowerUtilization) {
  UtilizationRecencyReplacement ur;
  // sums equal (8): slot 0 util 6, slot 1 util 2 -> evict slot 1 (paper:
  // "the row with the lowest utilization count value will be evicted").
  EXPECT_EQ(ur.pick_victim({cand(0, 6, 2), cand(1, 2, 6)}), 1u);
}

TEST(UtilRecency, FullTieBrokenByLowerRecencyThenSlot) {
  UtilizationRecencyReplacement ur;
  // Identical util and recency: lowest slot wins (determinism).
  EXPECT_EQ(ur.pick_victim({cand(3, 2, 6), cand(1, 2, 6)}), 1u);
}

TEST(UtilRecency, FreshRowProtectedByRecency) {
  UtilizationRecencyReplacement ur;
  // A freshly inserted row (util 0, MRU recency 15) must survive against
  // an old moderately used row.
  EXPECT_EQ(ur.pick_victim({cand(0, 0, 15), cand(1, 4, 0)}), 1u);
}

TEST(UtilRecency, HighUtilizationProtectsOldRows) {
  UtilizationRecencyReplacement ur;
  // LRU would evict slot 0; utilization keeps it alive over the younger
  // barely-used row — the paper's motivating case.
  EXPECT_EQ(ur.pick_victim({cand(0, 12, 0), cand(1, 1, 6)}), 1u);
}

TEST(UtilRecency, NameStable) {
  EXPECT_EQ(UtilizationRecencyReplacement().name(), "util-recency");
}

TEST(UtilRecency, ExactVictimOrderPinned) {
  // Regression pin of the full Section 3.2 ordering: fully-transferred
  // rows leave first (lowest recency among them), then ascending
  // utilization+recency score, score ties broken by lower utilization,
  // then lower recency, then lower slot. Repeatedly evicting the chosen
  // victim from a fixed population must reproduce this exact order; any
  // change to the tie-break silently reshuffles buffer contents and skews
  // every downstream figure, so the order is pinned verbatim.
  UtilizationRecencyReplacement ur;
  std::vector<VictimCandidate> pool = {
      cand(0, 5, 10),              // score 15
      cand(1, 16, 3, /*full=*/true),
      cand(2, 2, 4),               // score 6, util 2
      cand(3, 16, 7, /*full=*/true),
      cand(4, 8, 1),               // score 9
      cand(5, 2, 4),               // score 6, util 2, higher slot than 2
      cand(6, 0, 6),               // score 6, util 0 -> first of the sixes
      cand(7, 6, 0),               // score 6, util 6
  };
  const std::vector<u32> expected_order = {1, 3, 6, 2, 5, 7, 4, 0};
  std::vector<u32> order;
  while (!pool.empty()) {
    const u32 victim = ur.pick_victim(pool);
    order.push_back(victim);
    std::erase_if(pool,
                  [victim](const VictimCandidate& c) { return c.slot == victim; });
  }
  EXPECT_EQ(order, expected_order);
}

TEST(ReplacementFactories, ProduceCorrectTypes) {
  EXPECT_EQ(make_lru()->name(), "lru");
  EXPECT_EQ(make_utilization_recency()->name(), "util-recency");
}

// Property sweep: both policies always return a slot that exists in the
// candidate list.
class PolicySweep : public ::testing::TestWithParam<int> {};

TEST_P(PolicySweep, VictimIsAlwaysACandidate) {
  std::unique_ptr<ReplacementPolicy> policy =
      GetParam() == 0 ? make_lru() : make_utilization_recency();
  u64 x = 99;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<VictimCandidate> cands;
    const int n = 1 + trial % 16;
    for (int i = 0; i < n; ++i) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
      cands.push_back(cand(static_cast<u32>(i * 3 + 1),
                           static_cast<u32>((x >> 10) % 17),
                           static_cast<u32>((x >> 20) % 16),
                           ((x >> 40) & 7) == 0));
    }
    const u32 victim = policy->pick_victim(cands);
    bool found = false;
    for (const auto& c : cands) found |= c.slot == victim;
    EXPECT_TRUE(found);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, PolicySweep, ::testing::Values(0, 1));

}  // namespace
}  // namespace camps::prefetch
