#include "prefetch/prefetch_buffer.hpp"

#include <gtest/gtest.h>
#include <optional>

namespace camps::prefetch {
namespace {

PrefetchBufferConfig small_cfg(u32 entries = 4) {
  return PrefetchBufferConfig{
      .entries = entries, .lines_per_row = 16, .hit_latency = 22};
}

BankRow row(u32 bank, u64 r) { return BankRow{bank, r}; }

TEST(PrefetchBuffer, StartsEmpty) {
  PrefetchBuffer buf(small_cfg(), make_lru());
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.capacity(), 4u);
  EXPECT_FALSE(buf.contains(row(0, 1)));
}

TEST(PrefetchBuffer, InsertMakesResident) {
  PrefetchBuffer buf(small_cfg(), make_lru());
  const auto result = buf.insert(row(0, 1));
  EXPECT_TRUE(result.inserted);
  EXPECT_FALSE(result.victim.has_value());
  EXPECT_TRUE(buf.contains(row(0, 1)));
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf.inserts(), 1u);
}

TEST(PrefetchBuffer, ReinsertResidentIsNoOp) {
  PrefetchBuffer buf(small_cfg(), make_lru());
  buf.insert(row(0, 1));
  const auto result = buf.insert(row(0, 1));
  EXPECT_FALSE(result.inserted);
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf.inserts(), 1u);
}

TEST(PrefetchBuffer, DistinguishesBankAndRow) {
  PrefetchBuffer buf(small_cfg(), make_lru());
  buf.insert(row(0, 1));
  EXPECT_FALSE(buf.contains(row(1, 1)));
  EXPECT_FALSE(buf.contains(row(0, 2)));
}

TEST(PrefetchBuffer, AccessHitMarksLineAndCountsUtilization) {
  PrefetchBuffer buf(small_cfg(), make_lru());
  buf.insert(row(0, 1));
  EXPECT_TRUE(buf.access(row(0, 1), 3, AccessType::kRead));
  EXPECT_TRUE(buf.access(row(0, 1), 3, AccessType::kRead));  // same line
  EXPECT_TRUE(buf.access(row(0, 1), 5, AccessType::kRead));
  EXPECT_EQ(buf.utilization(row(0, 1)), std::make_optional<u32>(2));
  EXPECT_EQ(buf.hits(), 3u);
}

TEST(PrefetchBuffer, AccessMissCounts) {
  PrefetchBuffer buf(small_cfg(), make_lru());
  EXPECT_FALSE(buf.access(row(0, 9), 0, AccessType::kRead));
  buf.count_miss();
  EXPECT_EQ(buf.misses(), 2u);
}

TEST(PrefetchBuffer, RecencyStackPaperEncoding) {
  PrefetchBuffer buf(small_cfg(4), make_lru());
  buf.insert(row(0, 1));
  buf.insert(row(0, 2));
  buf.insert(row(0, 3));
  // MRU gets entries-1 = 3.
  EXPECT_EQ(buf.recency(row(0, 3)), std::make_optional<u32>(3));
  EXPECT_EQ(buf.recency(row(0, 2)), std::make_optional<u32>(2));
  EXPECT_EQ(buf.recency(row(0, 1)), std::make_optional<u32>(1));
  // Accessing row 1 moves it to MRU; others shift down.
  buf.access(row(0, 1), 0, AccessType::kRead);
  EXPECT_EQ(buf.recency(row(0, 1)), std::make_optional<u32>(3));
  EXPECT_EQ(buf.recency(row(0, 3)), std::make_optional<u32>(2));
  EXPECT_EQ(buf.recency(row(0, 2)), std::make_optional<u32>(1));
}

TEST(PrefetchBuffer, LruEvictionOrder) {
  PrefetchBuffer buf(small_cfg(2), make_lru());
  buf.insert(row(0, 1));
  buf.insert(row(0, 2));
  const auto result = buf.insert(row(0, 3));
  ASSERT_TRUE(result.victim.has_value());
  EXPECT_EQ(result.victim->id, row(0, 1));
  EXPECT_FALSE(buf.contains(row(0, 1)));
  EXPECT_TRUE(buf.contains(row(0, 2)));
  EXPECT_TRUE(buf.contains(row(0, 3)));
}

TEST(PrefetchBuffer, VictimReportsUsefulness) {
  PrefetchBuffer buf(small_cfg(1), make_lru());
  buf.insert(row(0, 1));
  buf.access(row(0, 1), 0, AccessType::kRead);
  auto v1 = buf.insert(row(0, 2));
  ASSERT_TRUE(v1.victim);
  EXPECT_TRUE(v1.victim->referenced);
  // Row 2 never touched -> unreferenced victim.
  auto v2 = buf.insert(row(0, 3));
  ASSERT_TRUE(v2.victim);
  EXPECT_FALSE(v2.victim->referenced);
  EXPECT_EQ(buf.evicted_unreferenced(), 1u);
}

TEST(PrefetchBuffer, FillTouchDoesNotCountAsUseful) {
  PrefetchBuffer buf(small_cfg(1), make_lru());
  buf.insert(row(0, 1));
  buf.access(row(0, 1), 0, AccessType::kRead, /*fill_touch=*/true);
  const auto v = buf.insert(row(0, 2));
  ASSERT_TRUE(v.victim);
  EXPECT_FALSE(v.victim->referenced) << "fill touches are not prefetch wins";
  EXPECT_EQ(buf.hits(), 0u);
}

TEST(PrefetchBuffer, DirtyTracking) {
  PrefetchBuffer buf(small_cfg(1), make_lru());
  buf.insert(row(0, 1));
  buf.access(row(0, 1), 2, AccessType::kWrite);
  const auto v = buf.insert(row(0, 2));
  ASSERT_TRUE(v.victim);
  EXPECT_TRUE(v.victim->dirty);
  EXPECT_EQ(buf.dirty_writebacks(), 1u);
}

TEST(PrefetchBuffer, CleanVictimNoWriteback) {
  PrefetchBuffer buf(small_cfg(1), make_lru());
  buf.insert(row(0, 1));
  buf.access(row(0, 1), 2, AccessType::kRead);
  const auto v = buf.insert(row(0, 2));
  ASSERT_TRUE(v.victim);
  EXPECT_FALSE(v.victim->dirty);
  EXPECT_EQ(buf.dirty_writebacks(), 0u);
}

TEST(PrefetchBuffer, SeedBitmapCountsForFullTransferOnly) {
  PrefetchBuffer buf(small_cfg(2), make_utilization_recency());
  // Row 1: 12 lines seeded + 4 accessed = fully transferred.
  buf.insert(row(0, 1), /*seed_bitmap=*/0x0FFF);
  for (LineId line = 12; line < 16; ++line) {
    buf.access(row(0, 1), line, AccessType::kRead);
  }
  // Utilization (policy view) counts only the in-buffer accesses.
  EXPECT_EQ(buf.utilization(row(0, 1)), std::make_optional<u32>(4));
  buf.insert(row(0, 2));
  buf.access(row(0, 2), 0, AccessType::kRead);
  // Under utilization+recency the fully transferred row is the victim even
  // though row 2 has lower utilization.
  const auto v = buf.insert(row(0, 3));
  ASSERT_TRUE(v.victim);
  EXPECT_EQ(v.victim->id, row(0, 1));
}

TEST(PrefetchBuffer, UtilRecencyEvictsMinimumSum) {
  PrefetchBuffer buf(small_cfg(3), make_utilization_recency());
  buf.insert(row(0, 1));
  buf.insert(row(0, 2));
  buf.insert(row(0, 3));
  // Touch rows 1 and 3 so row 2 has util 0 and mid recency.
  buf.access(row(0, 1), 0, AccessType::kRead);
  buf.access(row(0, 1), 1, AccessType::kRead);
  buf.access(row(0, 3), 0, AccessType::kRead);
  // recencies now: 3 (MRU, entries-1=2? capacity 3 -> MRU=2): row3=2,
  // row1=1, row2=0. sums: row1=2+1=3, row2=0+0=0, row3=1+2=3.
  const auto v = buf.insert(row(0, 4));
  ASSERT_TRUE(v.victim);
  EXPECT_EQ(v.victim->id, row(0, 2));
}

TEST(PrefetchBuffer, EvictExplicit) {
  PrefetchBuffer buf(small_cfg(), make_lru());
  buf.insert(row(0, 1));
  EXPECT_TRUE(buf.evict(row(0, 1)));
  EXPECT_FALSE(buf.contains(row(0, 1)));
  EXPECT_FALSE(buf.evict(row(0, 1)));
  EXPECT_EQ(buf.evictions(), 1u);
}

TEST(PrefetchBuffer, RowAccuracyMixesResidentAndEvicted) {
  PrefetchBuffer buf(small_cfg(2), make_lru());
  buf.insert(row(0, 1));
  buf.access(row(0, 1), 0, AccessType::kRead);  // useful resident
  buf.insert(row(0, 2));                        // unused resident
  EXPECT_DOUBLE_EQ(buf.row_accuracy(), 0.5);
  buf.insert(row(0, 3));  // evicts row 1 (useful)
  // Now: evicted useful (1) + resident row2 unused + row3 unused = 1/3.
  EXPECT_NEAR(buf.row_accuracy(), 1.0 / 3.0, 1e-9);
}

TEST(PrefetchBuffer, EvictionHistograms) {
  PrefetchBuffer buf(small_cfg(1), make_lru());
  buf.insert(row(0, 1));
  buf.access(row(0, 1), 0, AccessType::kRead);
  buf.access(row(0, 1), 1, AccessType::kRead);
  buf.insert(row(0, 2));  // evicts util-2 used row
  buf.insert(row(0, 3));  // evicts util-0 unused row
  EXPECT_EQ(buf.evictions_by_utilization()[2], 1u);
  EXPECT_EQ(buf.evictions_by_utilization()[0], 1u);
  EXPECT_EQ(buf.unused_evictions_by_utilization()[0], 1u);
  EXPECT_EQ(buf.unused_evictions_by_utilization()[2], 0u);
}

TEST(PrefetchBuffer, ResetStatsKeepsContents) {
  PrefetchBuffer buf(small_cfg(), make_lru());
  buf.insert(row(0, 1));
  buf.access(row(0, 1), 0, AccessType::kRead);
  buf.reset_stats();
  EXPECT_EQ(buf.hits(), 0u);
  EXPECT_EQ(buf.inserts(), 0u);
  EXPECT_TRUE(buf.contains(row(0, 1)));
}

TEST(PrefetchBuffer, TableIConfiguration) {
  const PrefetchBufferConfig cfg;  // defaults = Table I
  EXPECT_EQ(cfg.entries, 16u);        // 16 KB / 1 KB rows
  EXPECT_EQ(cfg.lines_per_row, 16u);  // 1 KB / 64 B
  EXPECT_EQ(cfg.hit_latency, 22u);    // cycles
}

// Property: under any policy, size never exceeds capacity and contains()
// agrees with insert/evict bookkeeping.
class BufferChurnSweep : public ::testing::TestWithParam<int> {};

TEST_P(BufferChurnSweep, CapacityInvariant) {
  auto policy = GetParam() == 0 ? make_lru() : make_utilization_recency();
  PrefetchBuffer buf(small_cfg(8), std::move(policy));
  u64 x = 7;
  u64 resident_checks = 0;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const BankRow r{static_cast<BankId>((x >> 8) % 4), (x >> 16) % 32};
    if ((x & 3) == 0) {
      buf.insert(r);
    } else {
      if (buf.access(r, static_cast<LineId>((x >> 40) % 16),
                     (x & 4) != 0 ? AccessType::kWrite : AccessType::kRead)) {
        ++resident_checks;
        EXPECT_TRUE(buf.contains(r));
      }
    }
    ASSERT_LE(buf.size(), buf.capacity());
  }
  EXPECT_GT(resident_checks, 0u);
  EXPECT_EQ(buf.inserts(), buf.evictions() + buf.size());
}

INSTANTIATE_TEST_SUITE_P(Policies, BufferChurnSweep, ::testing::Values(0, 1));

}  // namespace
}  // namespace camps::prefetch
