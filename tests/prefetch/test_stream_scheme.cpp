// STREAM extension scheme: per-bank direction detection and lookahead.
#include <gtest/gtest.h>

#include "prefetch/scheme_stream.hpp"

namespace camps::prefetch {
namespace {

using dram::RowBufferOutcome;

AccessContext miss(BankId bank, RowId row) {
  AccessContext c;
  c.bank = bank;
  c.row = row;
  c.outcome = RowBufferOutcome::kEmpty;
  return c;
}

AccessContext hit(BankId bank, RowId row) {
  AccessContext c = miss(bank, row);
  c.outcome = RowBufferOutcome::kHit;
  return c;
}

StreamParams params(u32 confidence = 2, u32 degree = 2) {
  StreamParams p;
  p.banks = 16;
  p.confidence_threshold = confidence;
  p.degree = degree;
  return p;
}

TEST(StreamScheme, NoPrefetchBeforeConfidence) {
  StreamScheme s(params());
  EXPECT_FALSE(s.on_demand_access(miss(0, 10)).any());
  EXPECT_FALSE(s.on_demand_access(miss(0, 11)).any()) << "confidence 1 of 2";
  EXPECT_EQ(s.confidence(0), 1u);
  EXPECT_EQ(s.direction(0), 0) << "not yet confirmed";
}

TEST(StreamScheme, AscendingStreamConfirmsAndPrefetchesAhead) {
  StreamScheme s(params(2, 2));
  s.on_demand_access(miss(0, 10));
  s.on_demand_access(miss(0, 11));
  const auto d = s.on_demand_access(miss(0, 12));
  ASSERT_EQ(d.extra_rows.size(), 2u);
  EXPECT_EQ(d.extra_rows[0], 13u);
  EXPECT_EQ(d.extra_rows[1], 14u);
  EXPECT_FALSE(d.fetch_row) << "stream prefetch runs ahead, not behind";
  EXPECT_EQ(s.direction(0), 1);
}

TEST(StreamScheme, DescendingStreamDetected) {
  StreamScheme s(params(2, 1));
  s.on_demand_access(miss(0, 20));
  s.on_demand_access(miss(0, 19));
  const auto d = s.on_demand_access(miss(0, 18));
  ASSERT_EQ(d.extra_rows.size(), 1u);
  EXPECT_EQ(d.extra_rows[0], 17u);
  EXPECT_EQ(s.direction(0), -1);
}

TEST(StreamScheme, DescendingStreamStopsAtRowZero) {
  StreamScheme s(params(1, 4));
  s.on_demand_access(miss(0, 2));
  const auto d = s.on_demand_access(miss(0, 1));
  ASSERT_EQ(d.extra_rows.size(), 1u) << "row -1 and below must not appear";
  EXPECT_EQ(d.extra_rows[0], 0u);
}

TEST(StreamScheme, JumpResetsDetector) {
  StreamScheme s(params(2, 2));
  s.on_demand_access(miss(0, 10));
  s.on_demand_access(miss(0, 11));
  s.on_demand_access(miss(0, 12));  // confirmed
  EXPECT_FALSE(s.on_demand_access(miss(0, 500)).any());
  EXPECT_EQ(s.confidence(0), 0u);
  EXPECT_EQ(s.direction(0), 0);
}

TEST(StreamScheme, DirectionReversalRestartsConfidence) {
  StreamScheme s(params(2, 1));
  s.on_demand_access(miss(0, 10));
  s.on_demand_access(miss(0, 11));
  s.on_demand_access(miss(0, 12));  // up-stream confirmed
  EXPECT_FALSE(s.on_demand_access(miss(0, 11)).any()) << "reversal: conf 1";
  const auto d = s.on_demand_access(miss(0, 10));
  EXPECT_EQ(d.extra_rows.size(), 1u) << "down-stream now confirmed";
}

TEST(StreamScheme, RowHitsDoNotDisturbDetector) {
  StreamScheme s(params(2, 1));
  s.on_demand_access(miss(0, 10));
  s.on_demand_access(miss(0, 11));
  s.on_demand_access(hit(0, 11));
  s.on_demand_access(hit(0, 11));
  const auto d = s.on_demand_access(miss(0, 12));
  EXPECT_EQ(d.extra_rows.size(), 1u);
}

TEST(StreamScheme, BanksTrackIndependently) {
  StreamScheme s(params(1, 1));
  s.on_demand_access(miss(0, 10));
  s.on_demand_access(miss(1, 50));
  EXPECT_EQ(s.on_demand_access(miss(0, 11)).extra_rows.size(), 1u);
  EXPECT_EQ(s.on_demand_access(miss(1, 49)).extra_rows[0], 48u);
}

TEST(StreamScheme, NameAndDefaultReplacement) {
  StreamScheme s(params());
  EXPECT_EQ(s.name(), "STREAM");
  EXPECT_EQ(s.make_replacement()->name(), "lru");
}

}  // namespace
}  // namespace camps::prefetch
