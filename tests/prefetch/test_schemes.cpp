// Scheme behaviours other than CAMPS (which gets its own file).
#include <gtest/gtest.h>

#include "prefetch/factory.hpp"
#include "prefetch/scheme_base.hpp"
#include "prefetch/scheme_base_hit.hpp"
#include "prefetch/scheme_mmd.hpp"
#include "prefetch/scheme_none.hpp"

namespace camps::prefetch {
namespace {

AccessContext ctx(dram::RowBufferOutcome outcome, u32 queued_same_row = 0,
                  BankId bank = 0, RowId row = 10) {
  AccessContext c;
  c.bank = bank;
  c.row = row;
  c.line = 0;
  c.type = AccessType::kRead;
  c.outcome = outcome;
  c.queued_same_row = queued_same_row;
  c.dram_cycle = 100;
  return c;
}

using dram::RowBufferOutcome;

TEST(NoPrefetchScheme, NeverFetches) {
  NoPrefetchScheme none;
  for (auto outcome : {RowBufferOutcome::kHit, RowBufferOutcome::kEmpty,
                       RowBufferOutcome::kConflict}) {
    const auto d = none.on_demand_access(ctx(outcome));
    EXPECT_FALSE(d.any());
  }
}

TEST(BaseScheme, FetchesAndPrechargesOnEveryAccess) {
  BaseScheme base;
  for (auto outcome : {RowBufferOutcome::kHit, RowBufferOutcome::kEmpty,
                       RowBufferOutcome::kConflict}) {
    const auto d = base.on_demand_access(ctx(outcome));
    EXPECT_TRUE(d.fetch_row);
    EXPECT_TRUE(d.precharge_after);
    EXPECT_TRUE(d.serve_via_buffer) << "BASE serves through the copy";
    EXPECT_TRUE(d.extra_rows.empty());
  }
}

TEST(BaseHitScheme, RequiresTwoQueuedHits) {
  BaseHitScheme scheme(2);
  EXPECT_FALSE(scheme.on_demand_access(ctx(RowBufferOutcome::kEmpty, 0)).any());
  const auto d = scheme.on_demand_access(ctx(RowBufferOutcome::kEmpty, 1));
  EXPECT_TRUE(d.fetch_row);
  EXPECT_FALSE(d.precharge_after) << "BASE-HIT keeps the open-page policy";
  EXPECT_TRUE(d.serve_via_buffer);
}

TEST(BaseHitScheme, ThresholdIsConfigurable) {
  BaseHitScheme scheme(4);
  EXPECT_FALSE(scheme.on_demand_access(ctx(RowBufferOutcome::kEmpty, 2)).any());
  EXPECT_TRUE(
      scheme.on_demand_access(ctx(RowBufferOutcome::kEmpty, 3)).fetch_row);
}

TEST(MmdScheme, FetchesActivatedRowOnMiss) {
  MmdScheme mmd;
  const auto d = mmd.on_demand_access(ctx(RowBufferOutcome::kEmpty));
  EXPECT_TRUE(d.fetch_row);
  EXPECT_FALSE(d.precharge_after);
  EXPECT_FALSE(d.serve_via_buffer);
}

TEST(MmdScheme, NoFetchOnRowHit) {
  MmdScheme mmd;
  EXPECT_FALSE(mmd.on_demand_access(ctx(RowBufferOutcome::kHit)).any());
}

TEST(MmdScheme, DegreeControlsExtraRows) {
  MmdParams p;
  p.max_degree = 4;
  p.initial_degree = 3;
  MmdScheme mmd(p);
  const auto d = mmd.on_demand_access(ctx(RowBufferOutcome::kConflict));
  ASSERT_EQ(d.extra_rows.size(), 2u);
  EXPECT_EQ(d.extra_rows[0], 11u);  // row + 1
  EXPECT_EQ(d.extra_rows[1], 12u);  // row + 2
}

TEST(MmdScheme, UsefulFeedbackRaisesDegree) {
  MmdParams p;
  p.max_degree = 4;
  p.epoch_evictions = 4;
  MmdScheme mmd(p);
  EXPECT_EQ(mmd.degree(), 1u);
  for (int i = 0; i < 4; ++i) mmd.on_prefetch_evicted({}, true);
  EXPECT_EQ(mmd.degree(), 2u);
  EXPECT_EQ(mmd.epochs_completed(), 1u);
}

TEST(MmdScheme, UselessFeedbackLowersDegreeToZero) {
  MmdParams p;
  p.max_degree = 4;
  p.epoch_evictions = 4;
  p.initial_degree = 2;
  MmdScheme mmd(p);
  for (int i = 0; i < 4; ++i) mmd.on_prefetch_evicted({}, false);
  EXPECT_EQ(mmd.degree(), 1u);
  for (int i = 0; i < 4; ++i) mmd.on_prefetch_evicted({}, false);
  EXPECT_EQ(mmd.degree(), 0u);
  // At degree 0 the prefetcher is off.
  EXPECT_FALSE(mmd.on_demand_access(ctx(RowBufferOutcome::kEmpty)).any());
}

TEST(MmdScheme, DegreeCappedAtMax) {
  MmdParams p;
  p.epoch_evictions = 2;
  p.max_degree = 2;
  MmdScheme mmd(p);
  for (int i = 0; i < 20; ++i) mmd.on_prefetch_evicted({}, true);
  EXPECT_EQ(mmd.degree(), 2u);
}

TEST(MmdScheme, ProbesAgainAfterIdleAtZero) {
  MmdParams p;
  p.epoch_evictions = 2;
  p.initial_degree = 1;
  p.probe_interval = 8;
  MmdScheme mmd(p);
  for (int i = 0; i < 2; ++i) mmd.on_prefetch_evicted({}, false);
  EXPECT_EQ(mmd.degree(), 0u);
  // 7 misses: still off; the 8th re-enables at degree 1.
  for (int i = 0; i < 7; ++i) {
    EXPECT_FALSE(mmd.on_demand_access(ctx(RowBufferOutcome::kEmpty)).any());
  }
  EXPECT_TRUE(mmd.on_demand_access(ctx(RowBufferOutcome::kEmpty)).fetch_row);
  EXPECT_EQ(mmd.degree(), 1u);
}

TEST(MmdScheme, MiddleBandHoldsDegree) {
  MmdParams p;
  p.max_degree = 4;
  p.epoch_evictions = 10;
  p.initial_degree = 2;
  MmdScheme mmd(p);
  // 50% usefulness sits between lower (0.45) and raise (0.65): no change.
  for (int i = 0; i < 10; ++i) mmd.on_prefetch_evicted({}, i % 2 == 0);
  EXPECT_EQ(mmd.degree(), 2u);
}

TEST(Factory, PaperSchemesInFigureOrder) {
  const auto schemes = paper_schemes();
  ASSERT_EQ(schemes.size(), 5u);
  EXPECT_EQ(schemes[0], SchemeKind::kBase);
  EXPECT_EQ(schemes[1], SchemeKind::kBaseHit);
  EXPECT_EQ(schemes[2], SchemeKind::kMmd);
  EXPECT_EQ(schemes[3], SchemeKind::kCamps);
  EXPECT_EQ(schemes[4], SchemeKind::kCampsMod);
}

TEST(Factory, NamesRoundTrip) {
  for (SchemeKind kind :
       {SchemeKind::kNone, SchemeKind::kBase, SchemeKind::kBaseHit,
        SchemeKind::kMmd, SchemeKind::kCamps, SchemeKind::kCampsMod,
        SchemeKind::kStream}) {
    EXPECT_EQ(scheme_from_string(to_string(kind)), kind);
    EXPECT_EQ(make_scheme(kind)->name(), to_string(kind));
  }
}

TEST(Factory, ParseIsCaseInsensitive) {
  EXPECT_EQ(scheme_from_string("camps-mod"), SchemeKind::kCampsMod);
  EXPECT_EQ(scheme_from_string("Base-Hit"), SchemeKind::kBaseHit);
}

TEST(Factory, UnknownNameThrows) {
  EXPECT_THROW(scheme_from_string("stride"), std::out_of_range);
}

TEST(Factory, ReplacementPolicyPairing) {
  // Section 5 fixes LRU everywhere except CAMPS-MOD.
  EXPECT_EQ(make_scheme(SchemeKind::kBase)->make_replacement()->name(), "lru");
  EXPECT_EQ(make_scheme(SchemeKind::kMmd)->make_replacement()->name(), "lru");
  EXPECT_EQ(make_scheme(SchemeKind::kCamps)->make_replacement()->name(),
            "lru");
  EXPECT_EQ(make_scheme(SchemeKind::kCampsMod)->make_replacement()->name(),
            "util-recency");
}

}  // namespace
}  // namespace camps::prefetch
