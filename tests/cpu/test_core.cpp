// Trace-driven core: issue pacing, the outstanding-load window, and the
// warmup/measurement methodology hooks.
#include <functional>
#include <gtest/gtest.h>
#include <memory>
#include <vector>

#include "cpu/core.hpp"

namespace camps::cpu {
namespace {

/// Memory that answers every read after a fixed latency.
class FixedMemory final : public cache::MemoryPort {
 public:
  FixedMemory(sim::Simulator& sim, Tick latency) : sim_(sim), latency_(latency) {}
  void mem_read(Addr, CoreId, std::function<void()> done) override {
    ++reads;
    sim_.schedule(latency_, std::move(done));
  }
  void mem_write(Addr, CoreId) override { ++writes; }
  u64 reads = 0, writes = 0;

 private:
  sim::Simulator& sim_;
  Tick latency_;
};

cache::HierarchyConfig tiny_caches() {
  cache::HierarchyConfig cfg;
  cfg.l1 = cache::CacheConfig{1024, 2, 64, 2};
  cfg.l2 = cache::CacheConfig{4096, 4, 64, 6};
  cfg.l3 = cache::CacheConfig{16384, 4, 64, 20};
  return cfg;
}

struct Harness {
  sim::Simulator sim;
  FixedMemory memory{sim, 200 * sim::kCpuTicksPerCycle};
  cache::CacheHierarchy caches{sim, tiny_caches(), 1, &memory};
  std::unique_ptr<trace::VectorTraceSource> trace;
  std::unique_ptr<Core> core;
  std::vector<CoreId> warmed, measured;

  void build(std::vector<trace::TraceRecord> records, CoreConfig cfg) {
    trace = std::make_unique<trace::VectorTraceSource>(std::move(records));
    core = std::make_unique<Core>(
        sim, 0, cfg, trace.get(), &caches,
        [this](CoreId id) { warmed.push_back(id); },
        [this](CoreId id) { measured.push_back(id); });
  }
};

std::vector<trace::TraceRecord> sequential_loads(size_t n, u32 gap = 3) {
  std::vector<trace::TraceRecord> v;
  for (size_t i = 0; i < n; ++i) {
    v.push_back({gap, 0x100000 + 64 * i, AccessType::kRead});
  }
  return v;
}

TEST(Core, ExecutesWholeTraceAndHalts) {
  Harness h;
  CoreConfig cfg;
  cfg.warmup_instructions = 8;
  cfg.measure_instructions = 16;
  h.build(sequential_loads(20), cfg);
  h.core->start();
  h.sim.run();
  EXPECT_TRUE(h.core->halted());
  EXPECT_EQ(h.core->instructions_issued(), 20 * 4u);  // (gap 3 + 1) each
  EXPECT_EQ(h.core->loads(), 20u);
}

TEST(Core, PhaseCallbacksFireOnce) {
  Harness h;
  CoreConfig cfg;
  cfg.warmup_instructions = 8;
  cfg.measure_instructions = 16;
  h.build(sequential_loads(50), cfg);
  h.core->start();
  h.sim.run();
  EXPECT_EQ(h.warmed.size(), 1u);
  EXPECT_EQ(h.measured.size(), 1u);
  EXPECT_TRUE(h.core->warmed_up());
  EXPECT_TRUE(h.core->measured());
  EXPECT_EQ(h.core->measured_instructions(), 16u);
}

TEST(Core, IpcBoundedByIssueWidthAndMemoryPort) {
  Harness h;
  CoreConfig cfg;
  cfg.issue_width = 4;
  cfg.warmup_instructions = 40;
  cfg.measure_instructions = 400;
  h.build(sequential_loads(200, /*gap=*/7), cfg);  // 8 instrs / record
  h.core->start();
  h.sim.run();
  const double ipc = h.core->measured_ipc();
  EXPECT_GT(ipc, 0.0);
  // ceil(8/4) = 2 cycles per record minimum -> IPC <= 4.
  EXPECT_LE(ipc, 4.0 + 1e-9);
}

TEST(Core, ZeroGapStillProgresses) {
  Harness h;
  CoreConfig cfg;
  cfg.warmup_instructions = 2;
  cfg.measure_instructions = 4;
  h.build(sequential_loads(50, /*gap=*/0), cfg);
  h.core->start();
  h.sim.run();
  EXPECT_TRUE(h.core->halted());
  EXPECT_EQ(h.core->instructions_issued(), 50u);
}

TEST(Core, WindowLimitsOutstandingLoads) {
  Harness h;
  CoreConfig cfg;
  cfg.max_outstanding_loads = 2;
  cfg.warmup_instructions = 10;
  cfg.measure_instructions = 100;
  // All loads to distinct lines -> every one misses to memory (200 cyc).
  h.build(sequential_loads(30, /*gap=*/0), cfg);
  h.core->start();
  h.sim.run();
  EXPECT_GT(h.core->stall_cycles(), 0u) << "window of 2 must stall";
  // With at most 2 in flight over 200-cycle misses, 30 loads need >= 3000
  // cycles of stalling in total.
  EXPECT_GT(h.core->stall_cycles(), 2000u);
}

TEST(Core, WiderWindowStallsLess) {
  auto run_with_window = [](u32 window) {
    Harness h;
    CoreConfig cfg;
    cfg.max_outstanding_loads = window;
    cfg.warmup_instructions = 10;
    cfg.measure_instructions = 100;
    h.build(sequential_loads(30, 0), cfg);
    h.core->start();
    h.sim.run();
    return h.core->stall_cycles();
  };
  EXPECT_LT(run_with_window(8), run_with_window(1));
}

TEST(Core, StoresDoNotBlock) {
  Harness h;
  CoreConfig cfg;
  cfg.max_outstanding_loads = 1;
  cfg.warmup_instructions = 4;
  cfg.measure_instructions = 8;
  std::vector<trace::TraceRecord> recs;
  for (size_t i = 0; i < 30; ++i) {
    recs.push_back({0, 0x200000 + 64 * i, AccessType::kWrite});
  }
  h.build(recs, cfg);
  h.core->start();
  h.sim.run();
  EXPECT_EQ(h.core->stall_cycles(), 0u);
  EXPECT_EQ(h.core->stores(), 30u);
}

TEST(Core, EarlyTraceEndCompletesPhases) {
  Harness h;
  CoreConfig cfg;
  cfg.warmup_instructions = 1000000;  // unreachable
  cfg.measure_instructions = 1000000;
  h.build(sequential_loads(5), cfg);
  h.core->start();
  h.sim.run();
  EXPECT_TRUE(h.core->halted());
  EXPECT_TRUE(h.core->warmed_up());
  EXPECT_TRUE(h.core->measured());
  EXPECT_EQ(h.measured.size(), 1u) << "run must not deadlock on short traces";
}

TEST(Core, MeasuredIpcUsesOnlyTheWindow) {
  Harness h;
  CoreConfig cfg;
  cfg.warmup_instructions = 20;
  cfg.measure_instructions = 40;
  h.build(sequential_loads(100, 1), cfg);
  h.core->start();
  h.sim.run();
  // IPC positive and finite; instructions counted exactly.
  EXPECT_GT(h.core->measured_ipc(), 0.0);
  EXPECT_EQ(h.core->measured_instructions(), 40u);
}

TEST(Core, TwoCoresShareTheHierarchyIndependently) {
  sim::Simulator sim;
  FixedMemory memory{sim, 200 * sim::kCpuTicksPerCycle};
  cache::CacheHierarchy caches{sim, tiny_caches(), 2, &memory};
  CoreConfig cfg;
  cfg.warmup_instructions = 200;   // past core 0's four cold misses
  cfg.measure_instructions = 400;
  // Core 0 loops over cached lines; core 1 streams through memory.
  std::vector<trace::TraceRecord> hot, cold;
  for (size_t i = 0; i < 200; ++i) {
    hot.push_back({3, 0x100000 + 64 * (i % 4), AccessType::kRead});
    cold.push_back({3, 0x800000 + 64 * i, AccessType::kRead});
  }
  trace::VectorTraceSource hot_src(hot), cold_src(cold);
  int done = 0;
  Core fast(sim, 0, cfg, &hot_src, &caches, nullptr,
            [&](CoreId) { ++done; });
  Core slow(sim, 1, cfg, &cold_src, &caches, nullptr,
            [&](CoreId) { ++done; });
  fast.start();
  slow.start();
  sim.run();
  EXPECT_EQ(done, 2);
  EXPECT_GT(fast.measured_ipc(), slow.measured_ipc() * 1.5)
      << "the cache-resident core must run much faster";
  EXPECT_TRUE(caches.l1(0).probe(0x100000));
  EXPECT_FALSE(caches.l1(0).probe(0x800000))
      << "core 1's stream must not pollute core 0's private L1";
}

TEST(Core, CacheHitsKeepIpcHigh) {
  Harness h;
  CoreConfig cfg;
  cfg.warmup_instructions = 100;
  cfg.measure_instructions = 500;
  // Loop over 4 lines: everything after warmup hits the L1.
  std::vector<trace::TraceRecord> recs;
  for (size_t i = 0; i < 500; ++i) {
    recs.push_back({3, 0x100000 + 64 * (i % 4), AccessType::kRead});
  }
  h.build(recs, cfg);
  h.core->start();
  h.sim.run();
  EXPECT_GT(h.core->measured_ipc(), 2.0) << "L1-resident loop should be fast";
}

}  // namespace
}  // namespace camps::cpu
