#include "obs/trace_recorder.hpp"

#include <gtest/gtest.h>

namespace camps::obs {
namespace {

TEST(TraceRecorder, DisabledByDefaultAndRecordIsNoOp) {
  TraceRecorder rec;
  EXPECT_FALSE(rec.enabled());
  rec.record(Stage::kHostRead, 0, 1, 10, 20);
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_TRUE(rec.sorted_spans().empty());
}

TEST(TraceRecorder, ZeroCapacityStaysDisabled) {
  TraceRecorder rec;
  rec.enable(0);
  EXPECT_FALSE(rec.enabled());
  rec.record(Stage::kLinkDown, 0, 1, 0, 5);
  EXPECT_EQ(rec.recorded(), 0u);
}

TEST(TraceRecorder, RecordsUpToCapacity) {
  TraceRecorder rec;
  rec.enable(4);
  EXPECT_TRUE(rec.enabled());
  rec.record(Stage::kHostRead, 2, 7, 10, 40);
  EXPECT_EQ(rec.recorded(), 1u);
  EXPECT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec.dropped(), 0u);
  const auto spans = rec.sorted_spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0], (Span{10, 40, 7, 2, Stage::kHostRead}));
}

TEST(TraceRecorder, RingOverwritesOldestAndCountsDrops) {
  TraceRecorder rec;
  rec.enable(3);
  for (u64 i = 0; i < 5; ++i) {
    rec.record(Stage::kBankService, 0, i, i * 10, i * 10 + 5);
  }
  EXPECT_EQ(rec.recorded(), 5u);
  EXPECT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.dropped(), 2u);
  // The two oldest spans (ids 0 and 1) were overwritten.
  const auto spans = rec.sorted_spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].id, 2u);
  EXPECT_EQ(spans[1].id, 3u);
  EXPECT_EQ(spans[2].id, 4u);
}

TEST(TraceRecorder, SortedSpansOrdersByBeginEndStageTrackId) {
  TraceRecorder rec;
  rec.enable(8);
  // Insert deliberately out of order.
  rec.record(Stage::kLinkUp, 1, 4, 20, 30);
  rec.record(Stage::kHostRead, 0, 1, 5, 50);
  rec.record(Stage::kLinkDown, 0, 2, 20, 25);
  rec.record(Stage::kLinkDown, 1, 3, 20, 25);
  const auto spans = rec.sorted_spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].id, 1u);  // begin 5
  EXPECT_EQ(spans[1].id, 2u);  // begin 20, end 25, track 0
  EXPECT_EQ(spans[2].id, 3u);  // begin 20, end 25, track 1
  EXPECT_EQ(spans[3].id, 4u);  // begin 20, end 30
  // Sorting is deterministic: a second call yields the identical vector.
  EXPECT_EQ(rec.sorted_spans(), spans);
}

TEST(TraceRecorder, ClearEmptiesButStaysEnabled) {
  TraceRecorder rec;
  rec.enable(4);
  rec.record(Stage::kPfInsert, 0, 0, 7, 7);
  rec.clear();
  EXPECT_TRUE(rec.enabled());
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.size(), 0u);
  rec.record(Stage::kPfEvict, 0, 0, 9, 9);
  EXPECT_EQ(rec.size(), 1u);
}

TEST(TraceRecorder, StageNamesCoverTheTaxonomy) {
  EXPECT_STREQ(to_string(Stage::kHostRead), "host_read");
  EXPECT_STREQ(to_string(Stage::kHostQueue), "host_queue");
  EXPECT_STREQ(to_string(Stage::kLinkDown), "link_down");
  EXPECT_STREQ(to_string(Stage::kLinkUp), "link_up");
  EXPECT_STREQ(to_string(Stage::kXbarDown), "xbar_down");
  EXPECT_STREQ(to_string(Stage::kXbarUp), "xbar_up");
  EXPECT_STREQ(to_string(Stage::kVaultQueue), "vault_queue");
  EXPECT_STREQ(to_string(Stage::kBufferHit), "buffer_hit");
  EXPECT_STREQ(to_string(Stage::kBankAct), "bank_act");
  EXPECT_STREQ(to_string(Stage::kBankPre), "bank_pre");
  EXPECT_STREQ(to_string(Stage::kBankService), "bank_service");
  EXPECT_STREQ(to_string(Stage::kRowFetch), "row_fetch");
  EXPECT_STREQ(to_string(Stage::kPfInsert), "pf_insert");
  EXPECT_STREQ(to_string(Stage::kPfEvict), "pf_evict");
}

}  // namespace
}  // namespace camps::obs
