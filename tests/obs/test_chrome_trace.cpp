#include "obs/chrome_trace.hpp"

#include <gtest/gtest.h>
#include <string>
#include <vector>

namespace camps::obs {
namespace {

// Golden-file test: the exporter's output is a documented format, so pin the
// exact bytes for a tiny span set covering a complete event ("ph":"X"), an
// instant ("ph":"i"), an anonymous span (id 0 -> no args), and both
// metadata record kinds.
TEST(ChromeTrace, GoldenSmallTrace) {
  const std::vector<Span> spans = {
      {24000, 24000, 0, 3, Stage::kPfInsert},   // instant, vault3, anonymous
      {24000, 48000, 7, 0, Stage::kHostRead},   // 1 us -> 2 us, core0
      {36000, 60000, 7, 5, Stage::kBankService} // bank5
  };
  const std::string json = chrome_trace_json({TraceRun{"MX1/CAMPS", &spans}});

  const std::string expected =
      R"({"displayTimeUnit":"ms","traceEvents":[)"
      R"({"name":"process_name","ph":"M","pid":0,"args":{"name":"MX1/CAMPS"}},)"
      R"({"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"core0"}},)"
      R"({"name":"thread_name","ph":"M","pid":0,"tid":3003,"args":{"name":"vault3"}},)"
      R"({"name":"thread_name","ph":"M","pid":0,"tid":4005,"args":{"name":"bank5"}},)"
      R"({"name":"pf_insert","cat":"camps","ph":"i","ts":1,"s":"t","pid":0,"tid":3003},)"
      R"({"name":"host_read","cat":"camps","ph":"X","ts":1,"dur":1,"pid":0,"tid":0,"args":{"id":7}},)"
      R"({"name":"bank_service","cat":"camps","ph":"X","ts":1.5,"dur":1,"pid":0,"tid":4005,"args":{"id":7}})"
      R"(]})";
  EXPECT_EQ(json, expected);
}

TEST(ChromeTrace, MultipleRunsGetDistinctPids) {
  const std::vector<Span> a = {{0, 24, 1, 0, Stage::kHostRead}};
  const std::vector<Span> b = {{0, 24, 2, 0, Stage::kHostRead}};
  const std::string json =
      chrome_trace_json({TraceRun{"runA", &a}, TraceRun{"runB", &b}});
  EXPECT_NE(json.find(R"("pid":0,"args":{"name":"runA"})"), std::string::npos)
      << json;
  EXPECT_NE(json.find(R"("pid":1,"args":{"name":"runB"})"), std::string::npos)
      << json;
}

TEST(ChromeTrace, NullSpanVectorEmitsOnlyProcessMetadata) {
  const std::string json =
      chrome_trace_json({TraceRun{"empty", nullptr}});
  const std::string expected =
      R"({"displayTimeUnit":"ms","traceEvents":[)"
      R"({"name":"process_name","ph":"M","pid":0,"args":{"name":"empty"}})"
      R"(]})";
  EXPECT_EQ(json, expected);
}

TEST(ChromeTrace, OutputIsDeterministic) {
  const std::vector<Span> spans = {
      {100, 200, 3, 2, Stage::kLinkDown},
      {150, 150, 0, 2, Stage::kPfEvict},
  };
  const std::vector<TraceRun> runs = {TraceRun{"r", &spans}};
  EXPECT_EQ(chrome_trace_json(runs), chrome_trace_json(runs));
}

}  // namespace
}  // namespace camps::obs
