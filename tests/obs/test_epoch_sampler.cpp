#include "obs/epoch_sampler.hpp"

#include <gtest/gtest.h>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace camps::obs {
namespace {

TEST(EpochSampler, SamplesOnScheduleAndStampsTicks) {
  sim::Simulator sim;
  u64 reads = 0;
  EpochSampler sampler(
      sim, 100,
      [&] {
        EpochSample s;
        s.demand_reads = reads;
        return s;
      },
      [] { return true; });
  sampler.start();
  // Drive some "work" alongside the sampler, then stop everything at 350.
  sim.schedule(250, [&] { reads = 42; });
  sim.run_until(350);

  ASSERT_EQ(sampler.samples().size(), 3u);
  EXPECT_EQ(sampler.samples()[0].tick, 100u);
  EXPECT_EQ(sampler.samples()[1].tick, 200u);
  EXPECT_EQ(sampler.samples()[2].tick, 300u);
  EXPECT_EQ(sampler.samples()[0].demand_reads, 0u);
  EXPECT_EQ(sampler.samples()[2].demand_reads, 42u);
}

TEST(EpochSampler, StopsReschedulingWhenKeepGoingTurnsFalse) {
  sim::Simulator sim;
  bool keep_going = true;
  EpochSampler sampler(
      sim, 10, [] { return EpochSample{}; }, [&] { return keep_going; });
  sampler.start();
  sim.schedule(25, [&] { keep_going = false; });
  // run() drains the queue: without the keep-going check the sampler would
  // reschedule itself forever and run() would never return.
  sim.run();
  EXPECT_EQ(sampler.samples().size(), 2u);  // ticks 10 and 20 only
}

TEST(EpochSampler, CsvHasHeaderAndOneRowPerSample) {
  std::vector<EpochSample> samples(2);
  samples[0].tick = 100;
  samples[0].row_conflicts = 3;
  samples[0].row_conflict_rate = 0.25;
  samples[1].tick = 200;
  samples[1].buffer_occupancy = 7;

  const std::string csv = EpochSampler::series_csv(samples);
  EXPECT_EQ(csv,
            "tick,row_hits,row_empties,row_conflicts,row_conflict_rate,"
            "prefetches_issued,prefetch_accuracy,buffer_hits,buffer_misses,"
            "buffer_hit_rate,buffer_occupancy,link_down_busy_ticks,"
            "link_up_busy_ticks,demand_reads,demand_writes\n"
            "100,0,0,3,0.25,0,0,0,0,0,0,0,0,0,0\n"
            "200,0,0,0,0,0,0,0,0,0,7,0,0,0,0\n");
}

TEST(EpochSampler, JsonCarriesEpochPeriodAndAllFields) {
  std::vector<EpochSample> samples(1);
  samples[0].tick = 2400;
  samples[0].buffer_hit_rate = 0.5;

  const std::string json = EpochSampler::series_json(samples, 2400);
  EXPECT_NE(json.find(R"("epoch_ticks":2400)"), std::string::npos) << json;
  EXPECT_NE(json.find(R"("tick":2400)"), std::string::npos) << json;
  EXPECT_NE(json.find(R"("buffer_hit_rate":0.5)"), std::string::npos) << json;
  EXPECT_NE(json.find(R"("link_up_busy_ticks":0)"), std::string::npos) << json;
  // Rendering is a pure function of the samples.
  EXPECT_EQ(json, EpochSampler::series_json(samples, 2400));
}

}  // namespace
}  // namespace camps::obs
