#include "exp/table.hpp"


#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>
#include <string>

namespace camps::exp {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ColumnsAligned) {
  Table t({"x", "y"});
  t.add_row({"longvalue", "1"});
  const std::string s = t.to_string();
  // Header row pads "x" to the width of "longvalue": the 'y' column starts
  // at the same offset in both lines.
  const auto first_line = s.substr(0, s.find('\n'));
  std::istringstream in(s);
  std::string header, sep, row;
  std::getline(in, header);
  std::getline(in, sep);
  std::getline(in, row);
  EXPECT_EQ(header.find('y'), row.find('1'));
  EXPECT_GE(sep.size(), header.size() - 1);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(1.23456, 3), "1.235");
  EXPECT_EQ(Table::fmt(2.0, 1), "2.0");
  EXPECT_EQ(Table::fmt(-0.5, 2), "-0.50");
}

TEST(Table, PctFormatsFractions) {
  EXPECT_EQ(Table::pct(0.705, 1), "70.5%");
  EXPECT_EQ(Table::pct(0.0, 0), "0%");
  EXPECT_EQ(Table::pct(1.0, 1), "100.0%");
}

TEST(Table, EmptyTableStillRendersHeader) {
  Table t({"only"});
  EXPECT_NE(t.to_string().find("only"), std::string::npos);
}

TEST(Table, CsvPlainCells) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t({"name", "note"});
  t.add_row({"x,y", "he said \"hi\""});
  EXPECT_EQ(t.to_csv(), "name,note\n\"x,y\",\"he said \"\"hi\"\"\"\n");
}

TEST(Table, WriteCsvRoundTrip) {
  Table t({"k", "v"});
  t.add_row({"alpha", "42"});
  const std::string path = ::testing::TempDir() + "/camps_table.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, t.to_csv());
  std::remove(path.c_str());
}

TEST(Table, WriteCsvBadPathThrows) {
  Table t({"k"});
  EXPECT_THROW(t.write_csv("/nonexistent/dir/x.csv"), std::runtime_error);
}

}  // namespace
}  // namespace camps::exp
