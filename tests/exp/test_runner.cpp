#include "exp/runner.hpp"


#include <cmath>
#include <gtest/gtest.h>
#include <string>
#include <vector>

namespace camps::exp {
namespace {

ExperimentConfig tiny() {
  ExperimentConfig cfg;
  cfg.warmup_instructions = 4000;
  cfg.measure_instructions = 20000;
  return cfg;
}

TEST(Runner, WorkloadLists) {
  EXPECT_EQ(Runner::all_workloads().size(), 12u);
  EXPECT_EQ(Runner::workloads_of(workload::WorkloadClass::kHM).size(), 4u);
  EXPECT_EQ(Runner::workloads_of(workload::WorkloadClass::kLM).size(), 4u);
  EXPECT_EQ(Runner::workloads_of(workload::WorkloadClass::kMX).size(), 4u);
  EXPECT_EQ(Runner::workloads_of(workload::WorkloadClass::kMX)[0], "MX1");
}

TEST(Runner, CachesResults) {
  Runner runner(tiny());
  const auto& first = runner.result("LM1", prefetch::SchemeKind::kNone);
  const auto& second = runner.result("LM1", prefetch::SchemeKind::kNone);
  EXPECT_EQ(&first, &second) << "same run must not execute twice";
}

TEST(Runner, SpeedupOfSchemeAgainstItselfIsOne) {
  Runner runner(tiny());
  EXPECT_DOUBLE_EQ(runner.speedup("LM1", prefetch::SchemeKind::kNone,
                                  prefetch::SchemeKind::kNone),
                   1.0);
}

TEST(Runner, MeanSpeedupIsGeometric) {
  Runner runner(tiny());
  const double s1 = runner.speedup("LM1", prefetch::SchemeKind::kCampsMod,
                                   prefetch::SchemeKind::kBase);
  const double s2 = runner.speedup("LM2", prefetch::SchemeKind::kCampsMod,
                                   prefetch::SchemeKind::kBase);
  const double mean = runner.mean_speedup({"LM1", "LM2"},
                                          prefetch::SchemeKind::kCampsMod,
                                          prefetch::SchemeKind::kBase);
  EXPECT_NEAR(mean, std::sqrt(s1 * s2), 1e-9);
}

TEST(Runner, SoloIpcCachedAndPositive) {
  Runner runner(tiny());
  const double a = runner.solo_ipc("h264ref", prefetch::SchemeKind::kNone);
  EXPECT_GT(a, 0.0);
  EXPECT_LE(a, 4.0);
  EXPECT_DOUBLE_EQ(runner.solo_ipc("h264ref", prefetch::SchemeKind::kNone),
                   a);
}

TEST(Runner, WeightedSpeedupBounds) {
  Runner runner(tiny());
  const double ws =
      runner.weighted_speedup("LM4", prefetch::SchemeKind::kNone);
  // Eight co-runners, each at most (approximately) its solo speed; memory
  // contention keeps the total well below 8 but above 1.
  EXPECT_GT(ws, 1.0);
  EXPECT_LT(ws, 8.5);
}

TEST(Runner, HarmonicAtMostWeightedOverN) {
  // HM(x) <= AM(x): harmonic speedup <= weighted speedup / N elementwise.
  Runner runner(tiny());
  const double ws =
      runner.weighted_speedup("LM4", prefetch::SchemeKind::kNone);
  const double hs =
      runner.harmonic_speedup("LM4", prefetch::SchemeKind::kNone);
  EXPECT_GT(hs, 0.0);
  EXPECT_LE(hs, ws / 8.0 + 1e-9);
}

// Field-by-field equality of everything deterministic in RunResults.
// wall_seconds is host timing and is deliberately excluded.
void expect_bit_identical(const system::RunResults& a,
                          const system::RunResults& b) {
  EXPECT_EQ(a.scheme, b.scheme);
  ASSERT_EQ(a.cores.size(), b.cores.size());
  for (size_t i = 0; i < a.cores.size(); ++i) {
    EXPECT_EQ(a.cores[i].ipc, b.cores[i].ipc);
    EXPECT_EQ(a.cores[i].instructions, b.cores[i].instructions);
    EXPECT_EQ(a.cores[i].loads, b.cores[i].loads);
    EXPECT_EQ(a.cores[i].stores, b.cores[i].stores);
    EXPECT_EQ(a.cores[i].stall_cycles, b.cores[i].stall_cycles);
  }
  EXPECT_EQ(a.geomean_ipc, b.geomean_ipc);
  EXPECT_EQ(a.amat_cycles, b.amat_cycles);
  EXPECT_EQ(a.mem_latency_cycles, b.mem_latency_cycles);
  EXPECT_EQ(a.row_hits, b.row_hits);
  EXPECT_EQ(a.row_empties, b.row_empties);
  EXPECT_EQ(a.row_conflicts, b.row_conflicts);
  EXPECT_EQ(a.row_conflict_rate, b.row_conflict_rate);
  EXPECT_EQ(a.prefetches, b.prefetches);
  EXPECT_EQ(a.prefetch_accuracy, b.prefetch_accuracy);
  EXPECT_EQ(a.buffer_hits, b.buffer_hits);
  EXPECT_EQ(a.buffer_misses, b.buffer_misses);
  EXPECT_EQ(a.buffer_hit_rate, b.buffer_hit_rate);
  EXPECT_EQ(a.energy_pj, b.energy_pj);
  EXPECT_EQ(a.link_down_utilization, b.link_down_utilization);
  EXPECT_EQ(a.link_up_utilization, b.link_up_utilization);
  EXPECT_EQ(a.link_wakeups, b.link_wakeups);
  EXPECT_EQ(a.mpki, b.mpki);
  EXPECT_EQ(a.memory_reads, b.memory_reads);
  EXPECT_EQ(a.memory_writes, b.memory_writes);
  EXPECT_EQ(a.measure_span_ticks, b.measure_span_ticks);
  EXPECT_EQ(a.partial, b.partial);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(Runner, ParallelSweepBitIdenticalToSerial) {
  const std::vector<std::string> workloads = {"LM1", "HM1"};
  const std::vector<prefetch::SchemeKind> schemes = {
      prefetch::SchemeKind::kNone, prefetch::SchemeKind::kCampsMod};

  ExperimentConfig serial_cfg = tiny();
  serial_cfg.jobs = 1;
  Runner serial(serial_cfg);
  serial.run_all(workloads, schemes);

  ExperimentConfig parallel_cfg = tiny();
  parallel_cfg.jobs = 4;
  Runner parallel(parallel_cfg);
  parallel.run_all(workloads, schemes);

  for (const auto& w : workloads) {
    for (auto s : schemes) {
      SCOPED_TRACE(w + "/" + prefetch::to_string(s));
      expect_bit_identical(serial.result(w, s), parallel.result(w, s));
    }
  }
}

TEST(Runner, FaultCampaignBitIdenticalAcrossJobs) {
  // Fault decisions are pure hashes of (seed, site, unit, sequence) — no
  // shared RNG — so an injection campaign must be exactly as --jobs
  // invariant as a fault-free sweep, fault counters included.
  const std::vector<std::string> workloads = {"LM1", "HM1"};
  const std::vector<prefetch::SchemeKind> schemes = {
      prefetch::SchemeKind::kCampsMod};

  ExperimentConfig campaign = tiny();
  campaign.fault.link_crc_rate = 1e-3;
  campaign.fault.vault_stall_rate = 1e-4;
  campaign.fault.vault_degrade_threshold = 8;
  campaign.fault.seed = 42;

  ExperimentConfig serial_cfg = campaign;
  serial_cfg.jobs = 1;
  Runner serial(serial_cfg);
  serial.run_all(workloads, schemes);

  ExperimentConfig parallel_cfg = campaign;
  parallel_cfg.jobs = 4;
  Runner parallel(parallel_cfg);
  parallel.run_all(workloads, schemes);

  bool any_injected = false;
  for (const auto& w : workloads) {
    for (auto s : schemes) {
      SCOPED_TRACE(w + "/" + prefetch::to_string(s));
      const auto& a = serial.result(w, s);
      const auto& b = parallel.result(w, s);
      expect_bit_identical(a, b);
      EXPECT_TRUE(a.faults.active);
      EXPECT_EQ(a.faults.injected(), b.faults.injected());
      EXPECT_EQ(a.faults.crc_errors, b.faults.crc_errors);
      EXPECT_EQ(a.faults.replays, b.faults.replays);
      EXPECT_EQ(a.faults.vault_stalls, b.faults.vault_stalls);
      EXPECT_EQ(a.faults.host_retries, b.faults.host_retries);
      EXPECT_EQ(a.faults.host_poisoned, b.faults.host_poisoned);
      EXPECT_EQ(a.faults.degrade_flushes, b.faults.degrade_flushes);
      EXPECT_EQ(a.faults.recovery.count, b.faults.recovery.count);
      EXPECT_EQ(a.faults.recovery.mean, b.faults.recovery.mean);
      any_injected |= a.faults.injected() > 0;
    }
  }
  EXPECT_TRUE(any_injected) << "campaign rates too low to exercise anything";
}

TEST(Runner, RunAllPopulatesTimingAndCache) {
  ExperimentConfig cfg = tiny();
  cfg.jobs = 2;
  Runner runner(cfg);
  runner.run_all({"LM1"}, {prefetch::SchemeKind::kNone});
  EXPECT_EQ(runner.timing().runs, 1u);
  EXPECT_GT(runner.timing().events, 0u);
  EXPECT_GT(runner.timing().sweep_seconds, 0.0);
  // Re-running the same jobs is a pure cache hit: no new runs.
  runner.run_all({"LM1"}, {prefetch::SchemeKind::kNone});
  EXPECT_EQ(runner.timing().runs, 1u);
}

TEST(RunParallel, PreservesJobOrder) {
  std::vector<SimFn> sims;
  for (int i = 0; i < 8; ++i) {
    sims.push_back([i] {
      system::RunResults r;
      r.events_executed = static_cast<u64>(i);
      return r;
    });
  }
  const auto results = run_parallel(std::move(sims), 4);
  ASSERT_EQ(results.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(results[static_cast<size_t>(i)].events_executed,
              static_cast<u64>(i));
  }
}

TEST(Runner, ConfigPropagatesToSystem) {
  ExperimentConfig cfg = tiny();
  cfg.seed = 1234;
  const auto sys_cfg = cfg.system_config(prefetch::SchemeKind::kMmd);
  EXPECT_EQ(sys_cfg.seed, 1234u);
  EXPECT_EQ(sys_cfg.core.measure_instructions, 20000u);
  EXPECT_EQ(sys_cfg.scheme, prefetch::SchemeKind::kMmd);
}

}  // namespace
}  // namespace camps::exp
