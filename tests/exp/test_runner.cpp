#include "exp/runner.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace camps::exp {
namespace {

ExperimentConfig tiny() {
  ExperimentConfig cfg;
  cfg.warmup_instructions = 4000;
  cfg.measure_instructions = 20000;
  return cfg;
}

TEST(Runner, WorkloadLists) {
  EXPECT_EQ(Runner::all_workloads().size(), 12u);
  EXPECT_EQ(Runner::workloads_of(workload::WorkloadClass::kHM).size(), 4u);
  EXPECT_EQ(Runner::workloads_of(workload::WorkloadClass::kLM).size(), 4u);
  EXPECT_EQ(Runner::workloads_of(workload::WorkloadClass::kMX).size(), 4u);
  EXPECT_EQ(Runner::workloads_of(workload::WorkloadClass::kMX)[0], "MX1");
}

TEST(Runner, CachesResults) {
  Runner runner(tiny());
  const auto& first = runner.result("LM1", prefetch::SchemeKind::kNone);
  const auto& second = runner.result("LM1", prefetch::SchemeKind::kNone);
  EXPECT_EQ(&first, &second) << "same run must not execute twice";
}

TEST(Runner, SpeedupOfSchemeAgainstItselfIsOne) {
  Runner runner(tiny());
  EXPECT_DOUBLE_EQ(runner.speedup("LM1", prefetch::SchemeKind::kNone,
                                  prefetch::SchemeKind::kNone),
                   1.0);
}

TEST(Runner, MeanSpeedupIsGeometric) {
  Runner runner(tiny());
  const double s1 = runner.speedup("LM1", prefetch::SchemeKind::kCampsMod,
                                   prefetch::SchemeKind::kBase);
  const double s2 = runner.speedup("LM2", prefetch::SchemeKind::kCampsMod,
                                   prefetch::SchemeKind::kBase);
  const double mean = runner.mean_speedup({"LM1", "LM2"},
                                          prefetch::SchemeKind::kCampsMod,
                                          prefetch::SchemeKind::kBase);
  EXPECT_NEAR(mean, std::sqrt(s1 * s2), 1e-9);
}

TEST(Runner, SoloIpcCachedAndPositive) {
  Runner runner(tiny());
  const double a = runner.solo_ipc("h264ref", prefetch::SchemeKind::kNone);
  EXPECT_GT(a, 0.0);
  EXPECT_LE(a, 4.0);
  EXPECT_DOUBLE_EQ(runner.solo_ipc("h264ref", prefetch::SchemeKind::kNone),
                   a);
}

TEST(Runner, WeightedSpeedupBounds) {
  Runner runner(tiny());
  const double ws =
      runner.weighted_speedup("LM4", prefetch::SchemeKind::kNone);
  // Eight co-runners, each at most (approximately) its solo speed; memory
  // contention keeps the total well below 8 but above 1.
  EXPECT_GT(ws, 1.0);
  EXPECT_LT(ws, 8.5);
}

TEST(Runner, HarmonicAtMostWeightedOverN) {
  // HM(x) <= AM(x): harmonic speedup <= weighted speedup / N elementwise.
  Runner runner(tiny());
  const double ws =
      runner.weighted_speedup("LM4", prefetch::SchemeKind::kNone);
  const double hs =
      runner.harmonic_speedup("LM4", prefetch::SchemeKind::kNone);
  EXPECT_GT(hs, 0.0);
  EXPECT_LE(hs, ws / 8.0 + 1e-9);
}

TEST(Runner, ConfigPropagatesToSystem) {
  ExperimentConfig cfg = tiny();
  cfg.seed = 1234;
  const auto sys_cfg = cfg.system_config(prefetch::SchemeKind::kMmd);
  EXPECT_EQ(sys_cfg.seed, 1234u);
  EXPECT_EQ(sys_cfg.core.measure_instructions, 20000u);
  EXPECT_EQ(sys_cfg.scheme, prefetch::SchemeKind::kMmd);
}

}  // namespace
}  // namespace camps::exp
