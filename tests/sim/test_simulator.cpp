#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace camps::sim {
namespace {

TEST(Simulator, NowStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0u);
}

TEST(Simulator, ScheduleRelativeAdvancesNow) {
  Simulator sim;
  Tick seen = 0;
  sim.schedule(25, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 25u);
  EXPECT_EQ(sim.now(), 25u);
}

TEST(Simulator, NestedSchedulingFromHandlers) {
  Simulator sim;
  std::vector<Tick> times;
  sim.schedule(10, [&] {
    times.push_back(sim.now());
    sim.schedule(5, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<Tick>{10, 15}));
}

TEST(Simulator, RunReturnsEventCount) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule(i, [] {});
  EXPECT_EQ(sim.run(), 5u);
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] { ++fired; });
  sim.schedule(20, [&] { ++fired; });
  sim.schedule(30, [&] { ++fired; });
  sim.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20u);
  sim.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, RunUntilAdvancesNowOnEmptyQueue) {
  Simulator sim;
  sim.run_until(99);
  EXPECT_EQ(sim.now(), 99u);
}

TEST(Simulator, StepExecutesOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1, [&] { ++fired; });
  sim.schedule(2, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, RunWhilePendingStopsOnPredicate) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) sim.schedule(i, [&] { ++count; });
  const bool fired = sim.run_while_pending([&] { return count == 4; });
  EXPECT_TRUE(fired);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(sim.now(), 4u);
}

TEST(Simulator, RunWhilePendingDrainsIfPredicateNeverFires) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 3; ++i) sim.schedule(i, [&] { ++count; });
  const bool fired = sim.run_while_pending([&] { return false; });
  EXPECT_FALSE(fired);
  EXPECT_EQ(count, 3);
}

TEST(Simulator, ScheduleAtAbsolute) {
  Simulator sim;
  Tick seen = 0;
  sim.schedule_at(100, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 100u);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(10, [&] {
    order.push_back(1);
    sim.schedule(0, [&] { order.push_back(2); });
  });
  sim.schedule(10, [&] { order.push_back(3); });
  sim.run();
  // The zero-delay event was scheduled after event 3 at the same tick.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
  EXPECT_EQ(sim.now(), 10u);
}

}  // namespace
}  // namespace camps::sim
