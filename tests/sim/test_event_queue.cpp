#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

namespace camps::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.schedule(100, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueue, InterleavedTiesStillFifoPerTime) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(5, [&] { order.push_back(50); });
  q.schedule(1, [&] { order.push_back(10); });
  q.schedule(5, [&] { order.push_back(51); });
  q.schedule(1, [&] { order.push_back(11); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{10, 11, 50, 51}));
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.schedule(42, [] {});
  q.schedule(7, [] {});
  EXPECT_EQ(q.next_time(), 7u);
}

TEST(EventQueue, PopReturnsTime) {
  EventQueue q;
  q.schedule(9, [] {});
  auto [when, fn] = q.pop();
  EXPECT_EQ(when, 9u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ScheduledCountMonotone) {
  EventQueue q;
  q.schedule(1, [] {});
  q.schedule(2, [] {});
  q.pop();
  EXPECT_EQ(q.scheduled_count(), 2u);
}

TEST(EventQueue, ClearDropsEvents) {
  EventQueue q;
  q.schedule(1, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesStayFifoAcrossSlotRecycling) {
  // Slot reuse via the free list must never leak into ordering: after heavy
  // pop/schedule churn, equal-tick events still run in insertion order.
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 64; ++i) q.schedule(static_cast<Tick>(i), [] {});
  for (int i = 0; i < 64; ++i) q.pop();
  for (int i = 0; i < 16; ++i) {
    q.schedule(500, [&order, i] { order.push_back(i); });
  }
  std::vector<int> expected;
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 16; ++i) expected.push_back(i);
  EXPECT_EQ(order, expected);
}

TEST(Event, SmallCaptureStaysInline) {
  // The simulator's hot captures (a few pointers + scalars) must not touch
  // the heap. 48 bytes mirrors the vault controller's completion callbacks.
  struct Capture {
    u64* sink;
    u64 a, b, c, d, e;
    void operator()() const { *sink = a + b + c + d + e; }
  };
  u64 sink = 0;
  const u64 before = Event::heap_allocation_count();
  Event e(Capture{&sink, 1, 2, 3, 4, 5});
  EXPECT_TRUE(e.is_inline());
  EXPECT_EQ(Event::heap_allocation_count(), before);
  e();
  EXPECT_EQ(sink, 15u);
}

TEST(Event, DispatchLoopAllocationFree) {
  EventQueue q;
  u64 sink = 0;
  q.schedule(0, [&sink] { sink += 1; });
  const u64 before = Event::heap_allocation_count();
  for (int i = 0; i < 1000; ++i) {
    auto [when, fn] = q.pop();
    fn();
    q.schedule(when + 1, [&sink, when] { sink += when; });
  }
  EXPECT_EQ(Event::heap_allocation_count(), before)
      << "steady-state scheduling with small captures must not allocate";
  q.clear();
}

TEST(Event, OversizedCaptureSpillsToHeapAndStillRuns) {
  struct Big {
    unsigned char pad[Event::kInlineCapacity + 8];
    int* out;
    void operator()() const { *out = 7; }
  };
  int out = 0;
  const u64 before = Event::heap_allocation_count();
  Event e(Big{{}, &out});
  EXPECT_FALSE(e.is_inline());
  EXPECT_EQ(Event::heap_allocation_count(), before + 1);
  Event moved = std::move(e);
  moved();
  EXPECT_EQ(out, 7);
}

TEST(Event, NonTriviallyCopyableCaptureWorksInline) {
  // A capture owning a std::vector is nothrow-movable but not trivially
  // copyable; it must survive the heap's relocations intact.
  auto data = std::make_shared<std::vector<int>>(std::vector<int>{1, 2, 3});
  int sum = 0;
  EventQueue q;
  q.schedule(1, [data, &sum] {
    for (int v : *data) sum += v;
  });
  EXPECT_EQ(data.use_count(), 2);
  q.pop().second();
  EXPECT_EQ(sum, 6);
  EXPECT_EQ(data.use_count(), 1) << "popped event must destroy its capture";
}

TEST(Event, MoveTransfersOwnership) {
  int calls = 0;
  Event a([&calls] { ++calls; });
  Event b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);
}

TEST(EventQueue, LargeRandomLoadStaysSorted) {
  EventQueue q;
  // Insert pseudo-random times; verify nondecreasing pops.
  u64 x = 12345;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    q.schedule(x >> 40, [] {});
  }
  Tick prev = 0;
  while (!q.empty()) {
    auto [when, fn] = q.pop();
    EXPECT_GE(when, prev);
    prev = when;
  }
}

}  // namespace
}  // namespace camps::sim
