#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace camps::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.schedule(100, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueue, InterleavedTiesStillFifoPerTime) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(5, [&] { order.push_back(50); });
  q.schedule(1, [&] { order.push_back(10); });
  q.schedule(5, [&] { order.push_back(51); });
  q.schedule(1, [&] { order.push_back(11); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{10, 11, 50, 51}));
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.schedule(42, [] {});
  q.schedule(7, [] {});
  EXPECT_EQ(q.next_time(), 7u);
}

TEST(EventQueue, PopReturnsTime) {
  EventQueue q;
  q.schedule(9, [] {});
  auto [when, fn] = q.pop();
  EXPECT_EQ(when, 9u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ScheduledCountMonotone) {
  EventQueue q;
  q.schedule(1, [] {});
  q.schedule(2, [] {});
  q.pop();
  EXPECT_EQ(q.scheduled_count(), 2u);
}

TEST(EventQueue, ClearDropsEvents) {
  EventQueue q;
  q.schedule(1, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, LargeRandomLoadStaysSorted) {
  EventQueue q;
  // Insert pseudo-random times; verify nondecreasing pops.
  u64 x = 12345;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    q.schedule(x >> 40, [] {});
  }
  Tick prev = 0;
  while (!q.empty()) {
    auto [when, fn] = q.pop();
    EXPECT_GE(when, prev);
    prev = when;
  }
}

}  // namespace
}  // namespace camps::sim
