#include "sim/clock.hpp"

#include <gtest/gtest.h>

namespace camps::sim {
namespace {

TEST(Clock, TableIFrequenciesAreExact) {
  // 3 GHz CPU: 3 cycles per ns.
  EXPECT_EQ(cpu_clock().to_ticks(3), kTicksPerNs);
  // 800 MHz DRAM: 4 cycles per 5 ns.
  EXPECT_EQ(dram_clock().to_ticks(4), 5 * kTicksPerNs);
}

TEST(Clock, RoundTripCycles) {
  ClockDomain d(30);
  for (u64 c : {0ull, 1ull, 7ull, 1000ull}) {
    EXPECT_EQ(d.to_cycles(d.to_ticks(c)), c);
  }
}

TEST(Clock, ToCyclesTruncates) {
  ClockDomain d(30);
  EXPECT_EQ(d.to_cycles(29), 0u);
  EXPECT_EQ(d.to_cycles(30), 1u);
  EXPECT_EQ(d.to_cycles(59), 1u);
}

TEST(Clock, NextEdgeOnEdgeIsIdentity) {
  ClockDomain d(8);
  EXPECT_EQ(d.next_edge(0), 0u);
  EXPECT_EQ(d.next_edge(16), 16u);
}

TEST(Clock, NextEdgeRoundsUp) {
  ClockDomain d(8);
  EXPECT_EQ(d.next_edge(1), 8u);
  EXPECT_EQ(d.next_edge(7), 8u);
  EXPECT_EQ(d.next_edge(9), 16u);
}

TEST(Clock, EdgeAfterIsStrictlyLater) {
  ClockDomain d(8);
  EXPECT_EQ(d.edge_after(0), 8u);
  EXPECT_EQ(d.edge_after(8), 16u);
  EXPECT_EQ(d.edge_after(15), 16u);
}

TEST(Clock, CpuDramPhaseAlignment) {
  // CPU and DRAM clocks share an edge every LCM(8, 30) = 120 ticks = 5 ns.
  const ClockDomain cpu = cpu_clock();
  const ClockDomain dram = dram_clock();
  u64 shared = 0;
  for (Tick t = 1; t <= 240; ++t) {
    if (cpu.next_edge(t) == t && dram.next_edge(t) == t) {
      ++shared;
      EXPECT_EQ(t % 120, 0u);
    }
  }
  EXPECT_EQ(shared, 2u);  // t = 120, 240
}

// Property sweep over several domains: next_edge is the smallest multiple
// of the period that is >= t.
class ClockEdgeSweep : public ::testing::TestWithParam<u64> {};

TEST_P(ClockEdgeSweep, NextEdgeMinimal) {
  const ClockDomain d(GetParam());
  for (Tick t = 0; t < 5 * GetParam(); ++t) {
    const Tick e = d.next_edge(t);
    EXPECT_GE(e, t);
    EXPECT_EQ(e % GetParam(), 0u);
    EXPECT_LT(e - t, GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Periods, ClockEdgeSweep,
                         ::testing::Values(1, 2, 3, 8, 24, 30));

}  // namespace
}  // namespace camps::sim
