#include "energy/energy_model.hpp"

#include <sstream>
#include <string>

namespace camps::energy {

const char* to_string(EnergyEvent event) {
  switch (event) {
    case EnergyEvent::kActivate: return "activate";
    case EnergyEvent::kPrecharge: return "precharge";
    case EnergyEvent::kReadLine: return "read_line";
    case EnergyEvent::kWriteLine: return "write_line";
    case EnergyEvent::kRowFetch: return "row_fetch";
    case EnergyEvent::kRowWriteback: return "row_writeback";
    case EnergyEvent::kBufferAccess: return "buffer_access";
    case EnergyEvent::kRefresh: return "refresh";
    case EnergyEvent::kLinkFlit: return "link_flit";
    case EnergyEvent::kCount_: break;
  }
  return "?";
}

double EnergyModel::dynamic_pj() const {
  double total = 0.0;
  for (size_t i = 0; i < kEnergyEventCount; ++i) {
    total += static_cast<double>(counts_[i]) * p_.pj_per_event[i];
  }
  return total;
}

std::string EnergyModel::breakdown() const {
  std::ostringstream out;
  for (size_t i = 0; i < kEnergyEventCount; ++i) {
    const auto event = static_cast<EnergyEvent>(i);
    out << to_string(event) << ": " << counts_[i] << " events, "
        << static_cast<double>(counts_[i]) * p_.pj_per_event[i] << " pJ\n";
  }
  return out.str();
}

}  // namespace camps::energy
