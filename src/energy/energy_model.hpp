// Event-count energy accounting for the HMC device.
//
// Figure 9 reports *normalized* energy, so we need relative magnitudes, not
// silicon-calibrated absolutes. Per-event energies below follow the usual
// DRAM ballpark (activation/precharge dominate; a full 1 KB row move over
// the TSVs costs roughly what 16 line transfers cost, minus the per-command
// overheads; SerDes links burn energy per flit). The paper's energy story —
// BASE loses by moving whole rows on every miss and replacing them often —
// emerges from exactly these ratios.
#pragma once

#include <array>
#include <string>

#include "common/types.hpp"

namespace camps::energy {

enum class EnergyEvent : u8 {
  kActivate = 0,
  kPrecharge,
  kReadLine,
  kWriteLine,
  kRowFetch,      ///< 1 KB row copied bank -> prefetch buffer over TSVs.
  kRowWriteback,  ///< Dirty row copied prefetch buffer -> bank.
  kBufferAccess,  ///< Prefetch-buffer hit served to the host.
  kRefresh,       ///< All-bank refresh of one vault.
  kLinkFlit,      ///< One 16 B flit through a serial link (both SerDes).
  kCount_,
};

constexpr size_t kEnergyEventCount = static_cast<size_t>(EnergyEvent::kCount_);

const char* to_string(EnergyEvent event);

/// Per-event energies in picojoules, plus static power.
struct EnergyParams {
  std::array<double, kEnergyEventCount> pj_per_event{
      15.0,   // activate
      10.0,   // precharge
      13.0,   // read line (64 B column access + internal transfer)
      13.0,   // write line
      110.0,  // row fetch (1 KB over wide TSV bus)
      110.0,  // row writeback
      2.0,    // buffer access (SRAM read in logic layer)
      350.0,  // refresh (all banks of one vault)
      6.0,    // link flit (16 B across SerDes pair)
  };
  /// Background/static power of the whole cube, in watts.
  double background_watts = 0.5;
};

/// Accumulates event counts; converts to energy on demand.
class EnergyModel {
 public:
  explicit EnergyModel(const EnergyParams& params = {}) : p_(params) {}

  void add(EnergyEvent event, u64 n = 1) {
    counts_[static_cast<size_t>(event)] += n;
  }
  u64 count(EnergyEvent event) const {
    return counts_[static_cast<size_t>(event)];
  }

  /// Dynamic energy from all recorded events, in picojoules.
  double dynamic_pj() const;

  /// Background energy for a run of `ns` nanoseconds, in picojoules.
  double background_pj(double ns) const { return p_.background_watts * ns * 1e3; }

  /// Total = dynamic + background for the given wall-clock duration.
  double total_pj(double ns) const { return dynamic_pj() + background_pj(ns); }

  /// Multi-line human-readable breakdown (for stats dumps).
  std::string breakdown() const;

  void reset() { counts_.fill(0); }

 private:
  EnergyParams p_;
  std::array<u64, kEnergyEventCount> counts_{};
};

}  // namespace camps::energy
