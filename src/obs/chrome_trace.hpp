// Chrome trace-event JSON export.
//
// Renders recorded spans in the Trace Event Format understood by
// chrome://tracing and https://ui.perfetto.dev: each simulation run becomes
// one "process" (pid = run index, named after the run), each span track one
// "thread", spans become complete ("ph":"X") events and instants become
// "ph":"i". Timestamps are microseconds of *simulated* time (ticks / 24000),
// so a trace is byte-identical for any --jobs=N.
#pragma once

#include <string>
#include <vector>

#include "obs/trace_recorder.hpp"

namespace camps::obs {

/// One run's worth of spans, already tick-ordered (see
/// TraceRecorder::sorted_spans), plus its display name.
struct TraceRun {
  std::string name;                 ///< e.g. "MX1/CAMPS-MOD".
  const std::vector<Span>* spans = nullptr;
};

/// Renders `runs` as one Chrome trace JSON document.
std::string chrome_trace_json(const std::vector<TraceRun>& runs);

/// chrome_trace_json + write to `path` (throws std::runtime_error on I/O
/// failure).
void write_chrome_trace(const std::string& path,
                        const std::vector<TraceRun>& runs);

}  // namespace camps::obs
