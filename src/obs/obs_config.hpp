// Observability configuration carried by SystemConfig / ExperimentConfig.
#pragma once

#include "common/types.hpp"

namespace camps::obs {

struct ObsConfig {
  /// Arm the per-System span recorder (--trace-out).
  bool trace_enabled = false;
  /// Ring capacity in spans (per System). 16 Ki spans ≈ 0.5 MB — bounded
  /// even across a 60-run figure sweep with every run traced.
  u32 trace_capacity = 16 * 1024;
  /// Epoch sampling interval in ticks; 0 disables the sampler. 2 M ticks ≈
  /// 83 µs of simulated time ≈ a few hundred samples on a bench-scale run.
  Tick epoch_ticks = 0;
};

}  // namespace camps::obs
