#include "obs/epoch_sampler.hpp"

#include <sstream>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/json.hpp"

namespace camps::obs {

EpochSampler::EpochSampler(sim::Simulator& sim, Tick epoch_ticks,
                           SampleFn sample, KeepGoingFn keep_going)
    : sim_(sim),
      epoch_ticks_(epoch_ticks),
      sample_(std::move(sample)),
      keep_going_(std::move(keep_going)) {
  CAMPS_ASSERT(epoch_ticks_ > 0);
}

void EpochSampler::start() {
  sim_.schedule(epoch_ticks_, [this] { fire(); });
}

void EpochSampler::fire() {
  if (keep_going_ && !keep_going_()) return;
  EpochSample s = sample_();
  s.tick = sim_.now();
  samples_.push_back(s);
  sim_.schedule(epoch_ticks_, [this] { fire(); });
}

std::string EpochSampler::series_csv(const std::vector<EpochSample>& samples) {
  std::ostringstream out;
  out << "tick,row_hits,row_empties,row_conflicts,row_conflict_rate,"
         "prefetches_issued,prefetch_accuracy,buffer_hits,buffer_misses,"
         "buffer_hit_rate,buffer_occupancy,link_down_busy_ticks,"
         "link_up_busy_ticks,demand_reads,demand_writes\n";
  for (const EpochSample& s : samples) {
    out << s.tick << ',' << s.row_hits << ',' << s.row_empties << ','
        << s.row_conflicts << ',' << json_double(s.row_conflict_rate) << ','
        << s.prefetches_issued << ',' << json_double(s.prefetch_accuracy)
        << ',' << s.buffer_hits << ',' << s.buffer_misses << ','
        << json_double(s.buffer_hit_rate) << ',' << s.buffer_occupancy << ','
        << s.link_down_busy_ticks << ',' << s.link_up_busy_ticks << ','
        << s.demand_reads << ',' << s.demand_writes << '\n';
  }
  return out.str();
}

std::string EpochSampler::series_json(const std::vector<EpochSample>& samples,
                                      Tick epoch_ticks, int indent) {
  JsonWriter w(indent);
  w.begin_object();
  w.field("epoch_ticks", epoch_ticks);
  w.key("samples");
  w.begin_array();
  for (const EpochSample& s : samples) {
    w.begin_object();
    w.field("tick", s.tick);
    w.field("row_hits", s.row_hits);
    w.field("row_empties", s.row_empties);
    w.field("row_conflicts", s.row_conflicts);
    w.field("row_conflict_rate", s.row_conflict_rate);
    w.field("prefetches_issued", s.prefetches_issued);
    w.field("prefetch_accuracy", s.prefetch_accuracy);
    w.field("buffer_hits", s.buffer_hits);
    w.field("buffer_misses", s.buffer_misses);
    w.field("buffer_hit_rate", s.buffer_hit_rate);
    w.field("buffer_occupancy", s.buffer_occupancy);
    w.field("link_down_busy_ticks", s.link_down_busy_ticks);
    w.field("link_up_busy_ticks", s.link_up_busy_ticks);
    w.field("demand_reads", s.demand_reads);
    w.field("demand_writes", s.demand_writes);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void EpochSampler::write_csv(const std::string& path) const {
  write_text_file(path, to_csv());
}

void EpochSampler::write_json(const std::string& path) const {
  write_text_file(path, to_json(2));
}

}  // namespace camps::obs
