// Request-lifecycle tracing: a low-overhead, deterministic span recorder.
//
// Every instrumented component (host controller, serial links, crossbar,
// vault controllers, DRAM banks, prefetch buffers) records Spans — (stage,
// track, request id, begin tick, end tick) — into one per-System recorder.
// The recorder is a fixed-capacity ring: when full, the oldest spans are
// overwritten, so a run's memory cost is bounded no matter how long it
// executes and the retained window covers the *end* of the run (the
// measured region benches care about).
//
// Cost model: disabled recorders (the default) cost one predictable branch
// per instrumentation point — components hold a TraceRecorder* that is
// nullptr or disabled, and record() returns immediately. Nothing about
// recording mutates simulation state, so enabling tracing can never change
// simulated results, and a single run's spans are identical no matter how
// many sweep worker threads are in flight (each System owns its recorder).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace camps::obs {

/// Lifecycle stages, one taxonomy across the whole memory system. The six
/// instrumented components each own at least one stage (see
/// docs/observability.md for the full map).
enum class Stage : u8 {
  kHostRead,    ///< host_controller: read submission -> response delivery.
  kHostQueue,   ///< host_controller: wait for the downstream link to free.
  kLinkDown,    ///< serial_link: downstream serialization + flight.
  kLinkUp,      ///< serial_link: upstream serialization + flight.
  kXbarDown,    ///< crossbar: link port -> vault port traversal.
  kXbarUp,      ///< crossbar: vault port -> link port traversal.
  kVaultQueue,  ///< vault_controller: enqueue -> first column issue.
  kBufferHit,   ///< vault_controller/prefetch_buffer: hit served from SRAM.
  kBankAct,     ///< dram/bank: ACT (row open) window.
  kBankPre,     ///< dram/bank: PRE (row close) window.
  kBankService, ///< dram/bank: column command issue -> last data beat.
  kRowFetch,    ///< dram/bank: whole-row copy into the prefetch buffer.
  kPfInsert,    ///< prefetch_buffer: row landed (instant).
  kPfEvict,     ///< prefetch_buffer: row displaced (instant).
  kCount
};

const char* to_string(Stage stage);

/// One recorded interval. `track` is a per-stage lane id (core, link, vault,
/// or vault*banks+bank) used as the thread id in trace viewers; `id` is the
/// MemRequest id, or 0 for commands not tied to a single request.
struct Span {
  Tick begin = 0;
  Tick end = 0;
  u64 id = 0;
  u32 track = 0;
  Stage stage = Stage::kHostRead;

  friend bool operator==(const Span&, const Span&) = default;
};

class TraceRecorder {
 public:
  TraceRecorder() = default;

  /// Arms the recorder with a ring of `capacity` spans. Capacity 0 disables.
  void enable(size_t capacity);

  bool enabled() const { return enabled_; }

  /// Records one span. No-op (one branch) when disabled.
  void record(Stage stage, u32 track, u64 id, Tick begin, Tick end) {
    if (!enabled_) return;
    Span& s = ring_[next_];
    s.begin = begin;
    s.end = end;
    s.id = id;
    s.track = track;
    s.stage = stage;
    next_ = next_ + 1 == ring_.size() ? 0 : next_ + 1;
    ++recorded_;
  }

  /// Spans ever recorded (including ones since overwritten).
  u64 recorded() const { return recorded_; }
  /// Spans lost to ring wrap-around.
  u64 dropped() const {
    return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
  }
  /// Spans currently retained.
  size_t size() const {
    return recorded_ < ring_.size() ? static_cast<size_t>(recorded_)
                                    : ring_.size();
  }

  /// Retained spans in deterministic tick order (begin, end, stage, track,
  /// id) — the order every exporter emits.
  std::vector<Span> sorted_spans() const;

  void clear();

 private:
  std::vector<Span> ring_;
  size_t next_ = 0;
  u64 recorded_ = 0;
  bool enabled_ = false;
};

}  // namespace camps::obs
