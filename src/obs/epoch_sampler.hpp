// Epoch time-series sampler.
//
// Snapshots a fixed set of whole-device counters every N ticks of simulated
// time, producing the row-conflict / buffer-occupancy / link-utilization
// time series the paper's per-stage argument is about (conflict-caused bank
// time turning into buffer hits over the run, not just in the end-of-run
// totals). Samples are pure reads of simulation state — the sampler's
// events never mutate anything, so enabling it cannot change simulated
// results — and sampling stops rescheduling as soon as the supplied
// keep-going predicate turns false, so it never keeps the event queue alive
// past the measurement window.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace camps::obs {

/// One epoch snapshot. Counters are cumulative since the last stats reset
/// (the measurement-window open); rates are over the same span. Consumers
/// difference adjacent rows for per-epoch behaviour.
struct EpochSample {
  Tick tick = 0;
  u64 row_hits = 0;
  u64 row_empties = 0;
  u64 row_conflicts = 0;
  double row_conflict_rate = 0.0;
  u64 prefetches_issued = 0;
  double prefetch_accuracy = 0.0;
  u64 buffer_hits = 0;
  u64 buffer_misses = 0;
  double buffer_hit_rate = 0.0;
  u64 buffer_occupancy = 0;  ///< Rows resident across all vault buffers.
  Tick link_down_busy_ticks = 0;
  Tick link_up_busy_ticks = 0;
  u64 demand_reads = 0;
  u64 demand_writes = 0;
};

class EpochSampler {
 public:
  using SampleFn = std::function<EpochSample()>;
  using KeepGoingFn = std::function<bool()>;

  /// Samples every `epoch_ticks` while `keep_going()` holds. `sample()`
  /// must fill every field except `tick` (stamped by the sampler).
  EpochSampler(sim::Simulator& sim, Tick epoch_ticks, SampleFn sample,
               KeepGoingFn keep_going);

  /// Schedules the first sample one epoch from now. Call once.
  void start();

  const std::vector<EpochSample>& samples() const { return samples_; }

  /// CSV rendering, one fixed header row plus one row per epoch.
  std::string to_csv() const { return series_csv(samples_); }
  /// JSON rendering: {"epoch_ticks": N, "samples": [{...}, ...]}.
  std::string to_json(int indent = 0) const {
    return series_json(samples_, epoch_ticks_, indent);
  }

  // Static variants for callers holding a sample vector without a sampler
  // (RunResults carries the series across the sweep cache).
  static std::string series_csv(const std::vector<EpochSample>& samples);
  static std::string series_json(const std::vector<EpochSample>& samples,
                                 Tick epoch_ticks, int indent = 0);

  void write_csv(const std::string& path) const;
  void write_json(const std::string& path) const;

 private:
  void fire();

  sim::Simulator& sim_;
  Tick epoch_ticks_;
  SampleFn sample_;
  KeepGoingFn keep_going_;
  std::vector<EpochSample> samples_;
};

}  // namespace camps::obs
