#include "obs/chrome_trace.hpp"

#include <map>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace camps::obs {
namespace {

/// Simulated microseconds for a tick count (24 ticks per ns).
double ticks_to_us(Tick t) { return static_cast<double>(t) / 24000.0; }

/// Maps a span to a viewer thread id and a human lane name. Tracks from
/// different components overlap numerically (core 3, vault 3, link 3), so
/// each component family gets its own tid block.
std::pair<u64, std::string> lane_of(const Span& s) {
  switch (s.stage) {
    case Stage::kHostRead:
    case Stage::kHostQueue:
      return {s.track, "core" + std::to_string(s.track)};
    case Stage::kLinkDown:
    case Stage::kLinkUp:
      return {1000 + s.track, "link" + std::to_string(s.track)};
    case Stage::kXbarDown:
    case Stage::kXbarUp:
      return {2000 + s.track, "xbar_port" + std::to_string(s.track)};
    case Stage::kVaultQueue:
    case Stage::kBufferHit:
    case Stage::kPfInsert:
    case Stage::kPfEvict:
      return {3000 + s.track, "vault" + std::to_string(s.track)};
    case Stage::kBankAct:
    case Stage::kBankPre:
    case Stage::kBankService:
    case Stage::kRowFetch:
    case Stage::kCount:
      break;
  }
  return {4000 + s.track, "bank" + std::to_string(s.track)};
}

}  // namespace

std::string chrome_trace_json(const std::vector<TraceRun>& runs) {
  JsonWriter w;
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();
  for (size_t pid = 0; pid < runs.size(); ++pid) {
    const TraceRun& run = runs[pid];
    w.begin_object();
    w.field("name", "process_name");
    w.field("ph", "M");
    w.field("pid", static_cast<u64>(pid));
    w.key("args");
    w.begin_object();
    w.field("name", run.name);
    w.end_object();
    w.end_object();
    if (run.spans == nullptr) continue;

    // Lane (thread) names, in deterministic tid order.
    std::map<u64, std::string> lanes;
    for (const Span& s : *run.spans) lanes.insert(lane_of(s));
    for (const auto& [tid, name] : lanes) {
      w.begin_object();
      w.field("name", "thread_name");
      w.field("ph", "M");
      w.field("pid", static_cast<u64>(pid));
      w.field("tid", tid);
      w.key("args");
      w.begin_object();
      w.field("name", name);
      w.end_object();
      w.end_object();
    }

    for (const Span& s : *run.spans) {
      const u64 tid = lane_of(s).first;
      w.begin_object();
      w.field("name", to_string(s.stage));
      w.field("cat", "camps");
      if (s.end > s.begin) {
        w.field("ph", "X");
        w.field("ts", ticks_to_us(s.begin));
        w.field("dur", ticks_to_us(s.end - s.begin));
      } else {
        w.field("ph", "i");
        w.field("ts", ticks_to_us(s.begin));
        w.field("s", "t");
      }
      w.field("pid", static_cast<u64>(pid));
      w.field("tid", tid);
      if (s.id != 0) {
        w.key("args");
        w.begin_object();
        w.field("id", s.id);
        w.end_object();
      }
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void write_chrome_trace(const std::string& path,
                        const std::vector<TraceRun>& runs) {
  write_text_file(path, chrome_trace_json(runs));
}

}  // namespace camps::obs
