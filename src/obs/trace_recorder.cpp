#include "obs/trace_recorder.hpp"

#include <algorithm>
#include <tuple>
#include <vector>

namespace camps::obs {

const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::kHostRead: return "host_read";
    case Stage::kHostQueue: return "host_queue";
    case Stage::kLinkDown: return "link_down";
    case Stage::kLinkUp: return "link_up";
    case Stage::kXbarDown: return "xbar_down";
    case Stage::kXbarUp: return "xbar_up";
    case Stage::kVaultQueue: return "vault_queue";
    case Stage::kBufferHit: return "buffer_hit";
    case Stage::kBankAct: return "bank_act";
    case Stage::kBankPre: return "bank_pre";
    case Stage::kBankService: return "bank_service";
    case Stage::kRowFetch: return "row_fetch";
    case Stage::kPfInsert: return "pf_insert";
    case Stage::kPfEvict: return "pf_evict";
    case Stage::kCount: break;
  }
  return "?";
}

void TraceRecorder::enable(size_t capacity) {
  ring_.assign(capacity, Span{});
  next_ = 0;
  recorded_ = 0;
  enabled_ = capacity > 0;
}

std::vector<Span> TraceRecorder::sorted_spans() const {
  std::vector<Span> out;
  out.reserve(size());
  if (recorded_ < ring_.size()) {
    out.assign(ring_.begin(), ring_.begin() + static_cast<long>(recorded_));
  } else {
    // Ring wrapped: oldest retained span sits at next_.
    out.assign(ring_.begin() + static_cast<long>(next_), ring_.end());
    out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<long>(next_));
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return std::tie(a.begin, a.end, a.stage, a.track, a.id) <
           std::tie(b.begin, b.end, b.stage, b.track, b.id);
  });
  return out;
}

void TraceRecorder::clear() {
  std::fill(ring_.begin(), ring_.end(), Span{});
  next_ = 0;
  recorded_ = 0;
}

}  // namespace camps::obs
