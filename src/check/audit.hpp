// Model-invariant auditing (the runtime half of the correctness tooling).
//
// Every stateful model component implements Auditable: audit() re-derives
// the component's structural invariants from scratch — heap shape, LRU
// order, recency permutations, FSM bookkeeping — and reports anything that
// does not hold to an AuditReporter. Audits never mutate model state, so
// they can run at any event boundary; the driver (System, camps_sim
// --audit-every=N, bench --audit) runs them periodically and routes
// violations through the CAMPS_ASSERT fail path with a full state dump.
//
// Reporters collect instead of aborting so tests can corrupt a component on
// purpose and assert the audit *reports* the damage (see
// tests/check/test_audit.cpp and the TestCorruptor friend hook below).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace camps::check {

/// Test-only back door: components befriend this struct so corruption-
/// injection tests can damage private state and prove the audit catches it.
/// Defined only inside the test binaries; production code never touches it.
struct TestCorruptor;

/// One invariant that failed to hold.
struct Violation {
  std::string component;  ///< Dotted path, e.g. "vault3.bank7".
  std::string invariant;  ///< Short rule name, e.g. "lru-duplicate".
  std::string detail;     ///< Human-readable specifics.
  std::string state;      ///< Optional state dump of the component.
  Tick tick = 0;          ///< Simulation time of the audit.
};

/// Collects violations across one audit pass. Component names nest through
/// AuditScope so a vault's bank reports as "vault3.bank7" without either
/// component knowing the full path.
class AuditReporter {
 public:
  /// Simulation time stamped onto subsequent violations.
  void set_tick(Tick tick) { tick_ = tick; }
  Tick tick() const { return tick_; }

  /// Records a violation against the current component scope.
  void violation(std::string invariant, std::string detail,
                 std::string state = {});

  /// Convenience: counts a check and records a violation when `ok` is
  /// false. Returns `ok` so callers can chain dependent checks.
  bool expect(bool ok, const char* invariant, std::string detail,
              std::string state = {});

  const std::vector<Violation>& violations() const { return violations_; }
  bool clean() const { return violations_.empty(); }
  /// Total expect() calls — lets tests assert an audit actually ran.
  u64 checks_run() const { return checks_; }

  /// Formatted multi-line report of every violation.
  std::string report() const;

  std::string component() const;

 private:
  friend class AuditScope;
  std::vector<std::string> scope_;
  std::vector<Violation> violations_;
  Tick tick_ = 0;
  u64 checks_ = 0;
};

/// RAII component-name segment: pushes `name` onto the reporter's dotted
/// path for the lifetime of the scope.
class AuditScope {
 public:
  AuditScope(AuditReporter& rep, std::string name) : rep_(rep) {
    rep_.scope_.push_back(std::move(name));
  }
  ~AuditScope() { rep_.scope_.pop_back(); }
  AuditScope(const AuditScope&) = delete;
  AuditScope& operator=(const AuditScope&) = delete;

 private:
  AuditReporter& rep_;
};

/// Implemented by every auditable model component. audit() must be
/// side-effect free on the model: it only reads state and reports.
///
/// Deliberately a concept, not a virtual base: every owner audits its
/// concrete members directly (a vault audits *its* banks, the system audits
/// *its* host controller), so nothing ever dispatches through an
/// `Auditable*`. A virtual base would plant a vtable pointer in the hottest
/// model objects — banks sit in per-vault arrays whose stride the prefetch
/// hot path walks — for dispatch that never happens. Components declare
/// `void audit(AuditReporter&) const` and assert conformance with
/// `static_assert(check::Auditable<T>)` next to the class. The one place
/// that needs dynamic dispatch — prefetch schemes held by unique_ptr — puts
/// a virtual audit() on PrefetchScheme itself, which already owns a vtable.
template <typename T>
concept Auditable = requires(const T& component, AuditReporter& rep) {
  { component.audit(rep) };
};

/// Terminal path for a failed audit: prints the full report to stderr and
/// aborts through the CAMPS_ASSERT fail machinery. Call only when
/// !reporter.clean().
[[noreturn]] void audit_fail(const AuditReporter& reporter);

}  // namespace camps::check
