#include "check/audit.hpp"

#include <cstdio>
#include <string>

#include "common/assert.hpp"

namespace camps::check {

std::string AuditReporter::component() const {
  std::string path;
  for (const auto& segment : scope_) {
    if (!path.empty()) path += '.';
    path += segment;
  }
  return path;
}

void AuditReporter::violation(std::string invariant, std::string detail,
                              std::string state) {
  violations_.push_back(Violation{component(), std::move(invariant),
                                  std::move(detail), std::move(state),
                                  tick_});
}

bool AuditReporter::expect(bool ok, const char* invariant, std::string detail,
                           std::string state) {
  ++checks_;
  if (!ok) violation(invariant, std::move(detail), std::move(state));
  return ok;
}

std::string AuditReporter::report() const {
  std::string out = "audit: " + std::to_string(violations_.size()) +
                    " invariant violation(s), " + std::to_string(checks_) +
                    " checks run\n";
  for (const auto& v : violations_) {
    out += "  [" + (v.component.empty() ? std::string("<root>") : v.component) +
           "] " + v.invariant + " @ tick " + std::to_string(v.tick) + ": " +
           v.detail + "\n";
    if (!v.state.empty()) {
      // Indent the state dump under its violation line.
      out += "    state: ";
      for (const char c : v.state) {
        out += c;
        if (c == '\n') out += "           ";
      }
      if (out.back() != '\n') out += '\n';
    }
  }
  return out;
}

void audit_fail(const AuditReporter& reporter) {
  const std::string report = reporter.report();
  std::fputs(report.c_str(), stderr);
  detail::assert_fail("model audit found invariant violations", "audit",
                      static_cast<int>(reporter.violations().size()),
                      reporter.violations().empty()
                          ? ""
                          : reporter.violations().front().invariant.c_str());
}

}  // namespace camps::check
