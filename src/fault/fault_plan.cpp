#include "fault/fault_plan.hpp"

#include "common/assert.hpp"
#include "sim/clock.hpp"

namespace camps::fault {
namespace {

/// SplitMix64 finalizer: a full-avalanche mix of the decision coordinate.
u64 mix64(u64 x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from the top 53 bits of the hash.
double to_unit(u64 h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultPlan::FaultPlan(const FaultConfig& config, StatRegistry* stats)
    : cfg_(config) {
  CAMPS_ASSERT_MSG(cfg_.link_crc_rate >= 0.0 && cfg_.link_crc_rate <= 1.0,
                   "link_crc_rate outside [0,1]");
  CAMPS_ASSERT_MSG(cfg_.link_drop_rate >= 0.0 && cfg_.link_drop_rate <= 1.0,
                   "link_drop_rate outside [0,1]");
  CAMPS_ASSERT_MSG(cfg_.xbar_drop_rate >= 0.0 && cfg_.xbar_drop_rate <= 1.0,
                   "xbar_drop_rate outside [0,1]");
  CAMPS_ASSERT_MSG(
      cfg_.vault_stall_rate >= 0.0 && cfg_.vault_stall_rate <= 1.0,
      "vault_stall_rate outside [0,1]");
  if (stats != nullptr) {
    c_crc_errors_ = &stats->counter("fault.crc_errors");
    c_replays_ = &stats->counter("fault.replays");
    c_link_drops_ = &stats->counter("fault.link_drops");
    c_xbar_drops_ = &stats->counter("fault.xbar_drops");
    c_vault_stalls_ = &stats->counter("fault.vault_stalls");
    c_host_retries_ = &stats->counter("fault.host_retries");
    c_host_poisoned_ = &stats->counter("fault.host_poisoned");
    c_late_responses_ = &stats->counter("fault.late_responses");
    c_degrade_flushes_ = &stats->counter("fault.degrade_flushes");
    c_token_stall_ticks_ = &stats->counter("fault.token_stall_ticks");
    h_recovery_ = &stats->histogram("fault.recovery_cycles",
                                    /*bucket_width=*/64, /*num_buckets=*/128);
  }
}

double FaultPlan::rate_for(Site site) const {
  switch (site) {
    case Site::kLinkDownCrc:
    case Site::kLinkUpCrc:
      return cfg_.link_crc_rate;
    case Site::kLinkDownDrop:
    case Site::kLinkUpDrop:
      return cfg_.link_drop_rate;
    case Site::kXbarDrop:
      return cfg_.xbar_drop_rate;
    case Site::kVaultStall:
      return cfg_.vault_stall_rate;
  }
  return 0.0;
}

bool FaultPlan::roll(Site site, u32 unit) {
  const auto key = std::make_pair(static_cast<u8>(site), unit);
  const u64 seq = sequences_[key]++;
  for (const TargetedFault& t : cfg_.targeted) {
    if (t.site == site && t.unit == unit && t.sequence == seq) return true;
  }
  const double rate = rate_for(site);
  if (rate <= 0.0) return false;
  // Coordinate hash: seed, site, unit, and sequence each shifted into
  // disjoint-ish lanes, then avalanche-mixed. Pure function — no state
  // beyond the per-site counter advanced above.
  const u64 coord = cfg_.seed ^ (u64{static_cast<u8>(site)} << 56) ^
                    (u64{unit} << 40) ^ seq;
  return to_unit(mix64(coord)) < rate;
}

u64 FaultPlan::next_sequence(Site site, u32 unit) const {
  const auto it = sequences_.find({static_cast<u8>(site), unit});
  return it == sequences_.end() ? 0 : it->second;
}

void FaultPlan::count_replay(Tick recovery_ticks) {
  inc(c_replays_);
  if (h_recovery_ != nullptr) {
    h_recovery_->sample(recovery_ticks / sim::kCpuTicksPerCycle);
  }
}

void FaultPlan::count_host_poison(Tick recovery_ticks) {
  inc(c_host_poisoned_);
  if (h_recovery_ != nullptr) {
    h_recovery_->sample(recovery_ticks / sim::kCpuTicksPerCycle);
  }
}

void FaultPlan::count_host_recovery(Tick recovery_ticks) {
  if (h_recovery_ != nullptr) {
    h_recovery_->sample(recovery_ticks / sim::kCpuTicksPerCycle);
  }
}

u64 FaultPlan::injected() const {
  auto val = [](const Counter* c) { return c == nullptr ? 0 : c->value(); };
  return val(c_crc_errors_) + val(c_link_drops_) + val(c_xbar_drops_) +
         val(c_vault_stalls_);
}

}  // namespace camps::fault
