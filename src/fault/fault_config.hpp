// Fault-injection configuration.
//
// The simulated HMC is perfectly reliable by default; a FaultConfig turns
// on a deterministic, seeded fault process (see fault_plan.hpp) that can
// corrupt serial-link transfers (CRC-fail -> retry-buffer replay), drop
// transfers outright (exceeds the link's replay capability), drop crossbar
// grants, and stall vault responses. Rates are per-packet probabilities;
// `targeted` faults hit an exact (site, unit, sequence) coordinate for
// reproducing a specific scenario in tests.
//
// Everything here is plain data so SystemConfig can embed it and the CLI /
// config file can populate it; the default-constructed config injects
// nothing and leaves every model path bit-identical to the fault-free
// simulator.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "sim/clock.hpp"

namespace camps::fault {

/// Where a fault decision is evaluated.
enum class Site : u8 {
  kLinkDownCrc = 0,   ///< Downstream serial-link CRC failure (replayed).
  kLinkUpCrc = 1,     ///< Upstream serial-link CRC failure (replayed).
  kLinkDownDrop = 2,  ///< Downstream transfer lost beyond replay.
  kLinkUpDrop = 3,    ///< Upstream transfer lost beyond replay.
  kXbarDrop = 4,      ///< Crossbar grant dropped (packet never forwarded).
  kVaultStall = 5,    ///< Vault response delayed by `vault_stall_ticks`.
};

/// An explicit one-shot fault: the `sequence`-th packet (0-based) through
/// `unit` (link index or vault id) at `site` faults regardless of rates.
struct TargetedFault {
  Site site = Site::kLinkDownCrc;
  u32 unit = 0;
  u64 sequence = 0;
};

struct FaultConfig {
  // --- stochastic rates (per packet through the site, in [0,1]) ---------
  double link_crc_rate = 0.0;     ///< Both directions of every link.
  double link_drop_rate = 0.0;    ///< Unrecoverable link losses.
  double xbar_drop_rate = 0.0;    ///< Both crossbars.
  double vault_stall_rate = 0.0;  ///< Per read response leaving a vault.

  // --- recovery model ---------------------------------------------------
  /// Extra delay a stalled vault response suffers (default 200 ns).
  Tick vault_stall_ticks = 200 * sim::kTicksPerNs;
  /// Retry-buffer replay overhead beyond the re-serialization itself:
  /// models CRC detection at the far end plus the retry request coming
  /// back (default 8 ns).
  Tick link_retry_overhead_ticks = 8 * sim::kTicksPerNs;
  /// Host controller: re-issue a read whose response has not arrived after
  /// this long (default 8 us — far beyond any healthy round trip).
  Tick host_timeout_ticks = 8000 * sim::kTicksPerNs;
  /// Additional timeout per retry attempt (linear backoff, default 2 us).
  Tick host_backoff_ticks = 2000 * sim::kTicksPerNs;
  /// Re-issues before the host poisons the request (completes it with
  /// MemRequest::poisoned set instead of retrying forever).
  u32 host_retry_budget = 3;
  /// Faults observed in one vault before it degrades: the vault quiesces
  /// its prefetch state (buffer + scheme tables flushed). 0 disables.
  u32 vault_degrade_threshold = 0;
  /// Token-based link flow control: flit credits per link direction.
  /// 0 disables (unlimited credits — the fault-free model's behaviour).
  u32 link_tokens = 0;

  /// Seed of the fault process. Independent from the workload seed so the
  /// same traffic can be replayed under different fault patterns.
  u64 seed = 1;

  std::vector<TargetedFault> targeted;

  /// True when any fault machinery must be active. Everything downstream
  /// (timeout events, token accounting, plan lookups) is gated on this so
  /// a disabled config is bit-identical to a build without the subsystem.
  bool enabled() const {
    return link_crc_rate > 0.0 || link_drop_rate > 0.0 ||
           xbar_drop_rate > 0.0 || vault_stall_rate > 0.0 ||
           link_tokens > 0 || !targeted.empty();
  }
};

}  // namespace camps::fault
