// Deterministic fault plan: decides, packet by packet, where faults strike.
//
// Each (site, unit) pair owns a monotonically increasing packet sequence
// counter; a fault decision is a pure hash of (seed, site, unit, sequence)
// compared against the configured rate. No shared RNG stream exists, so the
// decision for the Nth packet through a site never depends on traffic at
// any other site, on thread count, or on sweep ordering — a fault campaign
// is bit-identical across --jobs values by construction (the same property
// the rest of the simulator guarantees for fault-free runs).
//
// The plan also owns the fault-side statistics: injected/recovered counters
// per mechanism and the per-fault recovery-latency histogram, registered
// under "fault.*" in the run's StatRegistry.
#pragma once

#include <map>

#include "common/stats.hpp"
#include "fault/fault_config.hpp"

namespace camps::fault {

class FaultPlan final {
 public:
  explicit FaultPlan(const FaultConfig& config, StatRegistry* stats);

  const FaultConfig& config() const { return cfg_; }

  /// Draws the next decision for `unit` at `site`: advances that site's
  /// sequence counter and returns true when the packet faults (by rate or
  /// by a targeted fault pinned to this exact coordinate).
  bool roll(Site site, u32 unit);

  /// Sequence counter a (site, unit) pair will use next (tests pin
  /// targeted faults against this).
  u64 next_sequence(Site site, u32 unit) const;

  // --- recovery bookkeeping (counters may be null-registry no-ops) ------
  void count_crc_error() { inc(c_crc_errors_); }
  void count_replay(Tick recovery_ticks);
  void count_link_drop() { inc(c_link_drops_); }
  void count_xbar_drop() { inc(c_xbar_drops_); }
  void count_vault_stall() { inc(c_vault_stalls_); }
  void count_host_retry() { inc(c_host_retries_); }
  void count_host_poison(Tick recovery_ticks);
  /// A retried request's response finally arrived.
  void count_host_recovery(Tick recovery_ticks);
  void count_late_response() { inc(c_late_responses_); }
  void count_degrade_flush() { inc(c_degrade_flushes_); }
  void count_token_stall_ticks(Tick ticks) {
    if (c_token_stall_ticks_ != nullptr) c_token_stall_ticks_->inc(ticks);
  }

  /// Faults injected so far, summed over every mechanism.
  u64 injected() const;

 private:
  static void inc(Counter* c) {
    if (c != nullptr) c->inc();
  }
  double rate_for(Site site) const;

  FaultConfig cfg_;
  /// Per-(site, unit) packet sequence counters. Ordered map: iterated only
  /// for audits, and the key space is tiny (sites x links/vaults).
  std::map<std::pair<u8, u32>, u64> sequences_;

  Counter* c_crc_errors_ = nullptr;
  Counter* c_replays_ = nullptr;
  Counter* c_link_drops_ = nullptr;
  Counter* c_xbar_drops_ = nullptr;
  Counter* c_vault_stalls_ = nullptr;
  Counter* c_host_retries_ = nullptr;
  Counter* c_host_poisoned_ = nullptr;
  Counter* c_late_responses_ = nullptr;
  Counter* c_degrade_flushes_ = nullptr;
  Counter* c_token_stall_ticks_ = nullptr;
  Histogram* h_recovery_ = nullptr;  ///< Recovery latency, CPU cycles.
};

}  // namespace camps::fault
