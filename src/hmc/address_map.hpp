// Physical address decomposition for the HMC.
//
// Table I: RoRaBaVaCo (row - rank - bank - vault - column), listed MSB to
// LSB above the 64 B line offset. With the default geometry (32 vaults,
// 16 banks/vault, 1 KB rows), consecutive lines fill a row, consecutive
// rows stripe across vaults, then banks — giving both row locality and
// vault-level parallelism. The field order is configurable so the
// bench_ablate_addrmap experiment can study alternatives.
#pragma once

#include <array>
#include <string>

#include "common/types.hpp"

namespace camps::hmc {

/// Address fields above the line offset.
enum class AddrField : u8 { kRow, kRank, kBank, kVault, kColumn };

/// Field order from most-significant to least-significant.
using FieldOrder = std::array<AddrField, 5>;

/// Table I default: Ro Ra Ba Va Co.
constexpr FieldOrder kRoRaBaVaCo{AddrField::kRow, AddrField::kRank,
                                 AddrField::kBank, AddrField::kVault,
                                 AddrField::kColumn};

/// Row-bank-rank-column-vault: consecutive lines stripe across vaults
/// (fine-grain interleave), destroying row locality — an ablation point.
constexpr FieldOrder kRoBaRaCoVa{AddrField::kRow, AddrField::kBank,
                                 AddrField::kRank, AddrField::kColumn,
                                 AddrField::kVault};

/// Row-vault-rank-column-bank: consecutive rows land in the same bank —
/// maximizes row-buffer conflicts for streaming patterns (stress case).
constexpr FieldOrder kRoVaRaCoBa{AddrField::kRow, AddrField::kVault,
                                 AddrField::kRank, AddrField::kColumn,
                                 AddrField::kBank};

struct HmcGeometry {
  u32 vaults = 32;
  u32 banks_per_vault = 16;  ///< 8 DRAM layers x 2 banks per vault layer.
  u32 ranks = 1;             ///< HMC vaults have no ranks; kept for the map.
  u64 rows_per_bank = 16384;  ///< 8 GB cube with the other defaults.
  u64 row_bytes = 1024;
  u64 line_bytes = 64;

  u64 lines_per_row() const { return row_bytes / line_bytes; }
  u64 capacity_bytes() const {
    return u64{vaults} * banks_per_vault * ranks * rows_per_bank * row_bytes;
  }
  /// All dimensions must be powers of two for bit-sliced decoding.
  bool valid() const;
};

struct DecodedAddr {
  VaultId vault = 0;
  BankId bank = 0;
  u32 rank = 0;
  RowId row = 0;
  LineId column = 0;  ///< Line index within the row.

  friend bool operator==(const DecodedAddr&, const DecodedAddr&) = default;
};

class AddressMap {
 public:
  explicit AddressMap(const HmcGeometry& geometry = {},
                      const FieldOrder& order = kRoRaBaVaCo);

  /// Decodes a physical address. Addresses beyond the cube capacity wrap
  /// (the system layer hashes core address spaces into the cube anyway).
  DecodedAddr decode(Addr addr) const;

  /// Inverse of decode (line-aligned address).
  Addr encode(const DecodedAddr& d) const;

  /// Address delta that changes only the row, keeping vault/bank/rank —
  /// what ConflictStreams needs to build guaranteed conflicts.
  u64 same_bank_row_stride() const;

  const HmcGeometry& geometry() const { return geom_; }
  const FieldOrder& order() const { return order_; }

  /// "RoRaBaVaCo"-style name for display.
  std::string order_name() const;

 private:
  u64 field_size(AddrField f) const;

  HmcGeometry geom_;
  FieldOrder order_;
  u32 line_shift_;
  u64 capacity_lines_;
};

}  // namespace camps::hmc
