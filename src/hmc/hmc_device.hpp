// The assembled Hybrid Memory Cube: 32 vault controllers behind a crossbar,
// reached from the host through 4 full-duplex serial links.
//
// Topology per Table I / Figure 2:
//   host controller -> serial link (vault % 4) -> crossbar -> vault
//   vault -> crossbar -> serial link -> host controller
// Links and the crossbar are timestamp-chained bandwidth models; vaults are
// event-driven. One shared EnergyModel accumulates the whole cube's events.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "fault/fault_plan.hpp"
#include "hmc/crossbar.hpp"
#include "hmc/serial_link.hpp"
#include "hmc/vault_controller.hpp"
#include "prefetch/factory.hpp"

namespace camps::hmc {

struct HmcConfig {
  HmcGeometry geometry;
  FieldOrder field_order = kRoRaBaVaCo;
  VaultConfig vault;
  LinkParams link;
  u32 num_links = 4;
  CrossbarParams crossbar;
  energy::EnergyParams energy;
  /// Fault injection (disabled by default; see fault/fault_config.hpp).
  /// When disabled the device constructs no plan and every fault branch is
  /// a null-pointer check — behaviour and event counts are bit-identical
  /// to a build without the subsystem.
  fault::FaultConfig fault;
};

class HmcDevice {
 public:
  /// Invoked when a read response reaches the host side of the links.
  using DeliverFn = std::function<void(const MemRequest&)>;

  HmcDevice(sim::Simulator& sim, const HmcConfig& config,
            prefetch::SchemeKind scheme, const prefetch::SchemeParams& params,
            StatRegistry* stats, DeliverFn deliver,
            obs::TraceRecorder* trace = nullptr);

  /// Sends a demand request into the cube at `now` (reads get a later
  /// deliver() call; writes are posted).
  void submit(const MemRequest& request, Tick now);

  bool idle() const;

  const AddressMap& map() const { return map_; }
  const HmcConfig& config() const { return cfg_; }
  /// The fault plan, or nullptr when fault injection is disabled.
  fault::FaultPlan* fault_plan() { return fault_plan_.get(); }
  const fault::FaultPlan* fault_plan() const { return fault_plan_.get(); }
  energy::EnergyModel& energy() { return energy_; }
  const energy::EnergyModel& energy() const { return energy_; }
  const VaultController& vault(VaultId id) const { return *vaults_[id]; }
  u32 vault_count() const { return static_cast<u32>(vaults_.size()); }

  // --- whole-device aggregates (sum over vaults) ------------------------
  u64 total_row_hits() const;
  u64 total_row_empties() const;
  u64 total_row_conflicts() const;
  u64 total_prefetches() const;
  u64 total_buffer_hits() const;
  u64 total_buffer_misses() const;
  /// Rows that proved useful / all rows ever prefetched (Fig. 7 metric).
  double prefetch_accuracy() const;
  /// Conflicts as a fraction of all DRAM row-buffer accesses (Fig. 6).
  double row_conflict_rate() const;

  /// Zeroes all vault counters and the energy model (warmup boundary).
  void reset_stats();

  /// Audits every vault controller (each under its own "vaultN" scope).
  void audit(check::AuditReporter& reporter) const;

  /// Total serialization-busy ticks across all links, per direction.
  Tick link_busy_ticks_down() const;
  Tick link_busy_ticks_up() const;

  /// Power-management wake-ups summed over all links and both directions
  /// (0 unless LinkParams::power_management is enabled).
  u64 link_wakeups() const;

 private:
  void on_vault_response(const MemRequest& request, VaultId vault,
                         Tick ready);
  /// Records one fault attributed to `vault`; triggers its degradation
  /// flush every `vault_degrade_threshold` faults.
  void note_vault_fault(VaultId vault);

  sim::Simulator& sim_;
  HmcConfig cfg_;
  AddressMap map_;
  std::unique_ptr<fault::FaultPlan> fault_plan_;  ///< Null: faults off.
  std::vector<u32> vault_fault_counts_;  ///< Since the last degrade flush.
  energy::EnergyModel energy_;
  std::vector<std::unique_ptr<SerialLink>> links_;
  Crossbar down_xbar_;  ///< Link -> vault ports.
  Crossbar up_xbar_;    ///< Vault -> link ports.
  std::vector<std::unique_ptr<VaultController>> vaults_;
  DeliverFn deliver_;
  obs::TraceRecorder* trace_ = nullptr;

  // Latency breakdown (CPU cycles). Null when no registry was provided.
  Histogram* h_lat_host_queue_ = nullptr;  ///< submit -> link start.
  Histogram* h_lat_link_down_ = nullptr;   ///< Link start -> vault side.
  Histogram* h_lat_link_up_ = nullptr;     ///< Vault side -> host side.
};

static_assert(check::Auditable<HmcDevice>);

}  // namespace camps::hmc
