// One HMC vault controller (logic-layer slice).
//
// Owns: 16 DRAM banks, a 32-entry read queue and 32-entry write queue
// (Table I), an FR-FCFS scheduler with write-drain hysteresis, the
// autonomous refresh engine, the per-vault TSV data bus, and — the paper's
// subject — the prefetch engine: a PrefetchScheme making row-fetch
// decisions and a PrefetchBuffer holding fetched rows.
//
// Event model: the controller wakes once per DRAM cycle while it has any
// work, issuing at most one DRAM command per wake (single command bus per
// vault) plus any number of prefetch-buffer serves (logic-layer SRAM, not
// on the DRAM command bus). When idle it sleeps until traffic or the next
// refresh deadline.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "dram/bank.hpp"
#include "dram/refresh.hpp"
#include "energy/energy_model.hpp"
#include "hmc/address_map.hpp"
#include "hmc/packet.hpp"
#include "obs/trace_recorder.hpp"
#include "prefetch/prefetch_buffer.hpp"
#include "prefetch/scheme.hpp"
#include "sim/clock.hpp"
#include "sim/simulator.hpp"

namespace camps::hmc {

/// Row-buffer management policy (Table I fixes open page).
enum class PagePolicy : u8 {
  kOpen,    ///< Rows stay open until displaced (FR-FCFS exploits hits).
  kClosed,  ///< Rows close as soon as no queued demand wants them.
};

struct VaultConfig {
  dram::TimingParams timing = dram::default_timing();
  PagePolicy page_policy = PagePolicy::kOpen;
  u32 banks = 16;
  u32 read_queue = 32;
  u32 write_queue = 32;
  /// Write-drain hysteresis: start draining at >= high, stop at <= low.
  u32 write_drain_high = 24;
  u32 write_drain_low = 8;
  prefetch::PrefetchBufferConfig buffer;  ///< hit_latency is in CPU cycles.
  bool refresh_enabled = true;
  /// Seed a fetched row's utilization bitmap with the lines already served
  /// while it sat in the DRAM row buffer, so Section 3.2's full-utilization
  /// test sees the row's whole life. Ablatable.
  bool seed_buffer_utilization = true;
  /// When true, a row copy occupies the vault's demand data bus for its
  /// whole duration. The paper's premise (Section 2.4) is that copies ride
  /// the wide internal TSVs instead, so the default is false — the copy
  /// only occupies the *bank*. Enable for the bandwidth-coupling ablation.
  bool row_fetch_uses_bus = false;
};

class VaultController final {
 public:
  /// Called when a read's data is ready to leave the vault (the device
  /// adds crossbar + link delays on top of `ready`).
  using RespondFn = std::function<void(const MemRequest&, Tick ready)>;

  VaultController(sim::Simulator& sim, VaultId id, const VaultConfig& config,
                  std::unique_ptr<prefetch::PrefetchScheme> scheme,
                  energy::EnergyModel* energy, StatRegistry* stats,
                  RespondFn respond, obs::TraceRecorder* trace = nullptr);

  VaultController(const VaultController&) = delete;
  VaultController& operator=(const VaultController&) = delete;

  /// Accepts a demand request (already decoded to this vault) at `now`.
  void receive(const MemRequest& request, const DecodedAddr& addr, Tick now);

  /// True when all queues, actions, and in-flight work have drained.
  bool idle() const;

  VaultId id() const { return id_; }
  const prefetch::PrefetchBuffer& buffer() const { return buffer_; }
  const prefetch::PrefetchScheme& scheme() const { return *scheme_; }

  // --- aggregate accessors used by results reporting -------------------
  u64 row_hits() const { return n_rb_hit_; }
  u64 row_empties() const { return n_rb_empty_; }
  u64 row_conflicts() const { return n_rb_conflict_; }
  u64 demand_reads() const { return n_reads_; }
  u64 demand_writes() const { return n_writes_; }
  u64 prefetches_issued() const { return n_prefetch_issued_; }
  u64 prefetches_dropped() const { return n_prefetch_dropped_; }

  /// Fault-recovery degradation: quiesces this vault's prefetch state
  /// after repeated faults. Un-issued prefetch actions are dropped (copies
  /// already issued to a bank complete normally — their events are in
  /// flight), every buffered row is evicted with the usual usefulness and
  /// dirty-writeback notifications, and the scheme's profiling tables are
  /// emptied via PrefetchScheme::on_fault_flush(). Empty tables satisfy
  /// the RUT/CT hand-off invariants trivially, so a flush in the middle of
  /// traffic stays audit-clean. Demand service is unaffected.
  void degrade_flush();
  u64 degrade_flushes() const { return n_degrade_flushes_; }

  /// Zeroes counters (scheduler and buffer contents are untouched); marks
  /// the warmup / measurement boundary.
  void reset_stats();

  /// Audits this vault and everything it owns: per-bank FSMs, the prefetch
  /// buffer, the scheme's tables, queue capacities and decoded-coordinate
  /// ranges, the tFAW/tRRD activation window, and the cross-structure
  /// CAMPS rules (an open row archived in the CT must have a demand or
  /// prefetch action pending — steady state forbids the overlap).
  void audit(check::AuditReporter& reporter) const;

 private:
  friend struct check::TestCorruptor;

  struct QueueEntry {
    MemRequest req;
    BankId bank = 0;
    RowId row = 0;
    LineId column = 0;
    u64 enqueue_cycle = 0;
    bool started = false;  ///< First command already issued for it.
    dram::RowBufferOutcome outcome = dram::RowBufferOutcome::kEmpty;
  };

  /// A pending row prefetch (possibly multi-step: PRE, ACT, fetch, PRE).
  struct PfAction {
    BankId bank = 0;
    RowId row = 0;
    bool precharge_after = false;
    bool fetch_issued = false;
    u64 fetch_done_cycle = 0;
    u64 created_cycle = 0;
  };

  /// Demand columns normally outrank prefetch work, but a copy that has
  /// starved this long jumps the queue — a prefetch that lands after its
  /// stream has passed is pure waste.
  static constexpr u64 kPrefetchAgingCycles = 12;

  // Scheduler phases (all take the current DRAM cycle).
  void wake();
  void schedule_wake_at_cycle(u64 cycle);
  void schedule_next_wake(u64 cycle);
  void admit_ingress(u64 cycle);
  // Each returns true if it consumed this cycle's command slot.
  bool refresh_step(u64 cycle);
  bool issue_demand_column(u64 cycle);
  bool advance_demand_bank(u64 cycle);
  bool issue_prefetch(u64 cycle);

  /// Issues the row copy serving `entry` itself (BASE's serve-via-buffer
  /// path). Pre: bank open on the row, column path and bus ready.
  void serve_via_fetch(const QueueEntry& entry, u64 cycle,
                       bool precharge_after);

  bool serve_from_buffer(const QueueEntry& entry, u64 cycle,
                         bool count_miss);

  /// Marks `line` of (bank,row) referenced in the open-row tracking used
  /// to seed buffer entries on fetch.
  void note_row_reference(BankId bank, RowId row, LineId line);
  u64 row_reference_bitmap(BankId bank, RowId row) const;
  void classify_if_new(QueueEntry& entry, u64 cycle);
  u32 queued_same_row(const QueueEntry& entry) const;
  void apply_decision(const prefetch::PrefetchDecision& decision,
                      const QueueEntry& entry);
  /// `issue_cycle` stamps the insert: requests enqueued before the fetch
  /// was issued are demands it reacted to, not anticipations.
  void complete_fetch(BankId bank, RowId row, u64 seed_bitmap,
                      u64 issue_cycle);
  void update_drain_mode();

  Tick tick_of(u64 cycle) const { return cycle * sim::kDramTicksPerCycle; }
  u64 cycle_of(Tick tick) const { return tick / sim::kDramTicksPerCycle; }

  sim::Simulator& sim_;
  VaultId id_;
  VaultConfig cfg_;
  std::vector<dram::Bank> banks_;
  prefetch::PrefetchBuffer buffer_;
  std::unique_ptr<prefetch::PrefetchScheme> scheme_;
  dram::RefreshScheduler refresh_;
  energy::EnergyModel* energy_;  ///< Shared, device-wide. May be null.
  RespondFn respond_;
  Tick buffer_hit_ticks_;

  std::deque<QueueEntry> ingress_;
  std::deque<QueueEntry> rdq_;
  std::deque<QueueEntry> wrq_;
  std::deque<PfAction> actions_;

  u64 bus_free_cycle_ = 0;  ///< Vault TSV data bus reservation.
  u64 next_act_cycle_ = 0;  ///< tRRD: earliest cycle any bank may ACT.
  /// tFAW: ring of the last four ACTs, each stored as (act_cycle + tFAW) —
  /// the cycle at which that ACT stops constraining. A fifth ACT must wait
  /// for the oldest entry. Zero-initialised entries never constrain.
  std::array<u64, 4> act_window_{};
  u32 act_window_pos_ = 0;

  /// True when a new ACT at `cycle` satisfies both tRRD and tFAW.
  bool act_allowed(u64 cycle) const {
    return cycle >= next_act_cycle_ && cycle >= act_window_[act_window_pos_];
  }
  void record_act(u64 cycle) {
    next_act_cycle_ = cycle + cfg_.timing.tRRD;
    act_window_[act_window_pos_] = cycle + cfg_.timing.tFAW;
    act_window_pos_ = (act_window_pos_ + 1) % 4;
  }
  /// Per-bank (row, referenced-line bitmap) of the most recent open row;
  /// seeds buffer utilization when that row is fetched.
  struct OpenRowRefs {
    RowId row = 0;
    u64 bitmap = 0;
  };
  std::vector<OpenRowRefs> open_row_refs_;
  bool draining_writes_ = false;
  bool refresh_draining_ = false;
  bool wake_scheduled_ = false;
  Tick next_wake_tick_ = 0;  ///< Earliest pending wake; later ones are stale.
  u64 inflight_ = 0;  ///< Reads issued to DRAM whose data is still in flight.

  // Statistics (registry-backed where a registry is provided).
  u64 n_rb_hit_ = 0, n_rb_empty_ = 0, n_rb_conflict_ = 0;
  u64 n_reads_ = 0, n_writes_ = 0;
  u64 n_prefetch_issued_ = 0, n_prefetch_dropped_ = 0;
  u64 n_degrade_flushes_ = 0;
  Counter* c_rb_hit_ = nullptr;
  Counter* c_rb_empty_ = nullptr;
  Counter* c_rb_conflict_ = nullptr;
  Counter* c_buf_hit_ = nullptr;
  Counter* c_prefetch_ = nullptr;
  Histogram* h_queue_wait_ = nullptr;  ///< DRAM cycles from enqueue to issue.

  // Device-wide latency breakdown (registry entries shared by all vaults;
  // all in CPU cycles). Null when no registry was provided.
  Histogram* h_lat_vault_queue_ = nullptr;  ///< Enqueue -> leave the queue.
  Histogram* h_lat_bank_service_ = nullptr; ///< Column issue -> data done.
  Histogram* h_lat_buffer_hit_ = nullptr;   ///< Prefetch-buffer hit serves.

  obs::TraceRecorder* trace_ = nullptr;

  /// Whole CPU cycles spanned by `cycles` DRAM cycles.
  static u64 cpu_cycles_of_dram(u64 cycles) {
    return cycles * sim::kDramTicksPerCycle / sim::kCpuTicksPerCycle;
  }
};

static_assert(check::Auditable<VaultController>);

}  // namespace camps::hmc
