// Cold-path audit() definitions for the vault/host controllers and device
// (contract: check/audit.hpp; invariant catalog: docs/static_analysis.md).
// Kept out of the hot translation units so the audit code — which runs
// every N-hundred-thousand events, or never — does not dilute their .text.

#include <algorithm>
#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "check/audit.hpp"
#include "hmc/hmc_device.hpp"
#include "hmc/host_controller.hpp"
#include "hmc/vault_controller.hpp"
#include "prefetch/scheme_camps.hpp"

namespace camps {

void hmc::HostController::audit(check::AuditReporter& rep) const {
  {
    const check::AuditScope scope(rep, "host");
    const u32 retry_budget = device_.config().fault.host_retry_budget;
    size_t timers_referenced = 0;
    for (const auto& [id, p] : outstanding_) {
      rep.expect(id != 0 && id < next_id_, "host-id-range",
                 "outstanding request id " + std::to_string(id) +
                     " was never issued (next id is " +
                     std::to_string(next_id_) + ")");
      rep.expect(static_cast<bool>(p.on_done), "host-dead-callback",
                 "outstanding read " + std::to_string(id) +
                     " has no completion callback");
      // attempt can reach budget+1 (the last retry); beyond that the
      // timeout path must have poisoned the request already.
      rep.expect(p.attempt >= 1 && p.attempt <= retry_budget + 1,
                 "host-attempt-range",
                 "outstanding read " + std::to_string(id) + " is on attempt " +
                     std::to_string(p.attempt) + " with a retry budget of " +
                     std::to_string(retry_budget));
      rep.expect(p.timer != 0 || device_.fault_plan() == nullptr ||
                     device_.config().fault.host_timeout_ticks == 0,
                 "host-timer-armed",
                 "outstanding read " + std::to_string(id) +
                     " has no timeout armed while fault recovery is active");
      if (p.timer != 0) ++timers_referenced;
    }
    // Every live timer belongs to an outstanding request; a timer that
    // outlives its request would fire on a dangling id.
    rep.expect(timeouts_.pending() <= timers_referenced, "host-timer-leak",
               std::to_string(timeouts_.pending()) +
                   " timers pending for " +
                   std::to_string(timers_referenced) +
                   " timer-bearing outstanding reads");
  }
  device_.audit(rep);
}

void hmc::VaultController::audit(check::AuditReporter& rep) const {
  const check::AuditScope scope(rep, "vault" + std::to_string(id_));
  const u64 cycle = cycle_of(sim_.now());

  // Owned-structure shapes.
  rep.expect(banks_.size() == cfg_.banks, "vault-bank-shape",
             std::to_string(banks_.size()) + " banks constructed, " +
                 std::to_string(cfg_.banks) + " configured");
  rep.expect(open_row_refs_.size() == banks_.size(), "vault-refs-shape",
             "open-row reference tracking covers " +
                 std::to_string(open_row_refs_.size()) + " of " +
                 std::to_string(banks_.size()) + " banks");
  rep.expect(act_window_pos_ < act_window_.size(), "vault-act-ring",
             "tFAW ring cursor " + std::to_string(act_window_pos_) +
                 " out of range");

  // Queue capacities (Table I: 32-entry read and write queues). The ingress
  // stage is unbounded by design (it models the packet link buffer), so only
  // the scheduler queues are checked.
  rep.expect(rdq_.size() <= cfg_.read_queue, "vault-rdq-capacity",
             std::to_string(rdq_.size()) + " reads queued, capacity " +
                 std::to_string(cfg_.read_queue));
  rep.expect(wrq_.size() <= cfg_.write_queue, "vault-wrq-capacity",
             std::to_string(wrq_.size()) + " writes queued, capacity " +
                 std::to_string(cfg_.write_queue));

  // Every queued coordinate must decode inside this vault's geometry.
  const u64 line_limit = buffer_.config().lines_per_row;
  auto check_entries = [&](const std::deque<QueueEntry>& q, const char* which) {
    for (const QueueEntry& e : q) {
      rep.expect(e.bank < cfg_.banks, "vault-entry-bank",
                 std::string(which) + " entry for request " +
                     std::to_string(e.req.id) + " targets bank " +
                     std::to_string(e.bank) + " of " +
                     std::to_string(cfg_.banks));
      rep.expect(e.column < line_limit, "vault-entry-column",
                 std::string(which) + " entry for request " +
                     std::to_string(e.req.id) + " targets column " +
                     std::to_string(e.column) + " of " +
                     std::to_string(line_limit));
    }
  };
  check_entries(ingress_, "ingress");
  check_entries(rdq_, "read-queue");
  check_entries(wrq_, "write-queue");
  for (const PfAction& a : actions_) {
    rep.expect(a.bank < cfg_.banks, "vault-action-bank",
               "prefetch action targets bank " + std::to_string(a.bank) +
                   " of " + std::to_string(cfg_.banks));
  }

  // Open-row reference bitmaps stay confined to the row's line count.
  const u64 line_mask =
      line_limit >= 64 ? ~u64{0} : ((u64{1} << line_limit) - 1);
  for (size_t b = 0; b < open_row_refs_.size(); ++b) {
    rep.expect((open_row_refs_[b].bitmap & ~line_mask) == 0,
               "vault-refs-bitmap",
               "bank " + std::to_string(b) +
                   " tracks referenced lines outside the row");
  }

  // Delegate to each owned component.
  for (size_t b = 0; b < banks_.size(); ++b) {
    const check::AuditScope bank_scope(rep, "bank" + std::to_string(b));
    banks_[b].audit(rep);
  }
  buffer_.audit(rep);
  scheme_->audit(rep);

  // Cross-structure CAMPS rule: a row cannot be open in its bank *and*
  // archived in the Conflict Table — the CT holds displaced rows only
  // (Section 3.1). The one legal overlap is transient: the controller has
  // activated the row for a queued demand but the scheme has not yet seen
  // the access (the CT entry is consumed at column issue). So an overlap is
  // a violation only when nothing pending explains it.
  const auto* camps =
      dynamic_cast<const prefetch::CampsScheme*>(scheme_.get());
  if (camps != nullptr) {
    auto pending_for = [&](BankId bank, RowId row) {
      auto targets = [&](const QueueEntry& e) {
        return e.bank == bank && e.row == row;
      };
      return std::any_of(rdq_.begin(), rdq_.end(), targets) ||
             std::any_of(wrq_.begin(), wrq_.end(), targets) ||
             std::any_of(ingress_.begin(), ingress_.end(), targets) ||
             std::any_of(actions_.begin(), actions_.end(),
                         [&](const PfAction& a) {
                           return a.bank == bank && a.row == row;
                         });
    };
    for (size_t b = 0; b < banks_.size(); ++b) {
      const auto open = banks_[b].open_row(cycle);
      if (!open) continue;
      const BankId bank = static_cast<BankId>(b);
      if (!camps->conflict_table().contains(BankRow{bank, *open})) continue;
      rep.expect(pending_for(bank, *open), "vault-ct-open-row",
                 "bank " + std::to_string(b) + " holds row " +
                     std::to_string(*open) +
                     " open while the CT archives it as displaced, and no "
                     "pending demand or prefetch explains the overlap");
    }
  }
}

void hmc::HmcDevice::audit(check::AuditReporter& rep) const {
  // Flow-control conservation: credits are either available or in flight
  // back from a delivered packet — the pool never leaks or inflates.
  for (size_t l = 0; l < links_.size(); ++l) {
    const check::AuditScope scope(rep, "link" + std::to_string(l));
    auto check_dir = [&](const LinkDirection& dir, const char* which) {
      const u32 pool = cfg_.fault.link_tokens;
      if (fault_plan_ == nullptr || pool == 0) return;
      const u32 total = dir.tokens_available() + dir.tokens_pending();
      rep.expect(total == pool, "link-token-conservation",
                 std::string(which) + " direction holds " +
                     std::to_string(dir.tokens_available()) + " available + " +
                     std::to_string(dir.tokens_pending()) +
                     " returning tokens against a pool of " +
                     std::to_string(pool));
    };
    check_dir(links_[l]->downstream(), "downstream");
    check_dir(links_[l]->upstream(), "upstream");
  }
  for (const auto& vault : vaults_) vault->audit(rep);
}

}  // namespace camps
