// Cold-path audit() definitions for the vault/host controllers and device
// (contract: check/audit.hpp; invariant catalog: docs/static_analysis.md).
// Kept out of the hot translation units so the audit code — which runs
// every N-hundred-thousand events, or never — does not dilute their .text.

#include <algorithm>
#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "check/audit.hpp"
#include "hmc/hmc_device.hpp"
#include "hmc/host_controller.hpp"
#include "hmc/vault_controller.hpp"
#include "prefetch/scheme_camps.hpp"

namespace camps {

void hmc::HostController::audit(check::AuditReporter& rep) const {
  {
    const check::AuditScope scope(rep, "host");
    for (const auto& [id, fn] : outstanding_) {
      rep.expect(id != 0 && id < next_id_, "host-id-range",
                 "outstanding request id " + std::to_string(id) +
                     " was never issued (next id is " +
                     std::to_string(next_id_) + ")");
      rep.expect(static_cast<bool>(fn), "host-dead-callback",
                 "outstanding read " + std::to_string(id) +
                     " has no completion callback");
    }
  }
  device_.audit(rep);
}

void hmc::VaultController::audit(check::AuditReporter& rep) const {
  const check::AuditScope scope(rep, "vault" + std::to_string(id_));
  const u64 cycle = cycle_of(sim_.now());

  // Owned-structure shapes.
  rep.expect(banks_.size() == cfg_.banks, "vault-bank-shape",
             std::to_string(banks_.size()) + " banks constructed, " +
                 std::to_string(cfg_.banks) + " configured");
  rep.expect(open_row_refs_.size() == banks_.size(), "vault-refs-shape",
             "open-row reference tracking covers " +
                 std::to_string(open_row_refs_.size()) + " of " +
                 std::to_string(banks_.size()) + " banks");
  rep.expect(act_window_pos_ < act_window_.size(), "vault-act-ring",
             "tFAW ring cursor " + std::to_string(act_window_pos_) +
                 " out of range");

  // Queue capacities (Table I: 32-entry read and write queues). The ingress
  // stage is unbounded by design (it models the packet link buffer), so only
  // the scheduler queues are checked.
  rep.expect(rdq_.size() <= cfg_.read_queue, "vault-rdq-capacity",
             std::to_string(rdq_.size()) + " reads queued, capacity " +
                 std::to_string(cfg_.read_queue));
  rep.expect(wrq_.size() <= cfg_.write_queue, "vault-wrq-capacity",
             std::to_string(wrq_.size()) + " writes queued, capacity " +
                 std::to_string(cfg_.write_queue));

  // Every queued coordinate must decode inside this vault's geometry.
  const u64 line_limit = buffer_.config().lines_per_row;
  auto check_entries = [&](const std::deque<QueueEntry>& q, const char* which) {
    for (const QueueEntry& e : q) {
      rep.expect(e.bank < cfg_.banks, "vault-entry-bank",
                 std::string(which) + " entry for request " +
                     std::to_string(e.req.id) + " targets bank " +
                     std::to_string(e.bank) + " of " +
                     std::to_string(cfg_.banks));
      rep.expect(e.column < line_limit, "vault-entry-column",
                 std::string(which) + " entry for request " +
                     std::to_string(e.req.id) + " targets column " +
                     std::to_string(e.column) + " of " +
                     std::to_string(line_limit));
    }
  };
  check_entries(ingress_, "ingress");
  check_entries(rdq_, "read-queue");
  check_entries(wrq_, "write-queue");
  for (const PfAction& a : actions_) {
    rep.expect(a.bank < cfg_.banks, "vault-action-bank",
               "prefetch action targets bank " + std::to_string(a.bank) +
                   " of " + std::to_string(cfg_.banks));
  }

  // Open-row reference bitmaps stay confined to the row's line count.
  const u64 line_mask =
      line_limit >= 64 ? ~u64{0} : ((u64{1} << line_limit) - 1);
  for (size_t b = 0; b < open_row_refs_.size(); ++b) {
    rep.expect((open_row_refs_[b].bitmap & ~line_mask) == 0,
               "vault-refs-bitmap",
               "bank " + std::to_string(b) +
                   " tracks referenced lines outside the row");
  }

  // Delegate to each owned component.
  for (size_t b = 0; b < banks_.size(); ++b) {
    const check::AuditScope bank_scope(rep, "bank" + std::to_string(b));
    banks_[b].audit(rep);
  }
  buffer_.audit(rep);
  scheme_->audit(rep);

  // Cross-structure CAMPS rule: a row cannot be open in its bank *and*
  // archived in the Conflict Table — the CT holds displaced rows only
  // (Section 3.1). The one legal overlap is transient: the controller has
  // activated the row for a queued demand but the scheme has not yet seen
  // the access (the CT entry is consumed at column issue). So an overlap is
  // a violation only when nothing pending explains it.
  const auto* camps =
      dynamic_cast<const prefetch::CampsScheme*>(scheme_.get());
  if (camps != nullptr) {
    auto pending_for = [&](BankId bank, RowId row) {
      auto targets = [&](const QueueEntry& e) {
        return e.bank == bank && e.row == row;
      };
      return std::any_of(rdq_.begin(), rdq_.end(), targets) ||
             std::any_of(wrq_.begin(), wrq_.end(), targets) ||
             std::any_of(ingress_.begin(), ingress_.end(), targets) ||
             std::any_of(actions_.begin(), actions_.end(),
                         [&](const PfAction& a) {
                           return a.bank == bank && a.row == row;
                         });
    };
    for (size_t b = 0; b < banks_.size(); ++b) {
      const auto open = banks_[b].open_row(cycle);
      if (!open) continue;
      const BankId bank = static_cast<BankId>(b);
      if (!camps->conflict_table().contains(BankRow{bank, *open})) continue;
      rep.expect(pending_for(bank, *open), "vault-ct-open-row",
                 "bank " + std::to_string(b) + " holds row " +
                     std::to_string(*open) +
                     " open while the CT archives it as displaced, and no "
                     "pending demand or prefetch explains the overlap");
    }
  }
}

void hmc::HmcDevice::audit(check::AuditReporter& rep) const {
  for (const auto& vault : vaults_) vault->audit(rep);
}

}  // namespace camps
