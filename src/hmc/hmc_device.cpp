#include "hmc/hmc_device.hpp"

#include <memory>

#include "sim/clock.hpp"

namespace camps::hmc {

using energy::EnergyEvent;

HmcDevice::HmcDevice(sim::Simulator& sim, const HmcConfig& config,
                     prefetch::SchemeKind scheme,
                     const prefetch::SchemeParams& params, StatRegistry* stats,
                     DeliverFn deliver, obs::TraceRecorder* trace)
    : sim_(sim),
      cfg_(config),
      map_(config.geometry, config.field_order),
      energy_(config.energy),
      down_xbar_(config.geometry.vaults, config.crossbar),
      up_xbar_(config.num_links, config.crossbar),
      deliver_(std::move(deliver)),
      trace_(trace) {
  CAMPS_ASSERT(cfg_.num_links > 0);
  if (cfg_.fault.enabled()) {
    fault_plan_ = std::make_unique<fault::FaultPlan>(cfg_.fault, stats);
    vault_fault_counts_.assign(cfg_.geometry.vaults, 0);
  }
  // The flow-control pool rides on LinkParams so the link model owns the
  // whole credit loop; the fault config is just where users set it.
  LinkParams link_params = cfg_.link;
  if (fault_plan_ != nullptr && cfg_.fault.link_tokens > 0) {
    link_params.tokens = cfg_.fault.link_tokens;
  }
  links_.reserve(cfg_.num_links);
  for (u32 l = 0; l < cfg_.num_links; ++l) {
    links_.push_back(std::make_unique<SerialLink>(link_params));
    links_[l]->downstream().attach_trace(trace_, obs::Stage::kLinkDown, l);
    links_[l]->upstream().attach_trace(trace_, obs::Stage::kLinkUp, l);
    if (fault_plan_ != nullptr) {
      links_[l]->downstream().attach_faults(fault_plan_.get(), l, false);
      links_[l]->upstream().attach_faults(fault_plan_.get(), l, true);
    }
  }
  down_xbar_.attach_trace(trace_, obs::Stage::kXbarDown);
  up_xbar_.attach_trace(trace_, obs::Stage::kXbarUp);
  if (fault_plan_ != nullptr) {
    // Disjoint unit bases keep the two crossbars' decision streams
    // independent (down ports are vault ids, up ports are link ids).
    down_xbar_.attach_faults(fault_plan_.get(), 0);
    up_xbar_.attach_faults(fault_plan_.get(), cfg_.geometry.vaults);
  }
  if (stats != nullptr) {
    h_lat_host_queue_ = &stats->histogram("latency.host_queue_cycles",
                                          /*bucket_width=*/8,
                                          /*num_buckets=*/64);
    h_lat_link_down_ = &stats->histogram("latency.link_down_cycles",
                                         /*bucket_width=*/4,
                                         /*num_buckets=*/64);
    h_lat_link_up_ = &stats->histogram("latency.link_up_cycles",
                                       /*bucket_width=*/4,
                                       /*num_buckets=*/64);
  }
  // Keep each vault's prefetch table geometry in sync with the banks.
  prefetch::SchemeParams per_vault = params;
  per_vault.camps.banks = cfg_.vault.banks;
  vaults_.reserve(cfg_.geometry.vaults);
  for (VaultId v = 0; v < cfg_.geometry.vaults; ++v) {
    vaults_.push_back(std::make_unique<VaultController>(
        sim_, v, cfg_.vault, prefetch::make_scheme(scheme, per_vault),
        &energy_, stats,
        [this, v](const MemRequest& req, Tick ready) {
          on_vault_response(req, v, ready);
        },
        trace_));
  }
}

void HmcDevice::submit(const MemRequest& request, Tick now) {
  const DecodedAddr decoded = map_.decode(request.addr);
  const u32 link_idx = decoded.vault % cfg_.num_links;
  const PacketKind kind = request.type == AccessType::kRead
                              ? PacketKind::kReadReq
                              : PacketKind::kWriteReq;
  const u32 flits = flits_for(kind);
  energy_.add(EnergyEvent::kLinkFlit, flits);
  const auto xfer =
      links_[link_idx]->downstream().submit_ex(now, flits, request.id);
  if (xfer.dropped) return;  // lost on the link; host timeout recovers
  if (h_lat_host_queue_ != nullptr) {
    h_lat_host_queue_->sample((xfer.start - now) / sim::kCpuTicksPerCycle);
  }
  if (h_lat_link_down_ != nullptr) {
    h_lat_link_down_->sample((xfer.deliver - xfer.start) /
                             sim::kCpuTicksPerCycle);
  }
  if (trace_ != nullptr && xfer.start > now) {
    trace_->record(obs::Stage::kHostQueue, link_idx, request.id, now,
                   xfer.start);
  }
  const Tick at_xbar = xfer.deliver;
  const auto routed = down_xbar_.route_ex(at_xbar, decoded.vault, request.id);
  if (routed.dropped) return;  // grant lost; host timeout recovers
  const Tick at_vault = routed.deliver;
  VaultController* vault = vaults_[decoded.vault].get();
  sim_.schedule_at(at_vault, [vault, request, decoded, at_vault] {
    vault->receive(request, decoded, at_vault);
  });
}

void HmcDevice::on_vault_response(const MemRequest& request, VaultId vault,
                                  Tick ready) {
  // Reads only (writes are posted). Chain: crossbar -> upstream link.
  if (fault_plan_ != nullptr &&
      fault_plan_->roll(fault::Site::kVaultStall, vault)) {
    // The vault's response logic hiccuped (ECC scrub, TSV retrain, ...):
    // the data leaves late. Repeated stalls degrade the vault.
    fault_plan_->count_vault_stall();
    ready += cfg_.fault.vault_stall_ticks;
    note_vault_fault(vault);
  }
  const u32 link_idx = vault % cfg_.num_links;
  const u32 flits = flits_for(PacketKind::kReadResp);
  energy_.add(EnergyEvent::kLinkFlit, flits);
  const auto routed = up_xbar_.route_ex(ready, link_idx, request.id);
  if (routed.dropped) return;  // response lost; host timeout recovers
  const auto xfer =
      links_[link_idx]->upstream().submit_ex(routed.deliver, flits,
                                             request.id);
  if (xfer.dropped) return;  // response lost; host timeout recovers
  if (h_lat_link_up_ != nullptr) {
    h_lat_link_up_->sample((xfer.deliver - xfer.start) /
                           sim::kCpuTicksPerCycle);
  }
  const Tick at_host = xfer.deliver;
  sim_.schedule_at(at_host, [this, request] { deliver_(request); });
}

void HmcDevice::note_vault_fault(VaultId vault) {
  if (cfg_.fault.vault_degrade_threshold == 0) return;
  if (++vault_fault_counts_[vault] < cfg_.fault.vault_degrade_threshold) {
    return;
  }
  vault_fault_counts_[vault] = 0;
  vaults_[vault]->degrade_flush();
  fault_plan_->count_degrade_flush();
}

void HmcDevice::reset_stats() {
  for (auto& v : vaults_) v->reset_stats();
  for (auto& link : links_) {
    link->downstream().reset_stats();
    link->upstream().reset_stats();
  }
  energy_.reset();
}

Tick HmcDevice::link_busy_ticks_down() const {
  Tick total = 0;
  for (const auto& link : links_) total += link->downstream().busy_ticks();
  return total;
}

Tick HmcDevice::link_busy_ticks_up() const {
  Tick total = 0;
  for (const auto& link : links_) total += link->upstream().busy_ticks();
  return total;
}

u64 HmcDevice::link_wakeups() const {
  u64 total = 0;
  for (const auto& link : links_) {
    total += link->downstream().wakeups() + link->upstream().wakeups();
  }
  return total;
}

bool HmcDevice::idle() const {
  for (const auto& v : vaults_) {
    if (!v->idle()) return false;
  }
  return true;
}

u64 HmcDevice::total_row_hits() const {
  u64 n = 0;
  for (const auto& v : vaults_) n += v->row_hits();
  return n;
}

u64 HmcDevice::total_row_empties() const {
  u64 n = 0;
  for (const auto& v : vaults_) n += v->row_empties();
  return n;
}

u64 HmcDevice::total_row_conflicts() const {
  u64 n = 0;
  for (const auto& v : vaults_) n += v->row_conflicts();
  return n;
}

u64 HmcDevice::total_prefetches() const {
  u64 n = 0;
  for (const auto& v : vaults_) n += v->prefetches_issued();
  return n;
}

u64 HmcDevice::total_buffer_hits() const {
  u64 n = 0;
  for (const auto& v : vaults_) n += v->buffer().hits();
  return n;
}

u64 HmcDevice::total_buffer_misses() const {
  u64 n = 0;
  for (const auto& v : vaults_) n += v->buffer().misses();
  return n;
}

double HmcDevice::prefetch_accuracy() const {
  // Weighted mean of per-vault row accuracies, weighted by rows prefetched.
  double useful = 0.0, total = 0.0;
  for (const auto& v : vaults_) {
    const auto& buf = v->buffer();
    const double rows =
        static_cast<double>(buf.inserts());
    useful += buf.row_accuracy() * rows;
    total += rows;
  }
  return total == 0.0 ? 0.0 : useful / total;
}

double HmcDevice::row_conflict_rate() const {
  const u64 conflicts = total_row_conflicts();
  const u64 accesses =
      total_row_hits() + total_row_empties() + conflicts;
  return accesses == 0
             ? 0.0
             : static_cast<double>(conflicts) / static_cast<double>(accesses);
}

}  // namespace camps::hmc
