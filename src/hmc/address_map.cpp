#include "hmc/address_map.hpp"

#include <bit>
#include <string>

#include "common/assert.hpp"

namespace camps::hmc {
namespace {

bool is_pow2(u64 v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

bool HmcGeometry::valid() const {
  return is_pow2(vaults) && is_pow2(banks_per_vault) && is_pow2(ranks) &&
         is_pow2(rows_per_bank) && is_pow2(row_bytes) && is_pow2(line_bytes) &&
         line_bytes >= 1 && row_bytes >= line_bytes;
}

AddressMap::AddressMap(const HmcGeometry& geometry, const FieldOrder& order)
    : geom_(geometry), order_(order) {
  CAMPS_ASSERT_MSG(geom_.valid(), "HMC geometry must be powers of two");
  // Every field must appear exactly once.
  u32 seen = 0;
  for (AddrField f : order_) seen |= 1u << static_cast<u8>(f);
  CAMPS_ASSERT_MSG(seen == 0b11111, "field order must be a permutation");
  line_shift_ = static_cast<u32>(std::countr_zero(geom_.line_bytes));
  capacity_lines_ = geom_.capacity_bytes() / geom_.line_bytes;
}

u64 AddressMap::field_size(AddrField f) const {
  switch (f) {
    case AddrField::kRow: return geom_.rows_per_bank;
    case AddrField::kRank: return geom_.ranks;
    case AddrField::kBank: return geom_.banks_per_vault;
    case AddrField::kVault: return geom_.vaults;
    case AddrField::kColumn: return geom_.lines_per_row();
  }
  return 1;
}

DecodedAddr AddressMap::decode(Addr addr) const {
  u64 line = (addr >> line_shift_) % capacity_lines_;
  DecodedAddr d;
  // Peel fields from least significant (back of the order array) upward.
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    const u64 size = field_size(*it);
    const u64 value = line % size;
    line /= size;
    switch (*it) {
      case AddrField::kRow: d.row = value; break;
      case AddrField::kRank: d.rank = static_cast<u32>(value); break;
      case AddrField::kBank: d.bank = static_cast<BankId>(value); break;
      case AddrField::kVault: d.vault = static_cast<VaultId>(value); break;
      case AddrField::kColumn: d.column = static_cast<LineId>(value); break;
    }
  }
  return d;
}

Addr AddressMap::encode(const DecodedAddr& d) const {
  u64 line = 0;
  for (AddrField f : order_) {
    const u64 size = field_size(f);
    u64 value = 0;
    switch (f) {
      case AddrField::kRow: value = d.row; break;
      case AddrField::kRank: value = d.rank; break;
      case AddrField::kBank: value = d.bank; break;
      case AddrField::kVault: value = d.vault; break;
      case AddrField::kColumn: value = d.column; break;
    }
    CAMPS_ASSERT(value < size);
    line = line * size + value;
  }
  return line << line_shift_;
}

u64 AddressMap::same_bank_row_stride() const {
  // The stride is the product of the sizes of every field strictly less
  // significant than kRow, times the line size.
  u64 stride = geom_.line_bytes;
  bool below_row = false;
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    if (*it == AddrField::kRow) {
      below_row = true;
      break;
    }
    stride *= field_size(*it);
  }
  CAMPS_ASSERT(below_row);
  return stride;
}

std::string AddressMap::order_name() const {
  std::string out;
  for (AddrField f : order_) {
    switch (f) {
      case AddrField::kRow: out += "Ro"; break;
      case AddrField::kRank: out += "Ra"; break;
      case AddrField::kBank: out += "Ba"; break;
      case AddrField::kVault: out += "Va"; break;
      case AddrField::kColumn: out += "Co"; break;
    }
  }
  return out;
}

}  // namespace camps::hmc
