#include "hmc/vault_controller.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "prefetch/scheme_camps.hpp"

namespace camps::hmc {

using dram::RowBufferOutcome;
using energy::EnergyEvent;

VaultController::VaultController(
    sim::Simulator& sim, VaultId id, const VaultConfig& config,
    std::unique_ptr<prefetch::PrefetchScheme> scheme,
    energy::EnergyModel* energy, StatRegistry* stats, RespondFn respond,
    obs::TraceRecorder* trace)
    : sim_(sim),
      id_(id),
      cfg_(config),
      banks_(),
      buffer_(config.buffer, scheme->make_replacement()),
      scheme_(std::move(scheme)),
      refresh_(cfg_.timing, cfg_.refresh_enabled),
      energy_(energy),
      respond_(std::move(respond)),
      trace_(trace) {
  CAMPS_ASSERT(cfg_.banks > 0 && cfg_.banks <= 32);  // scheduler bank bitmask
  CAMPS_ASSERT(cfg_.read_queue > 0 && cfg_.write_queue > 0);
  CAMPS_ASSERT(cfg_.write_drain_low < cfg_.write_drain_high);
  CAMPS_ASSERT(cfg_.write_drain_high <= cfg_.write_queue);
  banks_.reserve(cfg_.banks);
  for (u32 b = 0; b < cfg_.banks; ++b) banks_.emplace_back(cfg_.timing);
  open_row_refs_.resize(cfg_.banks);
  buffer_hit_ticks_ = cfg_.buffer.hit_latency * sim::kCpuTicksPerCycle;
  if (stats != nullptr) {
    const std::string prefix = "vault" + std::to_string(id_) + ".";
    c_rb_hit_ = &stats->counter(prefix + "rb_hit");
    c_rb_empty_ = &stats->counter(prefix + "rb_empty");
    c_rb_conflict_ = &stats->counter(prefix + "rb_conflict");
    c_buf_hit_ = &stats->counter(prefix + "buffer_hit");
    c_prefetch_ = &stats->counter(prefix + "prefetch_issued");
    h_queue_wait_ = &stats->histogram(prefix + "queue_wait_cycles",
                                      /*bucket_width=*/8, /*num_buckets=*/64);
    // Shared across vaults: the registry hands back the same histogram for
    // every vault, so these aggregate device-wide.
    h_lat_vault_queue_ = &stats->histogram("latency.vault_queue_cycles",
                                           /*bucket_width=*/16,
                                           /*num_buckets=*/128);
    h_lat_bank_service_ = &stats->histogram("latency.bank_service_cycles",
                                            /*bucket_width=*/8,
                                            /*num_buckets=*/64);
    h_lat_buffer_hit_ = &stats->histogram("latency.buffer_hit_cycles",
                                          /*bucket_width=*/2,
                                          /*num_buckets=*/32);
  }
  for (u32 b = 0; b < cfg_.banks; ++b) {
    banks_[b].attach_trace(trace_, id_ * cfg_.banks + b);
  }
  buffer_.attach_trace(trace_, id_, sim::kDramTicksPerCycle);
}

void VaultController::reset_stats() {
  n_rb_hit_ = n_rb_empty_ = n_rb_conflict_ = 0;
  n_reads_ = n_writes_ = 0;
  n_prefetch_issued_ = n_prefetch_dropped_ = 0;
  n_degrade_flushes_ = 0;
  buffer_.reset_stats();
}

void VaultController::degrade_flush() {
  // Drop prefetch work that has not yet touched a bank. Actions whose row
  // copy is already issued keep running: their complete_fetch events are
  // in flight and will insert into the (now empty) buffer harmlessly.
  for (auto it = actions_.begin(); it != actions_.end();) {
    if (!it->fetch_issued) {
      ++n_prefetch_dropped_;
      it = actions_.erase(it);
    } else {
      ++it;
    }
  }
  // Evict everything with the normal bookkeeping so usefulness accounting
  // and dirty writebacks stay consistent with ordinary evictions.
  for (const prefetch::EvictedRow& victim : buffer_.flush()) {
    scheme_->on_prefetch_evicted(victim.id, victim.referenced);
    if (victim.dirty && energy_ != nullptr) {
      energy_->add(EnergyEvent::kRowWriteback);
    }
  }
  scheme_->on_fault_flush();
  ++n_degrade_flushes_;
}

void VaultController::receive(const MemRequest& request,
                              const DecodedAddr& addr, Tick now) {
  CAMPS_ASSERT(addr.vault == id_);
  QueueEntry entry;
  entry.req = request;
  entry.bank = addr.bank;
  entry.row = addr.row;
  entry.column = addr.column;
  entry.enqueue_cycle = cycle_of(now);
  ingress_.push_back(entry);
  schedule_wake_at_cycle(cycle_of(sim::dram_clock().next_edge(now)));
}

bool VaultController::idle() const {
  return ingress_.empty() && rdq_.empty() && wrq_.empty() &&
         actions_.empty() && inflight_ == 0;
}

void VaultController::schedule_wake_at_cycle(u64 cycle) {
  Tick when = tick_of(cycle);
  if (when < sim_.now()) when = sim::dram_clock().next_edge(sim_.now());
  // A pending wake may be far in the future (idle vault waiting for its
  // refresh deadline); an earlier request supersedes it and the stale
  // event becomes a no-op when it fires.
  if (wake_scheduled_ && when >= next_wake_tick_) return;
  wake_scheduled_ = true;
  next_wake_tick_ = when;
  sim_.schedule_at(when, [this, when] {
    if (!wake_scheduled_ || when != next_wake_tick_) return;  // superseded
    wake_scheduled_ = false;
    wake();
  });
}

void VaultController::schedule_next_wake(u64 cycle) {
  const bool work = !ingress_.empty() || !rdq_.empty() || !wrq_.empty() ||
                    !actions_.empty() || refresh_draining_;
  if (work) {
    schedule_wake_at_cycle(cycle + 1);
  } else if (cfg_.refresh_enabled) {
    // Sleep until the next refresh deadline so rows do not silently skip
    // retention maintenance during idle phases.
    schedule_wake_at_cycle(std::max(cycle + 1, refresh_.next_due()));
  }
}

void VaultController::wake() {
  const u64 cycle = cycle_of(sim_.now());
  admit_ingress(cycle);
  // Priority: refresh integrity, then demand data (row hits), then pending
  // row copies (so a CAMPS fetch+precharge lands before another demand
  // reopens the bank), then demand PRE/ACT progress.
  bool used_slot = refresh_step(cycle);
  // While draining for refresh, nothing else may issue — demand ACTs would
  // keep reopening banks and the drain would never converge.
  if (!refresh_draining_) {
    // Aged prefetch work jumps ahead of demand columns once: a copy that
    // lands after its stream has moved on is pure waste.
    bool aged = false;
    for (const auto& action : actions_) {
      if (!action.fetch_issued &&
          cycle >= action.created_cycle + kPrefetchAgingCycles) {
        aged = true;
        break;
      }
    }
    if (aged && !used_slot) used_slot = issue_prefetch(cycle);
    if (!used_slot) used_slot = issue_demand_column(cycle);
    if (!used_slot) used_slot = issue_prefetch(cycle);
    if (!used_slot) advance_demand_bank(cycle);
  }
  schedule_next_wake(cycle);
}

bool VaultController::serve_from_buffer(const QueueEntry& entry, u64 cycle,
                                        bool count_miss) {
  const BankRow key{entry.bank, entry.row};
  const auto stamp = buffer_.insert_stamp(key);
  if (!stamp) {
    if (count_miss) buffer_.count_miss();
    return false;
  }
  // A request that was already waiting when the row landed is a demand the
  // copy happened to serve, not something the prefetch anticipated: it
  // counts toward utilization but not usefulness.
  const bool predates_insert = entry.enqueue_cycle < *stamp;
  buffer_.access(key, entry.column, entry.req.type,
                 /*fill_touch=*/predates_insert);
  if (c_buf_hit_ != nullptr) c_buf_hit_->inc();
  if (energy_ != nullptr) energy_->add(EnergyEvent::kBufferAccess);
  if (h_lat_buffer_hit_ != nullptr) {
    h_lat_buffer_hit_->sample(cfg_.buffer.hit_latency);
  }
  if (h_lat_vault_queue_ != nullptr) {
    h_lat_vault_queue_->sample(
        cpu_cycles_of_dram(cycle - std::min(cycle, entry.enqueue_cycle)));
  }
  if (trace_ != nullptr) {
    trace_->record(obs::Stage::kBufferHit, id_, entry.req.id, tick_of(cycle),
                   tick_of(cycle) + buffer_hit_ticks_);
  }
  prefetch::AccessContext ctx{.bank = entry.bank,
                              .row = entry.row,
                              .line = entry.column,
                              .type = entry.req.type,
                              .outcome = RowBufferOutcome::kHit,
                              .queued_same_row = 0,
                              .dram_cycle = cycle};
  scheme_->on_buffer_hit(ctx);
  if (entry.req.type == AccessType::kRead) {
    respond_(entry.req, tick_of(cycle) + buffer_hit_ticks_);
  }
  return true;
}

void VaultController::admit_ingress(u64 cycle) {
  while (!ingress_.empty()) {
    QueueEntry& entry = ingress_.front();
    if (serve_from_buffer(entry, cycle, /*count_miss=*/true)) {
      ingress_.pop_front();
      continue;
    }
    auto& queue = entry.req.type == AccessType::kRead ? rdq_ : wrq_;
    const u32 limit = entry.req.type == AccessType::kRead ? cfg_.read_queue
                                                          : cfg_.write_queue;
    if (queue.size() >= limit) break;  // backpressure: wait in ingress
    queue.push_back(entry);
    ingress_.pop_front();
  }
}

bool VaultController::refresh_step(u64 cycle) {
  if (!cfg_.refresh_enabled) return false;
  if (!refresh_draining_ && refresh_.due(cycle) &&
      !refresh_.in_progress(cycle)) {
    refresh_draining_ = true;
  }
  if (!refresh_draining_) return false;

  // Close any open bank, one PRE per cycle.
  for (auto& bank : banks_) {
    const dram::BankState s = bank.state(cycle);
    if (s == dram::BankState::kActive || s == dram::BankState::kActivating) {
      if (bank.earliest_precharge(cycle) == cycle) {
        bank.precharge(cycle);
        if (energy_ != nullptr) energy_->add(EnergyEvent::kPrecharge);
        return true;
      }
      return false;  // must wait for this bank's timing
    }
    if (s == dram::BankState::kPrecharging) return false;  // settle first
  }

  // All banks precharged: launch the all-bank refresh.
  for (auto& bank : banks_) bank.refresh(cycle);
  refresh_.start(cycle);
  if (energy_ != nullptr) energy_->add(EnergyEvent::kRefresh);
  refresh_draining_ = false;
  return true;
}

u32 VaultController::queued_same_row(const QueueEntry& entry) const {
  u32 count = 0;
  for (const auto& other : rdq_) {
    if (other.req.id == entry.req.id) continue;
    if (other.bank == entry.bank && other.row == entry.row) ++count;
  }
  return count;
}

void VaultController::classify_if_new(QueueEntry& entry, u64 cycle) {
  if (entry.started) return;
  entry.started = true;
  entry.outcome = banks_[entry.bank].classify(cycle, entry.row);
  switch (entry.outcome) {
    case RowBufferOutcome::kHit:
      ++n_rb_hit_;
      if (c_rb_hit_ != nullptr) c_rb_hit_->inc();
      break;
    case RowBufferOutcome::kEmpty:
      ++n_rb_empty_;
      if (c_rb_empty_ != nullptr) c_rb_empty_->inc();
      break;
    case RowBufferOutcome::kConflict:
      ++n_rb_conflict_;
      if (c_rb_conflict_ != nullptr) c_rb_conflict_->inc();
      break;
  }
}

void VaultController::apply_decision(
    const prefetch::PrefetchDecision& decision, const QueueEntry& entry) {
  if (!decision.any()) return;
  auto enqueue_action = [this](BankId bank, RowId row, bool precharge_after) {
    const BankRow key{bank, row};
    if (buffer_.contains(key)) {
      ++n_prefetch_dropped_;
      return;
    }
    // Duplicate suppression against already-queued actions.
    for (const auto& action : actions_) {
      if (action.bank == bank && action.row == row) {
        ++n_prefetch_dropped_;
        return;
      }
    }
    actions_.push_back(PfAction{.bank = bank,
                                .row = row,
                                .precharge_after = precharge_after,
                                .fetch_issued = false,
                                .fetch_done_cycle = 0,
                                .created_cycle = cycle_of(sim_.now())});
  };
  if (decision.fetch_row) {
    enqueue_action(entry.bank, entry.row, decision.precharge_after);
  }
  for (RowId extra : decision.extra_rows) {
    enqueue_action(entry.bank, extra, false);
  }
}

void VaultController::note_row_reference(BankId bank, RowId row,
                                         LineId line) {
  auto& refs = open_row_refs_[bank];
  if (refs.row != row) refs = OpenRowRefs{row, 0};
  refs.bitmap |= u64{1} << line;
}

u64 VaultController::row_reference_bitmap(BankId bank, RowId row) const {
  const auto& refs = open_row_refs_[bank];
  return refs.row == row ? refs.bitmap : 0;
}

void VaultController::serve_via_fetch(const QueueEntry& entry, u64 cycle,
                                      bool precharge_after) {
  dram::Bank& bank = banks_[entry.bank];
  const u64 done = bank.fetch_row(cycle, entry.req.id);
  if (cfg_.row_fetch_uses_bus) bus_free_cycle_ = done;
  if (energy_ != nullptr) energy_->add(EnergyEvent::kRowFetch);

  const BankId b = entry.bank;
  const RowId row = entry.row;
  const LineId line = entry.column;
  const AccessType type = entry.req.type;
  note_row_reference(b, row, line);
  const u64 seed =
      cfg_.seed_buffer_utilization ? row_reference_bitmap(b, row) : 0;
  sim_.schedule_at(tick_of(done), [this, b, row, line, type, seed, cycle] {
    complete_fetch(b, row, seed, cycle);
    // The demanded line is consumed out of the freshly landed row; it was
    // demanded, not prefetched, so it does not count toward usefulness.
    buffer_.access(BankRow{b, row}, line, type, /*fill_touch=*/true);
  });
  if (entry.req.type == AccessType::kRead) {
    ++n_reads_;
    ++inflight_;
    const MemRequest req = entry.req;
    const Tick ready = tick_of(done) + buffer_hit_ticks_;
    sim_.schedule_at(ready, [this, req, ready] {
      --inflight_;
      respond_(req, ready);
    });
  } else {
    ++n_writes_;
  }
  if (precharge_after) {
    actions_.push_back(PfAction{.bank = entry.bank,
                                .row = entry.row,
                                .precharge_after = true,
                                .fetch_issued = true,
                                .fetch_done_cycle = done,
                                .created_cycle = cycle});
  }
}

bool VaultController::issue_demand_column(u64 cycle) {
  update_drain_mode();
  auto& queue = draining_writes_ ? wrq_ : rdq_;
  if (queue.empty()) return false;

  // Re-check the prefetch buffer: rows may have landed since enqueue.
  for (auto it = queue.begin(); it != queue.end();) {
    if (serve_from_buffer(*it, cycle, /*count_miss=*/false)) {
      it = queue.erase(it);
    } else {
      ++it;
    }
  }
  if (queue.empty()) return false;

  const auto& t = cfg_.timing;

  // First-ready pass: oldest request whose column command can issue now.
  for (auto it = queue.begin(); it != queue.end(); ++it) {
    dram::Bank& bank = banks_[it->bank];
    if (bank.classify(cycle, it->row) != RowBufferOutcome::kHit) continue;
    if (bank.earliest_column(cycle) != cycle) continue;
    const u64 data_start =
        cycle + (it->req.type == AccessType::kRead ? t.tCL : t.tWL);
    if (bus_free_cycle_ > data_start) continue;

    classify_if_new(*it, cycle);
    prefetch::AccessContext ctx{.bank = it->bank,
                                .row = it->row,
                                .line = it->column,
                                .type = it->req.type,
                                .outcome = it->outcome,
                                .queued_same_row = queued_same_row(*it),
                                .dram_cycle = cycle};
    const prefetch::PrefetchDecision decision =
        scheme_->on_demand_access(ctx);

    if (decision.fetch_row && decision.serve_via_buffer &&
        !buffer_.contains(BankRow{it->bank, it->row})) {
      // BASE: the demand rides the row copy itself.
      serve_via_fetch(*it, cycle, decision.precharge_after);
      prefetch::PrefetchDecision extras = decision;
      extras.fetch_row = false;  // the copy is already in flight
      apply_decision(extras, *it);
      queue.erase(it);
      return true;
    }

    note_row_reference(it->bank, it->row, it->column);
    const u64 waited = cycle - std::min(cycle, it->enqueue_cycle);
    if (h_queue_wait_ != nullptr) h_queue_wait_->sample(waited);
    if (h_lat_vault_queue_ != nullptr) {
      h_lat_vault_queue_->sample(cpu_cycles_of_dram(waited));
    }
    if (trace_ != nullptr && waited > 0) {
      trace_->record(obs::Stage::kVaultQueue, id_, it->req.id,
                     tick_of(cycle - waited), tick_of(cycle));
    }
    u64 done;
    if (it->req.type == AccessType::kRead) {
      done = bank.read(cycle, it->req.id);
      ++n_reads_;
      ++inflight_;
      if (energy_ != nullptr) energy_->add(EnergyEvent::kReadLine);
      const MemRequest req = it->req;
      const Tick ready = tick_of(done);
      sim_.schedule_at(ready, [this, req, ready] {
        --inflight_;
        respond_(req, ready);
      });
    } else {
      done = bank.write(cycle, it->req.id);
      ++n_writes_;
      if (energy_ != nullptr) energy_->add(EnergyEvent::kWriteLine);
      // Posted write: completes silently.
    }
    if (h_lat_bank_service_ != nullptr) {
      h_lat_bank_service_->sample(cpu_cycles_of_dram(done - cycle));
    }
    bus_free_cycle_ = done;
    apply_decision(decision, *it);
    if (cfg_.page_policy == PagePolicy::kClosed && !decision.precharge_after) {
      // Closed page: schedule a precharge once no queued demand still
      // targets this row (the executor checks both conditions).
      bool queued = false;
      for (const auto& action : actions_) {
        if (action.bank == it->bank && action.row == it->row) {
          queued = true;
          break;
        }
      }
      if (!queued) {
        actions_.push_back(PfAction{.bank = it->bank,
                                    .row = it->row,
                                    .precharge_after = true,
                                    .fetch_issued = true,
                                    .fetch_done_cycle = cycle,
                                    .created_cycle = cycle});
      }
    }
    queue.erase(it);
    return true;
  }
  return false;
}

bool VaultController::advance_demand_bank(u64 cycle) {
  auto& queue = draining_writes_ ? wrq_ : rdq_;
  if (queue.empty()) return false;
  // Advance the oldest request of each bank (younger requests to the same
  // bank must not interleave PRE/ACT with it); issue at most one command.
  u32 banks_seen = 0;  // bitmask; cfg_.banks <= 32 in any sane config
  for (auto& entry : queue) {
    const u32 bank_bit = 1u << entry.bank;
    if (banks_seen & bank_bit) continue;
    banks_seen |= bank_bit;

    dram::Bank& bank = banks_[entry.bank];
    switch (bank.state(cycle)) {
      case dram::BankState::kActive:
        // Wrong row open (a hit would have issued a column in
        // issue_demand_column, unless only the bus blocked it — then wait).
        if (bank.open_row(cycle) != std::make_optional(entry.row) &&
            bank.earliest_precharge(cycle) == cycle) {
          classify_if_new(entry, cycle);
          bank.precharge(cycle);
          if (energy_ != nullptr) energy_->add(EnergyEvent::kPrecharge);
          return true;
        }
        break;
      case dram::BankState::kPrecharged:
        if (bank.earliest_activate(cycle) == cycle && act_allowed(cycle)) {
          classify_if_new(entry, cycle);
          bank.activate(cycle, entry.row, entry.req.id);
          record_act(cycle);
          if (energy_ != nullptr) energy_->add(EnergyEvent::kActivate);
          return true;
        }
        break;
      default:
        break;  // transient state; wait for it to settle
    }
  }
  return false;
}

void VaultController::update_drain_mode() {
  if (draining_writes_) {
    if (wrq_.size() <= cfg_.write_drain_low) draining_writes_ = false;
  } else {
    if (wrq_.size() >= cfg_.write_drain_high ||
        (rdq_.empty() && !wrq_.empty())) {
      draining_writes_ = true;
    }
  }
}

void VaultController::complete_fetch(BankId bank, RowId row,
                                     u64 seed_bitmap, u64 issue_cycle) {
  const auto result =
      buffer_.insert(BankRow{bank, row}, seed_bitmap, issue_cycle);
  if (!result.inserted) return;
  ++n_prefetch_issued_;
  if (c_prefetch_ != nullptr) c_prefetch_->inc();
  if (result.victim) {
    scheme_->on_prefetch_evicted(result.victim->id, result.victim->referenced);
    if (result.victim->dirty && energy_ != nullptr) {
      energy_->add(EnergyEvent::kRowWriteback);
    }
  }
}

bool VaultController::issue_prefetch(u64 cycle) {
  for (auto it = actions_.begin(); it != actions_.end();) {
    PfAction& action = *it;
    dram::Bank& bank = banks_[action.bank];

    if (action.fetch_issued) {
      // Waiting to precharge after the copy (or, under the closed-page
      // policy, after the column access) completes. Pending demand to the
      // same row defers the close: after a CAMPS fetch those demands drain
      // via the buffer first; under closed page they are row hits we must
      // not destroy.
      if (cycle >= action.fetch_done_cycle &&
          bank.state(cycle) == dram::BankState::kActive &&
          bank.open_row(cycle) == std::make_optional(action.row)) {
        bool demanded = false;
        for (const auto& e : rdq_) {
          if (e.bank == action.bank && e.row == action.row) {
            demanded = true;
            break;
          }
        }
        if (!demanded && bank.earliest_precharge(cycle) == cycle) {
          bank.precharge(cycle);
          if (energy_ != nullptr) energy_->add(EnergyEvent::kPrecharge);
          actions_.erase(it);
          return true;
        }
      } else if (bank.open_row(cycle) != std::make_optional(action.row) &&
                 cycle >= action.fetch_done_cycle) {
        // The row already closed (e.g. refresh drain): nothing left to do.
        it = actions_.erase(it);
        continue;
      }
      ++it;
      continue;
    }

    if (buffer_.contains(BankRow{action.bank, action.row})) {
      ++n_prefetch_dropped_;
      it = actions_.erase(it);
      continue;
    }

    switch (bank.state(cycle)) {
      case dram::BankState::kActive: {
        if (bank.open_row(cycle) == std::make_optional(action.row)) {
          const u64 start = bank.earliest_column(cycle);
          if (start == cycle &&
              (!cfg_.row_fetch_uses_bus || bus_free_cycle_ <= cycle)) {
            const u64 done = bank.fetch_row(cycle);
            if (cfg_.row_fetch_uses_bus) bus_free_cycle_ = done;
            if (energy_ != nullptr) energy_->add(EnergyEvent::kRowFetch);
            const BankId b = action.bank;
            const RowId r = action.row;
            const u64 seed =
                cfg_.seed_buffer_utilization ? row_reference_bitmap(b, r) : 0;
            sim_.schedule_at(tick_of(done), [this, b, r, seed, cycle] {
              complete_fetch(b, r, seed, cycle);
            });
            if (action.precharge_after) {
              action.fetch_issued = true;
              action.fetch_done_cycle = done;
            } else {
              actions_.erase(it);
            }
            return true;
          }
        } else {
          // Another row occupies the bank (MMD extra rows). Close it only
          // if no queued demand still wants it — a prefetch must never
          // turn a pending row hit into a conflict.
          const auto open = bank.open_row(cycle);
          bool demanded = false;
          for (const auto& e : rdq_) {
            if (e.bank == action.bank && open == std::make_optional(e.row)) {
              demanded = true;
              break;
            }
          }
          if (!demanded && bank.earliest_precharge(cycle) == cycle) {
            bank.precharge(cycle);
            if (energy_ != nullptr) energy_->add(EnergyEvent::kPrecharge);
            return true;
          }
        }
        ++it;
        continue;
      }
      case dram::BankState::kPrecharged:
        if (bank.earliest_activate(cycle) == cycle && act_allowed(cycle)) {
          bank.activate(cycle, action.row);
          record_act(cycle);
          if (energy_ != nullptr) energy_->add(EnergyEvent::kActivate);
          return true;
        }
        ++it;
        continue;
      default:
        ++it;
        continue;
    }
  }
  return false;
}

}  // namespace camps::hmc
