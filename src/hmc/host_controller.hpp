// Host-side HMC controller.
//
// Sits between the L3 and the cube's serial links: assigns request ids,
// tracks outstanding reads, invokes per-request completion callbacks, and
// measures main-memory access latency (request submission to response
// delivery) — the raw material of the paper's AMAT metric (Fig. 8).
#pragma once

#include <functional>
#include <unordered_map>

#include "hmc/hmc_device.hpp"

namespace camps::hmc {

class HostController final {
 public:
  using CompletionFn = std::function<void(const MemRequest&)>;

  HostController(sim::Simulator& sim, const HmcConfig& config,
                 prefetch::SchemeKind scheme,
                 const prefetch::SchemeParams& params, StatRegistry* stats,
                 obs::TraceRecorder* trace = nullptr);

  /// Issues a read; `on_done` fires when the response returns.
  u64 read(Addr addr, CoreId core, CompletionFn on_done);

  /// Issues a posted write (no completion callback).
  u64 write(Addr addr, CoreId core);

  bool idle() const { return outstanding_.empty() && device_.idle(); }

  HmcDevice& device() { return device_; }
  const HmcDevice& device() const { return device_; }

  // --- latency statistics ----------------------------------------------
  u64 reads_issued() const { return reads_; }
  u64 writes_issued() const { return writes_; }
  u64 reads_completed() const { return completed_; }
  /// Mean read latency in CPU cycles (submission -> delivery).
  double mean_read_latency_cycles() const;
  const Histogram& latency_histogram() const { return latency_; }

  /// Zeroes latency statistics and the device's counters (outstanding
  /// requests are unaffected); marks the warmup boundary.
  void reset_stats();

  /// Audits the id/outstanding bookkeeping, then the whole device.
  void audit(check::AuditReporter& reporter) const;

 private:
  friend struct check::TestCorruptor;
  void deliver(const MemRequest& request);

  sim::Simulator& sim_;
  HmcDevice device_;
  obs::TraceRecorder* trace_ = nullptr;
  // Keyed lookup/erase only — never iterated for ordered output, so the
  // unspecified iteration order cannot leak into results.
  std::unordered_map<u64, CompletionFn> outstanding_;  // camps-lint: allow(determinism)
  Histogram latency_{/*bucket_width=*/25, /*num_buckets=*/128};
  Histogram* h_lat_total_read_ = nullptr;  ///< Registry copy of latency_.
  u64 next_id_ = 1;
  u64 reads_ = 0, writes_ = 0, completed_ = 0;
  u64 latency_cycles_total_ = 0;
};

static_assert(check::Auditable<HostController>);

}  // namespace camps::hmc
