// Host-side HMC controller.
//
// Sits between the L3 and the cube's serial links: assigns request ids,
// tracks outstanding reads, invokes per-request completion callbacks, and
// measures main-memory access latency (request submission to response
// delivery) — the raw material of the paper's AMAT metric (Fig. 8).
//
// Fault recovery: when the device carries a FaultPlan, every read arms a
// timeout. A read that times out is re-issued under a fresh id after a
// linear backoff; one that exhausts the retry budget completes poisoned
// (MemRequest::poisoned) so the core side can account the loss instead of
// hanging. Responses to superseded ids are counted, not delivered. None of
// this machinery exists at runtime when faults are disabled — no timer
// events, no extra state — preserving byte-identical fault-free runs.
#pragma once

#include <functional>
#include <unordered_map>

#include "hmc/hmc_device.hpp"
#include "sim/timeout.hpp"

namespace camps::hmc {

class HostController final {
 public:
  using CompletionFn = std::function<void(const MemRequest&)>;

  HostController(sim::Simulator& sim, const HmcConfig& config,
                 prefetch::SchemeKind scheme,
                 const prefetch::SchemeParams& params, StatRegistry* stats,
                 obs::TraceRecorder* trace = nullptr);

  /// Issues a read; `on_done` fires when the response returns (or when the
  /// request is poisoned after exhausting the retry budget — check
  /// MemRequest::poisoned).
  u64 read(Addr addr, CoreId core, CompletionFn on_done);

  /// Issues a posted write (no completion callback).
  u64 write(Addr addr, CoreId core);

  bool idle() const { return outstanding_.empty() && device_.idle(); }

  HmcDevice& device() { return device_; }
  const HmcDevice& device() const { return device_; }

  // --- latency statistics ----------------------------------------------
  u64 reads_issued() const { return reads_; }
  u64 writes_issued() const { return writes_; }
  u64 reads_completed() const { return completed_; }
  /// Reads completed with the poison marker after retry exhaustion.
  u64 reads_poisoned() const { return poisoned_; }
  /// Timeout-driven re-issues (each consumes one unit of retry budget).
  u64 retries_issued() const { return retries_; }
  /// Mean read latency in CPU cycles (submission -> delivery).
  double mean_read_latency_cycles() const;
  const Histogram& latency_histogram() const { return latency_; }

  /// Zeroes latency statistics and the device's counters (outstanding
  /// requests are unaffected); marks the warmup boundary.
  void reset_stats();

  /// Audits the id/outstanding bookkeeping, then the whole device.
  void audit(check::AuditReporter& reporter) const;

 private:
  friend struct check::TestCorruptor;

  /// One outstanding read. `attempt` counts issues of this logical request
  /// (1 = original); each retry re-keys the entry under a fresh id so a
  /// late response to a superseded id is identifiable instead of being
  /// mistaken for the retry's answer.
  struct Pending {
    CompletionFn on_done;
    Addr addr = 0;
    CoreId core = 0;
    Tick first_created = 0;  ///< Original issue; latency baseline.
    u32 attempt = 1;
    sim::TimeoutScheduler::Handle timer = 0;  ///< 0: no timer armed.
  };

  void deliver(const MemRequest& request);
  void arm_timeout(u64 id, Tick delay);
  void on_timeout(u64 id);
  /// Re-submits `pending` under a fresh id after `backoff` ticks.
  void reissue(Pending pending, Tick backoff);

  sim::Simulator& sim_;
  HmcDevice device_;
  obs::TraceRecorder* trace_ = nullptr;
  // Keyed lookup/erase only — never iterated for ordered output, so the
  // unspecified iteration order cannot leak into results.
  std::unordered_map<u64, Pending> outstanding_;  // camps-lint: allow(determinism)
  sim::TimeoutScheduler timeouts_;
  Histogram latency_{/*bucket_width=*/25, /*num_buckets=*/128};
  Histogram* h_lat_total_read_ = nullptr;  ///< Registry copy of latency_.
  u64 next_id_ = 1;
  u64 reads_ = 0, writes_ = 0, completed_ = 0;
  u64 poisoned_ = 0, retries_ = 0;
  u64 latency_cycles_total_ = 0;
};

static_assert(check::Auditable<HostController>);

}  // namespace camps::hmc
