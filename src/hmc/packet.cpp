// packet.hpp is header-only; this translation unit pins its static
// expectations under the project's warning flags.
#include "hmc/packet.hpp"

namespace camps::hmc {

static_assert(flits_for(PacketKind::kReadReq) == 1);
static_assert(flits_for(PacketKind::kWriteReq) == 5);
static_assert(flits_for(PacketKind::kReadResp) == 5);

}  // namespace camps::hmc
