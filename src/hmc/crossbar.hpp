// The HMC logic-layer crossbar between link ports and vault controllers.
//
// A 4x32 crossbar at logic-layer clock speeds has ample internal bandwidth;
// the performance-relevant effect is its pipeline latency plus head-of-line
// arbitration at each vault port. We model a fixed traversal latency and a
// per-output-port serializer (one packet per vault port per controller
// cycle), which captures the congestion that matters without simulating
// individual switch stages.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "obs/trace_recorder.hpp"

namespace camps::fault {
class FaultPlan;
}  // namespace camps::fault

namespace camps::hmc {

struct CrossbarParams {
  /// Fixed traversal latency in ticks (default 2.5 ns: a couple of logic
  /// layer pipeline stages).
  Tick latency_ticks = 60;
  /// Minimum spacing between packets delivered to the same output port,
  /// in ticks (default: one 800 MHz controller cycle).
  Tick port_interval_ticks = 30;
};

class Crossbar {
 public:
  Crossbar(u32 output_ports, const CrossbarParams& params = {});

  /// Outcome of one traversal attempt.
  struct Routed {
    Tick deliver = 0;     ///< Meaningless when dropped.
    bool dropped = false; ///< Grant lost (injected fault); never forwarded.
  };

  /// Routes a packet submitted at `now` toward `port`; returns delivery
  /// tick at that port. Per-port FIFO order is preserved. `trace_id` tags
  /// the traversal span when tracing is armed.
  Tick route(Tick now, u32 port, u64 trace_id = 0) {
    return route_ex(now, port, trace_id).deliver;
  }

  /// route() variant exposing grant drops under fault injection. A dropped
  /// grant does not advance the port's schedule — the packet simply never
  /// traversed.
  Routed route_ex(Tick now, u32 port, u64 trace_id = 0);

  /// Arms span recording (stage kXbarDown or kXbarUp, lane = output port).
  void attach_trace(obs::TraceRecorder* trace, obs::Stage stage) {
    trace_ = trace;
    trace_stage_ = stage;
  }

  /// Arms fault injection. `unit_base` offsets this crossbar's ports in
  /// the plan's sequence space so the down and up crossbars draw
  /// independent decision streams.
  void attach_faults(fault::FaultPlan* plan, u32 unit_base) {
    plan_ = plan;
    fault_unit_base_ = unit_base;
  }

  u64 packets_routed() const { return packets_; }
  u64 grants_dropped() const { return drops_; }
  u32 ports() const { return static_cast<u32>(port_free_.size()); }

 private:
  CrossbarParams p_;
  obs::TraceRecorder* trace_ = nullptr;
  obs::Stage trace_stage_ = obs::Stage::kXbarDown;
  fault::FaultPlan* plan_ = nullptr;
  u32 fault_unit_base_ = 0;
  std::vector<Tick> port_free_;
  u64 packets_ = 0;
  u64 drops_ = 0;
};

}  // namespace camps::hmc
