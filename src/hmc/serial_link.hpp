// Full-duplex HMC serial link (Table I: 4 links, 16 input + 16 output
// lanes, 12.5 Gbps per lane).
//
// Each direction is an independent serializer: 16 lanes x 12.5 Gbps =
// 25 GB/s, i.e. one 16 B flit every 0.64 ns. The tick quantum (1/24 ns)
// cannot represent 0.64 ns exactly, so each packet's serialization time is
// rounded UP to whole ticks — under-reporting link bandwidth by < 3%,
// which is conservative for prefetching results (links look slightly more
// congested than reality, never less). A fixed SerDes+flight latency is
// added on top.
#pragma once

#include "common/types.hpp"
#include "hmc/packet.hpp"
#include "obs/trace_recorder.hpp"

namespace camps::hmc {

struct LinkParams {
  u32 lanes = 16;
  double gbps_per_lane = 12.5;
  /// One-way SerDes + propagation latency, in ticks (default 4 ns).
  Tick flight_ticks = 96;

  /// Link power management (extension; cf. Ahn et al., IEEE TVLSI 2016 —
  /// the paper's reference [13]): after `sleep_timeout` idle ticks the
  /// SerDes drops into a low-power state and the next packet pays
  /// `wake_ticks` before serialization starts. Disabled by default — the
  /// paper's configuration keeps links always on.
  bool power_management = false;
  Tick sleep_timeout = 24 * 100;  ///< 100 ns of idleness.
  Tick wake_ticks = 24 * 40;      ///< 40 ns SerDes retrain.
};

/// One direction of one link: a bandwidth-limited FIFO pipe.
class LinkDirection {
 public:
  explicit LinkDirection(const LinkParams& params = {});

  /// A packet's passage through this direction: serialization begins at
  /// `start` (>= submission time when the pipe is backed up or waking) and
  /// the far end receives the last flit at `deliver`.
  struct Transfer {
    Tick start = 0;
    Tick deliver = 0;
  };

  /// Accepts a packet at `now`; returns its delivery tick at the far end.
  /// Packets serialize in submission order (FIFO). `trace_id` tags the
  /// serialization span when tracing is armed.
  Tick submit(Tick now, u32 flits, u64 trace_id = 0) {
    return submit_ex(now, flits, trace_id).deliver;
  }

  /// submit() variant exposing when serialization actually started, for
  /// host-queue-wait accounting.
  Transfer submit_ex(Tick now, u32 flits, u64 trace_id = 0);

  /// Arms span recording for this direction (stage kLinkDown or kLinkUp,
  /// lane = link index).
  void attach_trace(obs::TraceRecorder* trace, obs::Stage stage, u32 track) {
    trace_ = trace;
    trace_stage_ = stage;
    trace_track_ = track;
  }

  /// Serialization ticks for `flits` flits at this link's bandwidth.
  Tick serialization_ticks(u32 flits) const;

  Tick busy_until() const { return busy_until_; }
  u64 flits_carried() const { return flits_carried_; }
  u64 packets_carried() const { return packets_carried_; }
  /// Ticks the link spent serializing (for utilization stats).
  Tick busy_ticks() const { return busy_ticks_; }

  // --- power management statistics (0 unless enabled) -------------------
  u64 wakeups() const { return wakeups_; }
  Tick ticks_asleep() const { return ticks_asleep_; }

  /// Zeroes traffic statistics (the in-flight reservation is untouched);
  /// marks the warmup boundary.
  void reset_stats() {
    busy_ticks_ = 0;
    flits_carried_ = 0;
    packets_carried_ = 0;
    wakeups_ = 0;
    ticks_asleep_ = 0;
  }

 private:
  LinkParams p_;
  obs::TraceRecorder* trace_ = nullptr;
  obs::Stage trace_stage_ = obs::Stage::kLinkDown;
  u32 trace_track_ = 0;
  Tick busy_until_ = 0;
  Tick busy_ticks_ = 0;
  u64 flits_carried_ = 0;
  u64 packets_carried_ = 0;
  u64 wakeups_ = 0;
  Tick ticks_asleep_ = 0;
};

/// A full-duplex link: requests flow downstream, responses upstream.
class SerialLink {
 public:
  explicit SerialLink(const LinkParams& params = {})
      : down_(params), up_(params) {}

  LinkDirection& downstream() { return down_; }
  LinkDirection& upstream() { return up_; }
  const LinkDirection& downstream() const { return down_; }
  const LinkDirection& upstream() const { return up_; }

 private:
  LinkDirection down_;
  LinkDirection up_;
};

}  // namespace camps::hmc
