// Full-duplex HMC serial link (Table I: 4 links, 16 input + 16 output
// lanes, 12.5 Gbps per lane).
//
// Each direction is an independent serializer: 16 lanes x 12.5 Gbps =
// 25 GB/s, i.e. one 16 B flit every 0.64 ns. The tick quantum (1/24 ns)
// cannot represent 0.64 ns exactly, so each packet's serialization time is
// rounded UP to whole ticks — under-reporting link bandwidth by < 3%,
// which is conservative for prefetching results (links look slightly more
// congested than reality, never less). A fixed SerDes+flight latency is
// added on top.
// Reliability (fault-injection extension): each direction carries a
// sequence-numbered retry buffer. Every packet is held until the far end's
// implicit acknowledgement returns (one flight time after delivery); a
// CRC-failed transfer is replayed from the buffer — re-serialized after
// the retry request comes back — so the far end still receives the packet
// byte-identically, just later. Token-based flow control (link_tokens > 0)
// models the HMC credit loop: a packet may not start serializing until
// enough flit credits have returned from previously delivered packets.
// Both mechanisms are inert (zero cost, zero state) unless a FaultPlan is
// attached or tokens are configured.
#pragma once

#include <deque>

#include "common/types.hpp"
#include "hmc/packet.hpp"
#include "obs/trace_recorder.hpp"

namespace camps::fault {
class FaultPlan;
}  // namespace camps::fault

namespace camps::hmc {

struct LinkParams {
  u32 lanes = 16;
  double gbps_per_lane = 12.5;
  /// One-way SerDes + propagation latency, in ticks (default 4 ns).
  Tick flight_ticks = 96;

  /// Flow-control credits per direction, in flits. 0 disables the token
  /// loop entirely (the paper's configuration: links are never the
  /// credit-limited resource). When enabled, a packet's serialization
  /// stalls until enough credits have returned.
  u32 tokens = 0;
  /// Credit-loop latency: a delivered packet's tokens return this long
  /// after delivery (default: one flight time back).
  Tick token_return_ticks = 96;

  /// Link power management (extension; cf. Ahn et al., IEEE TVLSI 2016 —
  /// the paper's reference [13]): after `sleep_timeout` idle ticks the
  /// SerDes drops into a low-power state and the next packet pays
  /// `wake_ticks` before serialization starts. Disabled by default — the
  /// paper's configuration keeps links always on.
  bool power_management = false;
  Tick sleep_timeout = 24 * 100;  ///< 100 ns of idleness.
  Tick wake_ticks = 24 * 40;      ///< 40 ns SerDes retrain.
};

/// One direction of one link: a bandwidth-limited FIFO pipe.
class LinkDirection {
 public:
  explicit LinkDirection(const LinkParams& params = {});

  /// A packet's passage through this direction: serialization begins at
  /// `start` (>= submission time when the pipe is backed up, waking, or
  /// waiting for flow-control credits) and the far end receives the last
  /// flit at `deliver`.
  struct Transfer {
    Tick start = 0;
    Tick deliver = 0;
    /// Retry-buffer sequence number assigned to this packet.
    u64 sequence = 0;
    /// CRC replays this packet needed before clean delivery (0 normally).
    u32 replays = 0;
    /// The transfer was lost beyond the retry buffer's ability to recover
    /// (injected unrecoverable fault): `deliver` is meaningless and the
    /// caller must not forward the packet. Recovery is the requester's
    /// problem (host timeout path).
    bool dropped = false;
  };

  /// Accepts a packet at `now`; returns its delivery tick at the far end.
  /// Packets serialize in submission order (FIFO). `trace_id` tags the
  /// serialization span when tracing is armed.
  Tick submit(Tick now, u32 flits, u64 trace_id = 0) {
    return submit_ex(now, flits, trace_id).deliver;
  }

  /// submit() variant exposing when serialization actually started, for
  /// host-queue-wait accounting.
  Transfer submit_ex(Tick now, u32 flits, u64 trace_id = 0);

  /// Arms span recording for this direction (stage kLinkDown or kLinkUp,
  /// lane = link index).
  void attach_trace(obs::TraceRecorder* trace, obs::Stage stage, u32 track) {
    trace_ = trace;
    trace_stage_ = stage;
    trace_track_ = track;
  }

  /// Arms fault injection: `plan` decides which packets CRC-fail or drop.
  /// `link_index` identifies this link in the plan's per-site sequence
  /// space; `upstream` selects the direction's fault sites.
  void attach_faults(fault::FaultPlan* plan, u32 link_index, bool upstream) {
    plan_ = plan;
    fault_unit_ = link_index;
    fault_upstream_ = upstream;
  }

  /// Serialization ticks for `flits` flits at this link's bandwidth.
  Tick serialization_ticks(u32 flits) const;

  Tick busy_until() const { return busy_until_; }
  u64 flits_carried() const { return flits_carried_; }
  u64 packets_carried() const { return packets_carried_; }
  /// Ticks the link spent serializing (for utilization stats).
  Tick busy_ticks() const { return busy_ticks_; }

  // --- power management statistics (0 unless enabled) -------------------
  u64 wakeups() const { return wakeups_; }
  Tick ticks_asleep() const { return ticks_asleep_; }

  // --- reliability statistics (0 unless faults/tokens armed) ------------
  u64 crc_errors() const { return crc_errors_; }
  u64 replays() const { return replays_; }
  u64 drops() const { return drops_; }
  /// Packets held in the retry buffer awaiting acknowledgement, as of the
  /// last submit (acks are reaped lazily).
  size_t retry_buffer_depth() const { return retry_buffer_.size(); }
  /// Flow-control credits currently available (== params.tokens when the
  /// loop is disabled or idle).
  u32 tokens_available() const { return tokens_available_; }
  /// Credits still travelling back from delivered packets.
  u32 tokens_pending() const;

  /// Zeroes traffic statistics (the in-flight reservation is untouched);
  /// marks the warmup boundary.
  void reset_stats() {
    busy_ticks_ = 0;
    flits_carried_ = 0;
    packets_carried_ = 0;
    wakeups_ = 0;
    ticks_asleep_ = 0;
    crc_errors_ = 0;
    replays_ = 0;
    drops_ = 0;
  }

 private:
  /// A packet parked in the retry buffer until its ack returns.
  struct RetryEntry {
    u64 sequence = 0;
    u32 flits = 0;
    Tick ack_tick = 0;  ///< When the far end's acknowledgement arrives.
  };
  /// Tokens on their way back from a delivered packet.
  struct TokenReturn {
    Tick at = 0;
    u32 flits = 0;
  };

  /// Reaps acknowledged retry entries and returned tokens up to `now`.
  void reap(Tick now);

  LinkParams p_;
  obs::TraceRecorder* trace_ = nullptr;
  obs::Stage trace_stage_ = obs::Stage::kLinkDown;
  u32 trace_track_ = 0;
  fault::FaultPlan* plan_ = nullptr;
  u32 fault_unit_ = 0;
  bool fault_upstream_ = false;
  Tick busy_until_ = 0;
  Tick busy_ticks_ = 0;
  u64 flits_carried_ = 0;
  u64 packets_carried_ = 0;
  u64 wakeups_ = 0;
  Tick ticks_asleep_ = 0;

  // Reliability state. All empty/zero when faults and tokens are off.
  u64 seq_next_ = 0;
  std::deque<RetryEntry> retry_buffer_;   ///< FIFO by ack_tick.
  std::deque<TokenReturn> token_returns_; ///< FIFO by return tick.
  u32 tokens_available_ = 0;  ///< Initialized from p_.tokens.
  u64 crc_errors_ = 0;
  u64 replays_ = 0;
  u64 drops_ = 0;
};

/// A full-duplex link: requests flow downstream, responses upstream.
class SerialLink {
 public:
  explicit SerialLink(const LinkParams& params = {})
      : down_(params), up_(params) {}

  LinkDirection& downstream() { return down_; }
  LinkDirection& upstream() { return up_; }
  const LinkDirection& downstream() const { return down_; }
  const LinkDirection& upstream() const { return up_; }

 private:
  LinkDirection down_;
  LinkDirection up_;
};

}  // namespace camps::hmc
