#include "hmc/serial_link.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "sim/clock.hpp"

namespace camps::hmc {

LinkDirection::LinkDirection(const LinkParams& params) : p_(params) {
  CAMPS_ASSERT(p_.lanes > 0);
  CAMPS_ASSERT(p_.gbps_per_lane > 0.0);
}

Tick LinkDirection::serialization_ticks(u32 flits) const {
  // bytes/ns = lanes * gbps / 8; ticks = bytes / (bytes/ns) * ticksPerNs.
  const double bytes = static_cast<double>(flits) * kFlitBytes;
  const double bytes_per_ns = static_cast<double>(p_.lanes) * p_.gbps_per_lane / 8.0;
  const double ns = bytes / bytes_per_ns;
  return static_cast<Tick>(std::ceil(ns * static_cast<double>(sim::kTicksPerNs)));
}

LinkDirection::Transfer LinkDirection::submit_ex(Tick now, u32 flits,
                                                 u64 trace_id) {
  CAMPS_ASSERT(flits > 0);
  Tick start = std::max(now, busy_until_);
  if (p_.power_management && packets_carried_ > 0 &&
      now > busy_until_ && now - busy_until_ > p_.sleep_timeout) {
    // The link slept through the idle gap; the SerDes must retrain before
    // this packet serializes.
    ticks_asleep_ += (now - busy_until_) - p_.sleep_timeout;
    ++wakeups_;
    start = now + p_.wake_ticks;
  }
  const Tick ser = serialization_ticks(flits);
  busy_until_ = start + ser;
  busy_ticks_ += ser;
  flits_carried_ += flits;
  ++packets_carried_;
  const Tick deliver = busy_until_ + p_.flight_ticks;
  if (trace_ != nullptr) {
    trace_->record(trace_stage_, trace_track_, trace_id, start, deliver);
  }
  return Transfer{start, deliver};
}

}  // namespace camps::hmc
