#include "hmc/serial_link.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "fault/fault_plan.hpp"
#include "sim/clock.hpp"

namespace camps::hmc {

LinkDirection::LinkDirection(const LinkParams& params)
    : p_(params), tokens_available_(params.tokens) {
  CAMPS_ASSERT(p_.lanes > 0);
  CAMPS_ASSERT(p_.gbps_per_lane > 0.0);
}

Tick LinkDirection::serialization_ticks(u32 flits) const {
  // bytes/ns = lanes * gbps / 8; ticks = bytes / (bytes/ns) * ticksPerNs.
  const double bytes = static_cast<double>(flits) * kFlitBytes;
  const double bytes_per_ns = static_cast<double>(p_.lanes) * p_.gbps_per_lane / 8.0;
  const double ns = bytes / bytes_per_ns;
  return static_cast<Tick>(std::ceil(ns * static_cast<double>(sim::kTicksPerNs)));
}

u32 LinkDirection::tokens_pending() const {
  u32 pending = 0;
  for (const TokenReturn& t : token_returns_) pending += t.flits;
  return pending;
}

void LinkDirection::reap(Tick now) {
  while (!retry_buffer_.empty() && retry_buffer_.front().ack_tick <= now) {
    retry_buffer_.pop_front();
  }
  while (!token_returns_.empty() && token_returns_.front().at <= now) {
    tokens_available_ += token_returns_.front().flits;
    token_returns_.pop_front();
  }
}

LinkDirection::Transfer LinkDirection::submit_ex(Tick now, u32 flits,
                                                 u64 trace_id) {
  CAMPS_ASSERT(flits > 0);
  reap(now);
  Tick start = std::max(now, busy_until_);

  // Flow control: serialization may not begin until enough credits are on
  // hand. Credits return in FIFO order, so draining the pending queue from
  // the front finds the earliest tick with a sufficient balance.
  if (p_.tokens > 0) {
    CAMPS_ASSERT_MSG(flits <= p_.tokens,
                     "packet larger than the whole token pool");
    Tick credit_ready = start;
    while (tokens_available_ < flits) {
      CAMPS_ASSERT_MSG(!token_returns_.empty(),
                       "token accounting lost credits");
      credit_ready = std::max(credit_ready, token_returns_.front().at);
      tokens_available_ += token_returns_.front().flits;
      token_returns_.pop_front();
    }
    if (credit_ready > start && plan_ != nullptr) {
      plan_->count_token_stall_ticks(credit_ready - start);
    }
    start = std::max(start, credit_ready);
    tokens_available_ -= flits;
  }

  if (p_.power_management && packets_carried_ > 0 &&
      now > busy_until_ && now - busy_until_ > p_.sleep_timeout) {
    // The link slept through the idle gap; the SerDes must retrain before
    // this packet serializes.
    ticks_asleep_ += (now - busy_until_) - p_.sleep_timeout;
    ++wakeups_;
    start = std::max(start, now + p_.wake_ticks);
  }

  const Tick ser = serialization_ticks(flits);
  busy_until_ = start + ser;
  busy_ticks_ += ser;
  flits_carried_ += flits;
  ++packets_carried_;
  Tick deliver = busy_until_ + p_.flight_ticks;

  Transfer xfer;
  xfer.start = start;
  xfer.sequence = seq_next_++;

  if (plan_ != nullptr) {
    using fault::Site;
    const Site crc_site =
        fault_upstream_ ? Site::kLinkUpCrc : Site::kLinkDownCrc;
    const Site drop_site =
        fault_upstream_ ? Site::kLinkUpDrop : Site::kLinkDownDrop;

    if (plan_->roll(drop_site, fault_unit_)) {
      // Lost beyond the retry buffer's reach (models retry-buffer overflow
      // or a persistent lane failure). The link time was spent; the packet
      // never arrives and is not parked for replay — recovery is the
      // requester's problem (host timeout path).
      ++drops_;
      plan_->count_link_drop();
      xfer.dropped = true;
      if (trace_ != nullptr) {
        trace_->record(trace_stage_, trace_track_, trace_id, start,
                       busy_until_);
      }
      if (p_.tokens > 0) {
        // The credits come back regardless (the link-level timeout frees
        // the far-end buffer slot) — otherwise every drop would shrink the
        // pool until the link deadlocks.
        token_returns_.push_back({busy_until_ + p_.token_return_ticks, flits});
      }
      return xfer;
    }

    // CRC-failed attempts replay from the retry buffer: the corruption is
    // detected at the far end (the delivery flight already in `deliver`),
    // the retry request travels back (retry_overhead), and the buffered
    // copy re-serializes behind whatever else the link accepted meanwhile —
    // delivering the identical flits under the same sequence number, just
    // later. Each replay re-rolls, so bursty CRC faults compound; the
    // bound is only a safety net against rate = 1.0 configurations.
    constexpr u32 kMaxReplays = 8;
    const Tick first_deliver = deliver;
    const Tick overhead = plan_->config().link_retry_overhead_ticks;
    while (xfer.replays < kMaxReplays && plan_->roll(crc_site, fault_unit_)) {
      ++crc_errors_;
      ++replays_;
      ++xfer.replays;
      plan_->count_crc_error();
      const Tick replay_start = std::max(busy_until_, deliver + overhead);
      busy_until_ = replay_start + ser;
      busy_ticks_ += ser;
      deliver = busy_until_ + p_.flight_ticks;
    }
    if (xfer.replays > 0) plan_->count_replay(deliver - first_deliver);

    // Park the packet until the far end's acknowledgement returns (one
    // flight after clean delivery). Only maintained under fault injection:
    // without a plan no replay can ever read it, and the fault-free hot
    // path stays free of deque churn.
    retry_buffer_.push_back({xfer.sequence, flits, deliver + p_.flight_ticks});
  }

  if (trace_ != nullptr) {
    trace_->record(trace_stage_, trace_track_, trace_id, start, deliver);
  }
  if (p_.tokens > 0) {
    token_returns_.push_back({deliver + p_.token_return_ticks, flits});
  }
  xfer.deliver = deliver;
  return xfer;
}

}  // namespace camps::hmc
