#include "hmc/host_controller.hpp"

#include <string>
#include <utility>

namespace camps::hmc {

HostController::HostController(sim::Simulator& sim, const HmcConfig& config,
                               prefetch::SchemeKind scheme,
                               const prefetch::SchemeParams& params,
                               StatRegistry* stats, obs::TraceRecorder* trace)
    : sim_(sim),
      device_(sim, config, scheme, params, stats,
              [this](const MemRequest& req) { deliver(req); }, trace),
      trace_(trace),
      timeouts_(sim) {
  if (stats != nullptr) {
    h_lat_total_read_ = &stats->histogram("latency.total_read_cycles",
                                          /*bucket_width=*/32,
                                          /*num_buckets=*/128);
  }
}

u64 HostController::read(Addr addr, CoreId core, CompletionFn on_done) {
  MemRequest req;
  req.id = next_id_++;
  req.addr = addr;
  req.type = AccessType::kRead;
  req.core = core;
  req.created = sim_.now();
  Pending pending;
  pending.on_done = std::move(on_done);
  pending.addr = addr;
  pending.core = core;
  pending.first_created = req.created;
  const auto [it, inserted] = outstanding_.emplace(req.id, std::move(pending));
  CAMPS_ASSERT(inserted);
  ++reads_;
  const auto& fault_cfg = device_.config().fault;
  if (device_.fault_plan() != nullptr && fault_cfg.host_timeout_ticks > 0) {
    arm_timeout(req.id, fault_cfg.host_timeout_ticks);
  }
  device_.submit(req, sim_.now());
  return req.id;
}

u64 HostController::write(Addr addr, CoreId core) {
  MemRequest req;
  req.id = next_id_++;
  req.addr = addr;
  req.type = AccessType::kWrite;
  req.core = core;
  req.created = sim_.now();
  ++writes_;
  device_.submit(req, sim_.now());
  return req.id;
}

void HostController::arm_timeout(u64 id, Tick delay) {
  const auto it = outstanding_.find(id);
  CAMPS_ASSERT(it != outstanding_.end());
  it->second.timer = timeouts_.arm(delay, [this, id] { on_timeout(id); });
}

void HostController::on_timeout(u64 id) {
  const auto it = outstanding_.find(id);
  CAMPS_ASSERT_MSG(it != outstanding_.end(), "timeout for unknown request");
  fault::FaultPlan* plan = device_.fault_plan();
  CAMPS_ASSERT_MSG(plan != nullptr, "timeout armed without a fault plan");
  const auto& fault_cfg = device_.config().fault;
  Pending pending = std::move(it->second);
  outstanding_.erase(it);
  pending.timer = 0;
  if (pending.attempt > fault_cfg.host_retry_budget) {
    // Retry budget exhausted: complete the request poisoned so the core
    // can account the loss instead of stalling forever.
    MemRequest req;
    req.id = id;
    req.addr = pending.addr;
    req.type = AccessType::kRead;
    req.core = pending.core;
    req.created = pending.first_created;
    req.poisoned = true;
    ++poisoned_;
    plan->count_host_poison(sim_.now() - pending.first_created);
    if (trace_ != nullptr) {
      trace_->record(obs::Stage::kHostRead, req.core, req.id,
                     pending.first_created, sim_.now());
    }
    if (pending.on_done) pending.on_done(req);
    return;
  }
  // Linear backoff: the n-th retry waits n backoff periods before
  // re-entering the cube, spacing repeated attempts under a fault burst.
  const Tick backoff = fault_cfg.host_backoff_ticks * pending.attempt;
  ++retries_;
  plan->count_host_retry();
  reissue(std::move(pending), backoff);
}

void HostController::reissue(Pending pending, Tick backoff) {
  // A fresh id per attempt: if the "lost" original (or its response) is
  // merely late, its delivery is detected as stale instead of being
  // double-counted as the retry's answer.
  const u64 id = next_id_++;
  pending.attempt += 1;
  const auto& fault_cfg = device_.config().fault;
  const Tick timeout = fault_cfg.host_timeout_ticks;
  const auto [it, inserted] = outstanding_.emplace(id, std::move(pending));
  CAMPS_ASSERT(inserted);
  if (timeout > 0) arm_timeout(id, backoff + timeout);
  sim_.schedule(backoff, [this, id] {
    const auto entry = outstanding_.find(id);
    if (entry == outstanding_.end()) return;  // poisoned meanwhile
    MemRequest req;
    req.id = id;
    req.addr = entry->second.addr;
    req.type = AccessType::kRead;
    req.core = entry->second.core;
    req.created = sim_.now();
    device_.submit(req, sim_.now());
  });
}

void HostController::deliver(const MemRequest& request) {
  const auto it = outstanding_.find(request.id);
  if (it == outstanding_.end()) {
    // Under fault injection a response can race its own timeout: the retry
    // superseded this id, or the poison path already completed it.
    fault::FaultPlan* plan = device_.fault_plan();
    if (plan != nullptr) {
      plan->count_late_response();
      return;
    }
    CAMPS_ASSERT_MSG(false, "response for unknown request");
  }
  Pending& pending = it->second;
  if (pending.timer != 0) timeouts_.cancel(pending.timer);
  const u64 cycles =
      (sim_.now() - pending.first_created) / sim::kCpuTicksPerCycle;
  latency_.sample(cycles);
  if (h_lat_total_read_ != nullptr) h_lat_total_read_->sample(cycles);
  if (trace_ != nullptr) {
    trace_->record(obs::Stage::kHostRead, request.core, request.id,
                   pending.first_created, sim_.now());
  }
  if (pending.attempt > 1) {
    device_.fault_plan()->count_host_recovery(sim_.now() -
                                              pending.first_created);
  }
  latency_cycles_total_ += cycles;
  ++completed_;
  CompletionFn on_done = std::move(pending.on_done);
  outstanding_.erase(it);
  if (on_done) on_done(request);
}

void HostController::reset_stats() {
  latency_.reset();
  latency_cycles_total_ = 0;
  reads_ = writes_ = completed_ = 0;
  poisoned_ = retries_ = 0;
  device_.reset_stats();
}

double HostController::mean_read_latency_cycles() const {
  return completed_ == 0 ? 0.0
                         : static_cast<double>(latency_cycles_total_) /
                               static_cast<double>(completed_);
}

}  // namespace camps::hmc
