#include "hmc/host_controller.hpp"

#include <string>

namespace camps::hmc {

HostController::HostController(sim::Simulator& sim, const HmcConfig& config,
                               prefetch::SchemeKind scheme,
                               const prefetch::SchemeParams& params,
                               StatRegistry* stats, obs::TraceRecorder* trace)
    : sim_(sim),
      device_(sim, config, scheme, params, stats,
              [this](const MemRequest& req) { deliver(req); }, trace),
      trace_(trace) {
  if (stats != nullptr) {
    h_lat_total_read_ = &stats->histogram("latency.total_read_cycles",
                                          /*bucket_width=*/32,
                                          /*num_buckets=*/128);
  }
}

u64 HostController::read(Addr addr, CoreId core, CompletionFn on_done) {
  MemRequest req;
  req.id = next_id_++;
  req.addr = addr;
  req.type = AccessType::kRead;
  req.core = core;
  req.created = sim_.now();
  outstanding_.emplace(req.id, std::move(on_done));
  ++reads_;
  device_.submit(req, sim_.now());
  return req.id;
}

u64 HostController::write(Addr addr, CoreId core) {
  MemRequest req;
  req.id = next_id_++;
  req.addr = addr;
  req.type = AccessType::kWrite;
  req.core = core;
  req.created = sim_.now();
  ++writes_;
  device_.submit(req, sim_.now());
  return req.id;
}

void HostController::deliver(const MemRequest& request) {
  const auto it = outstanding_.find(request.id);
  CAMPS_ASSERT_MSG(it != outstanding_.end(), "response for unknown request");
  const u64 cycles =
      (sim_.now() - request.created) / sim::kCpuTicksPerCycle;
  latency_.sample(cycles);
  if (h_lat_total_read_ != nullptr) h_lat_total_read_->sample(cycles);
  if (trace_ != nullptr) {
    trace_->record(obs::Stage::kHostRead, request.core, request.id,
                   request.created, sim_.now());
  }
  latency_cycles_total_ += cycles;
  ++completed_;
  CompletionFn on_done = std::move(it->second);
  outstanding_.erase(it);
  if (on_done) on_done(request);
}

void HostController::reset_stats() {
  latency_.reset();
  latency_cycles_total_ = 0;
  reads_ = writes_ = completed_ = 0;
  device_.reset_stats();
}

double HostController::mean_read_latency_cycles() const {
  return completed_ == 0 ? 0.0
                         : static_cast<double>(latency_cycles_total_) /
                               static_cast<double>(completed_);
}

}  // namespace camps::hmc
