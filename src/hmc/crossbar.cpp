#include "hmc/crossbar.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace camps::hmc {

Crossbar::Crossbar(u32 output_ports, const CrossbarParams& params)
    : p_(params), port_free_(output_ports, 0) {
  CAMPS_ASSERT(output_ports > 0);
}

Tick Crossbar::route(Tick now, u32 port, u64 trace_id) {
  CAMPS_ASSERT(port < port_free_.size());
  const Tick start = std::max(now, port_free_[port]);
  port_free_[port] = start + p_.port_interval_ticks;
  ++packets_;
  const Tick deliver = start + p_.latency_ticks;
  if (trace_ != nullptr) {
    trace_->record(trace_stage_, port, trace_id, now, deliver);
  }
  return deliver;
}

}  // namespace camps::hmc
