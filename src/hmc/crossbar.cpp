#include "hmc/crossbar.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "fault/fault_plan.hpp"

namespace camps::hmc {

Crossbar::Crossbar(u32 output_ports, const CrossbarParams& params)
    : p_(params), port_free_(output_ports, 0) {
  CAMPS_ASSERT(output_ports > 0);
}

Crossbar::Routed Crossbar::route_ex(Tick now, u32 port, u64 trace_id) {
  CAMPS_ASSERT(port < port_free_.size());
  if (plan_ != nullptr &&
      plan_->roll(fault::Site::kXbarDrop, fault_unit_base_ + port)) {
    // The arbiter's grant was lost: the packet never traverses and the
    // output port's schedule is untouched. Recovery belongs to the
    // requester (host timeout path).
    ++drops_;
    plan_->count_xbar_drop();
    return Routed{0, true};
  }
  const Tick start = std::max(now, port_free_[port]);
  port_free_[port] = start + p_.port_interval_ticks;
  ++packets_;
  const Tick deliver = start + p_.latency_ticks;
  if (trace_ != nullptr) {
    trace_->record(trace_stage_, port, trace_id, now, deliver);
  }
  return Routed{deliver, false};
}

}  // namespace camps::hmc
