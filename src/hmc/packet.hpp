// HMC link packets and memory requests.
//
// The HMC protocol moves 16-byte flits over the serial links: a request or
// response carries a header/tail flit plus 16 B data flits. Reads cost one
// request flit and a five-flit response (header + 64 B); writes cost five
// request flits and are posted (no response), per the simplification
// documented in DESIGN.md.
#pragma once

#include "common/types.hpp"

namespace camps::hmc {

inline constexpr u32 kFlitBytes = 16;

/// A memory transaction as seen by the HMC host controller.
struct MemRequest {
  u64 id = 0;             ///< Unique per host controller.
  Addr addr = 0;          ///< Physical line-aligned address.
  AccessType type = AccessType::kRead;
  CoreId core = 0;        ///< Originating core (for per-core stats).
  Tick created = 0;       ///< Tick the request entered the host controller.
  /// Set by the host controller's fault-recovery path when the request
  /// exhausted its retry budget: the completion carries no valid data and
  /// downstream consumers must treat it as an error sentinel. Always false
  /// when fault injection is disabled.
  bool poisoned = false;
};

enum class PacketKind : u8 { kReadReq, kWriteReq, kReadResp };

/// Flits on the wire for each packet kind (64 B payloads).
constexpr u32 flits_for(PacketKind kind) {
  switch (kind) {
    case PacketKind::kReadReq: return 1;
    case PacketKind::kWriteReq: return 1 + 64 / kFlitBytes;
    case PacketKind::kReadResp: return 1 + 64 / kFlitBytes;
  }
  return 1;
}

struct Packet {
  PacketKind kind = PacketKind::kReadReq;
  MemRequest request;   ///< The transaction this packet belongs to.
  VaultId vault = 0;    ///< Destination (requests) or source (responses).

  u32 flits() const { return flits_for(kind); }
};

}  // namespace camps::hmc
