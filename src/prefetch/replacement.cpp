#include "prefetch/replacement.hpp"

#include <memory>
#include <vector>

#include "common/assert.hpp"

namespace camps::prefetch {

u32 LruReplacement::pick_victim(
    const std::vector<VictimCandidate>& candidates) {
  CAMPS_ASSERT(!candidates.empty());
  const VictimCandidate* best = &candidates.front();
  for (const auto& c : candidates) {
    if (c.recency < best->recency) best = &c;
  }
  return best->slot;
}

u32 UtilizationRecencyReplacement::pick_victim(
    const std::vector<VictimCandidate>& candidates) {
  CAMPS_ASSERT(!candidates.empty());

  // Step 1: a fully-consumed row leaves first.
  const VictimCandidate* full = nullptr;
  for (const auto& c : candidates) {
    if (!c.fully_used) continue;
    if (full == nullptr || c.recency < full->recency) full = &c;
  }
  if (full != nullptr) return full->slot;

  // Step 2: minimum utilization + recency; ties prefer lower utilization.
  const VictimCandidate* best = &candidates.front();
  auto better = [](const VictimCandidate& a, const VictimCandidate& b) {
    const u64 sa = u64{a.utilization} + a.recency;
    const u64 sb = u64{b.utilization} + b.recency;
    if (sa != sb) return sa < sb;
    if (a.utilization != b.utilization) return a.utilization < b.utilization;
    if (a.recency != b.recency) return a.recency < b.recency;
    return a.slot < b.slot;
  };
  for (const auto& c : candidates) {
    if (better(c, *best)) best = &c;
  }
  return best->slot;
}

std::unique_ptr<ReplacementPolicy> make_lru() {
  return std::make_unique<LruReplacement>();
}

std::unique_ptr<ReplacementPolicy> make_utilization_recency() {
  return std::make_unique<UtilizationRecencyReplacement>();
}

}  // namespace camps::prefetch
