// Memory-side prefetch scheme interface.
//
// One scheme instance lives in each vault controller. The controller calls
// on_demand_access() as it services each demand request at the DRAM (after
// the prefetch buffer missed) and executes the returned decision: fetch the
// open row into the buffer, optionally precharge the bank afterwards, and
// fetch any extra rows (MMD's prefetch degree > 1). Feedback callbacks let
// usefulness-driven schemes (MMD) adapt.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "check/audit.hpp"
#include "dram/bank.hpp"
#include "prefetch/replacement.hpp"

namespace camps::prefetch {

/// Everything a scheme may inspect about one demand access.
struct AccessContext {
  BankId bank = 0;
  RowId row = 0;
  LineId line = 0;
  AccessType type = AccessType::kRead;
  /// Row-buffer state the access found (hit / empty / conflict), evaluated
  /// before any ACT/PRE the controller performs to serve it.
  dram::RowBufferOutcome outcome = dram::RowBufferOutcome::kEmpty;
  /// How many *other* requests currently waiting in the read queue target
  /// the same row (BASE-HIT's trigger).
  u32 queued_same_row = 0;
  /// Vault-controller (DRAM) cycle of service.
  u64 dram_cycle = 0;
};

/// What the controller should do after serving the access.
struct PrefetchDecision {
  bool fetch_row = false;       ///< Copy the open row into the buffer.
  bool precharge_after = false; ///< Close the bank once the copy is done.
  /// The demand itself is satisfied *through* the row copy: no separate RD
  /// is issued; the response leaves once the copy lands in the buffer.
  /// This is BASE's defining behaviour ("prefetches a whole row on every
  /// memory request") — the demand pays the full copy latency.
  bool serve_via_buffer = false;
  /// Additional same-bank rows to prefetch (each needs its own ACT; used by
  /// MMD when its degree exceeds 1).
  std::vector<RowId> extra_rows;

  bool any() const { return fetch_row || !extra_rows.empty(); }
};

class PrefetchScheme {
 public:
  virtual ~PrefetchScheme() = default;

  /// Audits the scheme's internal profiling structures. Stateless schemes
  /// have nothing to check; CAMPS overrides this with the RUT/CT rules.
  /// Virtual (unlike the check::Auditable concept elsewhere) because
  /// schemes are owned through this interface — the vtable already exists.
  virtual void audit(check::AuditReporter& /*reporter*/) const {}

  /// Called once per demand access serviced at the DRAM banks.
  virtual PrefetchDecision on_demand_access(const AccessContext& ctx) = 0;

  /// Called when a demand access was served from the prefetch buffer.
  virtual void on_buffer_hit(const AccessContext& /*ctx*/) {}

  /// Called when a prefetched row leaves the buffer; `was_used` reports
  /// whether any of its lines were demanded (MMD's usefulness feedback).
  virtual void on_prefetch_evicted(BankRow /*row*/, bool /*was_used*/) {}

  /// Called when the vault degrades under repeated faults and flushes its
  /// prefetch state: the scheme must drop every profiling entry (RUT, CT,
  /// stream tables, ...) so no table references rows whose buffer copies
  /// are gone. Empty tables trivially satisfy every hand-off invariant, so
  /// a flush is always audit-clean. Stateless schemes need nothing.
  virtual void on_fault_flush() {}

  virtual std::string name() const = 0;

  /// Replacement policy this scheme pairs with (Section 5 fixes LRU for
  /// everything except CAMPS-MOD).
  virtual std::unique_ptr<ReplacementPolicy> make_replacement() const {
    return make_lru();
  }
};

}  // namespace camps::prefetch
