#include "prefetch/factory.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "prefetch/scheme_base.hpp"
#include "prefetch/scheme_base_hit.hpp"
#include "prefetch/scheme_none.hpp"

namespace camps::prefetch {

std::vector<SchemeKind> paper_schemes() {
  return {SchemeKind::kBase, SchemeKind::kBaseHit, SchemeKind::kMmd,
          SchemeKind::kCamps, SchemeKind::kCampsMod};
}

const char* to_string(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kNone: return "NONE";
    case SchemeKind::kBase: return "BASE";
    case SchemeKind::kBaseHit: return "BASE-HIT";
    case SchemeKind::kMmd: return "MMD";
    case SchemeKind::kCamps: return "CAMPS";
    case SchemeKind::kCampsMod: return "CAMPS-MOD";
    case SchemeKind::kStream: return "STREAM";
  }
  return "?";
}

SchemeKind scheme_from_string(const std::string& name) {
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  for (SchemeKind kind :
       {SchemeKind::kNone, SchemeKind::kBase, SchemeKind::kBaseHit,
        SchemeKind::kMmd, SchemeKind::kCamps, SchemeKind::kCampsMod,
        SchemeKind::kStream}) {
    if (upper == to_string(kind)) return kind;
  }
  throw std::out_of_range("unknown prefetch scheme: " + name);
}

std::unique_ptr<PrefetchScheme> make_scheme(SchemeKind kind,
                                            const SchemeParams& params) {
  switch (kind) {
    case SchemeKind::kNone:
      return std::make_unique<NoPrefetchScheme>();
    case SchemeKind::kBase:
      return std::make_unique<BaseScheme>();
    case SchemeKind::kBaseHit:
      return std::make_unique<BaseHitScheme>(params.base_hit_min_hits);
    case SchemeKind::kMmd:
      return std::make_unique<MmdScheme>(params.mmd);
    case SchemeKind::kCamps: {
      CampsParams p = params.camps;
      p.modified_replacement = false;
      return std::make_unique<CampsScheme>(p);
    }
    case SchemeKind::kCampsMod: {
      CampsParams p = params.camps;
      p.modified_replacement = true;
      return std::make_unique<CampsScheme>(p);
    }
    case SchemeKind::kStream: {
      StreamParams p = params.stream;
      p.banks = params.camps.banks;  // track the vault geometry
      return std::make_unique<StreamScheme>(p);
    }
  }
  throw std::out_of_range("unknown scheme kind");
}

}  // namespace camps::prefetch
