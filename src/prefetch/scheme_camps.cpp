#include "prefetch/scheme_camps.hpp"

#include <memory>
#include <string>

#include "common/assert.hpp"

// Debug builds self-audit the RUT/CT pair after every structural transition
// (each on_demand_access may displace a profile into the CT, consume a CT
// entry, or drop a RUT entry). Release builds skip this: the periodic
// --audit-every driver covers them without per-access cost.
#ifndef NDEBUG
#define CAMPS_AUDIT_TRANSITIONS 1
#else
#define CAMPS_AUDIT_TRANSITIONS 0
#endif

namespace camps::prefetch {

namespace {

/// Runs the scheme's audit and aborts through the CAMPS_ASSERT fail path
/// on any violation. Only called when CAMPS_AUDIT_TRANSITIONS is on.
[[maybe_unused]] void audit_transition(const CampsScheme& scheme) {
  check::AuditReporter rep;
  scheme.audit(rep);
  if (!rep.clean()) check::audit_fail(rep);
}

}  // namespace

CampsScheme::CampsScheme(const CampsParams& params)
    : p_(params), rut_(params.banks), ct_(params.conflict_entries) {
  CAMPS_ASSERT(p_.utilization_threshold >= 1);
}

PrefetchDecision CampsScheme::on_demand_access(const AccessContext& ctx) {
#if CAMPS_AUDIT_TRANSITIONS
  // Audit on exit, after the RUT/CT hand-offs below have all settled.
  struct TransitionAudit {
    const CampsScheme* self;
    ~TransitionAudit() { audit_transition(*self); }
  } audit_on_exit{this};
#endif
  const BankRow id{ctx.bank, ctx.row};

  if (ctx.outcome == dram::RowBufferOutcome::kHit) {
    // Served from the open row. Profile it; past the threshold the row has
    // proven its utilization and moves to the prefetch buffer.
    // (A stale RUT entry for a different row — possible when a row was
    // closed by refresh and another opened — is displaced into the CT
    // first, mirroring the row-buffer replacement path.)
    if (auto displaced = rut_.displace(ctx.bank, ctx.row)) {
      ct_.insert(BankRow{ctx.bank, displaced->row});
    }
    const u32 count = rut_.touch(ctx.bank, ctx.row);
    if (count >= p_.utilization_threshold) {
      rut_.remove(ctx.bank);
      ++threshold_prefetches_;
      return PrefetchDecision{.fetch_row = true, .precharge_after = true, .extra_rows = {}};
    }
    return {};
  }

  // Row-buffer miss (empty or conflict): the controller activates ctx.row
  // and serves the request. Whatever row the bank profiled before has just
  // been displaced from the row buffer, so its profile moves into the CT
  // regardless of what happens to the new row.
  if (auto displaced = rut_.displace(ctx.bank, ctx.row)) {
    ct_.insert(BankRow{ctx.bank, displaced->row});
  }

  if (ct_.remove(id)) {
    // The row was displaced recently — it causes conflicts. Prefetch it
    // and precharge; its CT entry is gone.
    ++conflict_prefetches_;
    PrefetchDecision d;
    d.fetch_row = true;
    d.precharge_after = true;
    return d;
  }

  // Not a known conflict-causer: keep the row open and start profiling it.
  const u32 count = rut_.touch(ctx.bank, ctx.row);
  if (count >= p_.utilization_threshold) {
    // Degenerate thresholds (<= 1) fire on the very first access; kept
    // continuous so the threshold ablation sweeps cleanly into BASE-like
    // behaviour.
    rut_.remove(ctx.bank);
    ++threshold_prefetches_;
    PrefetchDecision d;
    d.fetch_row = true;
    d.precharge_after = true;
    return d;
  }
  return {};
}

void CampsScheme::on_fault_flush() {
#if CAMPS_AUDIT_TRANSITIONS
  struct TransitionAudit {
    const CampsScheme* self;
    ~TransitionAudit() { audit_transition(*self); }
  } audit_on_exit{this};
#endif
  for (BankId bank = 0; bank < rut_.banks(); ++bank) rut_.remove(bank);
  for (const BankRow& id : ct_.snapshot()) ct_.remove(id);
}

std::unique_ptr<ReplacementPolicy> CampsScheme::make_replacement() const {
  return p_.modified_replacement ? make_utilization_recency() : make_lru();
}

}  // namespace camps::prefetch
