// MMD (Section 5): the existing memory-side prefetcher the paper compares
// against — "dynamically adjusts the prefetch degree based on the
// usefulness of prefetched data and uses traditional LRU policy for
// prefetch buffer management". Modeled on Yedlapalli et al., "Meeting
// Midway" (PACT 2013 [8]), adapted — as the paper itself adapts it — to
// row-granularity prefetching inside an HMC vault:
//
//   - Trigger: a demand access that misses the row buffer (the row gets
//     activated anyway) prefetches that row plus the next (degree-1)
//     sequential rows of the same bank.
//   - Feedback: evictions from the prefetch buffer report whether the row
//     was ever referenced. Per epoch of evictions, usefulness above/below
//     thresholds raises/lowers the degree within [0, max_degree].
//   - Recovery: at degree 0 the prefetcher is off and would starve of
//     feedback forever; after `probe_interval` further demand misses it
//     probes again at degree 1 (standard practice in feedback prefetchers,
//     cf. Srinath et al. FDP, HPCA 2007).
#pragma once

#include <string>

#include "prefetch/scheme.hpp"

namespace camps::prefetch {

struct MmdParams {
  u32 initial_degree = 1;
  u32 max_degree = 1;  ///< Same-bank lookahead is useless under RoRaBaVaCo
                       ///< striping (row+1 lives in another vault), so the
                       ///< default adapts on/off only; raise for the ablation.
  u32 epoch_evictions = 32;     ///< Feedback window length.
  double raise_threshold = 0.65;///< Usefulness above this: degree++.
  double lower_threshold = 0.45;///< Usefulness below this: degree--.
  u32 probe_interval = 128;     ///< Demand misses before re-probing at 0.
};

class MmdScheme final : public PrefetchScheme {
 public:
  explicit MmdScheme(const MmdParams& params = {});

  PrefetchDecision on_demand_access(const AccessContext& ctx) override;
  void on_prefetch_evicted(BankRow row, bool was_used) override;
  std::string name() const override { return "MMD"; }

  u32 degree() const { return degree_; }
  u64 epochs_completed() const { return epochs_; }

 private:
  MmdParams p_;
  u32 degree_;
  u32 epoch_used_ = 0;
  u32 epoch_total_ = 0;
  u32 misses_at_zero_ = 0;
  u64 epochs_ = 0;
};

}  // namespace camps::prefetch
