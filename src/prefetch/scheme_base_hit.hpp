// BASE-HIT (Section 5): "prefetches a whole row if the row has two or more
// hits based on the requests in the read queue". The row is copied when
// the serviced request plus at least one more queued request target it;
// the bank follows the normal open-page policy (no forced precharge), so
// row-buffer conflicts still occur (Fig. 6 includes BASE-HIT).
#pragma once

#include <string>

#include "prefetch/scheme.hpp"

namespace camps::prefetch {

class BaseHitScheme final : public PrefetchScheme {
 public:
  /// `min_queued_hits`: queued requests (including the one being served)
  /// that must target the row. The paper uses 2.
  explicit BaseHitScheme(u32 min_queued_hits = 2)
      : min_hits_(min_queued_hits) {}

  PrefetchDecision on_demand_access(const AccessContext& ctx) override;
  std::string name() const override { return "BASE-HIT"; }

 private:
  u32 min_hits_;
};

}  // namespace camps::prefetch
