// Scheme construction by name/kind, one instance per vault.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "prefetch/scheme.hpp"
#include "prefetch/scheme_camps.hpp"
#include "prefetch/scheme_mmd.hpp"
#include "prefetch/scheme_stream.hpp"

namespace camps::prefetch {

enum class SchemeKind : u8 {
  kNone,     ///< No prefetching (substrate baseline, not in the paper).
  kBase,     ///< Whole row on first access, then precharge.
  kBaseHit,  ///< Row with >= 2 read-queue hits.
  kMmd,      ///< Dynamic-degree usefulness feedback, LRU buffer.
  kCamps,    ///< Conflict-aware decision, LRU buffer.
  kCampsMod, ///< CAMPS + utilization/recency replacement.
  kStream,   ///< Extension: vault-side stream detector (not in the paper).
};

/// The five schemes of the paper's evaluation, in Figure 5's legend order.
std::vector<SchemeKind> paper_schemes();

const char* to_string(SchemeKind kind);

/// Parses "BASE", "base-hit", "CAMPS-MOD", ... Throws std::out_of_range.
SchemeKind scheme_from_string(const std::string& name);

/// Per-scheme tunables; fields are only read by the relevant scheme.
struct SchemeParams {
  CampsParams camps;
  MmdParams mmd;
  StreamParams stream;
  u32 base_hit_min_hits = 2;
};

/// Builds a fresh scheme instance (call once per vault).
std::unique_ptr<PrefetchScheme> make_scheme(SchemeKind kind,
                                            const SchemeParams& params = {});

}  // namespace camps::prefetch
