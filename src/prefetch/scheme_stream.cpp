#include "prefetch/scheme_stream.hpp"

#include "common/assert.hpp"

namespace camps::prefetch {

StreamScheme::StreamScheme(const StreamParams& params)
    : p_(params), detectors_(params.banks) {
  CAMPS_ASSERT(p_.banks > 0);
  CAMPS_ASSERT(p_.confidence_threshold >= 1);
  CAMPS_ASSERT(p_.degree >= 1);
}

i64 StreamScheme::direction(BankId bank) const {
  CAMPS_ASSERT(bank < detectors_.size());
  const Detector& d = detectors_[bank];
  return d.confidence >= p_.confidence_threshold ? d.direction : 0;
}

u32 StreamScheme::confidence(BankId bank) const {
  CAMPS_ASSERT(bank < detectors_.size());
  return detectors_[bank].confidence;
}

PrefetchDecision StreamScheme::on_demand_access(const AccessContext& ctx) {
  if (ctx.outcome == dram::RowBufferOutcome::kHit) return {};

  Detector& d = detectors_[ctx.bank];
  if (!d.valid) {
    d = Detector{ctx.row, 0, 0, true};
    return {};
  }

  const i64 step = static_cast<i64>(ctx.row) - static_cast<i64>(d.last_row);
  d.last_row = ctx.row;
  if (step == 1 || step == -1) {
    if (step == d.direction) {
      ++d.confidence;
    } else {
      d.direction = step;
      d.confidence = 1;
    }
  } else {
    // Non-unit jump: the stream broke.
    d.direction = 0;
    d.confidence = 0;
    return {};
  }

  if (d.confidence < p_.confidence_threshold) return {};

  PrefetchDecision decision;
  for (u32 ahead = 1; ahead <= p_.degree; ++ahead) {
    const i64 target =
        static_cast<i64>(ctx.row) + d.direction * static_cast<i64>(ahead);
    if (target < 0) break;
    decision.extra_rows.push_back(static_cast<RowId>(target));
  }
  return decision;
}

}  // namespace camps::prefetch
