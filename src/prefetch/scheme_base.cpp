#include "prefetch/scheme_base.hpp"

namespace camps::prefetch {

PrefetchDecision BaseScheme::on_demand_access(const AccessContext& ctx) {
  // Every demand access that reaches the DRAM moves the whole row into the
  // prefetch buffer and is served from there; the bank precharges once the
  // copy completes. Consequently the bank is precharged between uses (no
  // row-buffer conflicts) and every miss pays the full row-copy latency.
  (void)ctx;
  PrefetchDecision d;
  d.fetch_row = true;
  d.precharge_after = true;
  d.serve_via_buffer = true;
  return d;
}

}  // namespace camps::prefetch
