#include "prefetch/rut.hpp"

#include <optional>
#include <string>

#include "common/assert.hpp"

namespace camps::prefetch {

RowUtilizationTable::RowUtilizationTable(u32 banks) : entries_(banks) {
  CAMPS_ASSERT(banks > 0);
}

u32 RowUtilizationTable::touch(BankId bank, RowId row) {
  CAMPS_ASSERT(bank < entries_.size());
  auto& slot = entries_[bank];
  if (!slot || slot->row != row) {
    slot = Entry{row, 1};
    return 1;
  }
  return ++slot->count;
}

std::optional<RowUtilizationTable::Entry> RowUtilizationTable::displace(
    BankId bank, RowId incoming) {
  CAMPS_ASSERT(bank < entries_.size());
  auto& slot = entries_[bank];
  if (!slot || slot->row == incoming) return std::nullopt;
  Entry displaced = *slot;
  slot.reset();
  return displaced;
}

void RowUtilizationTable::remove(BankId bank) {
  CAMPS_ASSERT(bank < entries_.size());
  entries_[bank].reset();
}

std::optional<RowUtilizationTable::Entry> RowUtilizationTable::entry(
    BankId bank) const {
  CAMPS_ASSERT(bank < entries_.size());
  return entries_[bank];
}

}  // namespace camps::prefetch
