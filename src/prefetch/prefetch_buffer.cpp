#include "prefetch/prefetch_buffer.hpp"

#include <algorithm>
#include <bit>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace camps::prefetch {

PrefetchBuffer::PrefetchBuffer(const PrefetchBufferConfig& config,
                               std::unique_ptr<ReplacementPolicy> policy)
    : cfg_(config), policy_(std::move(policy)), slots_(config.entries) {
  CAMPS_ASSERT(cfg_.entries > 0);
  CAMPS_ASSERT_MSG(cfg_.lines_per_row >= 1 && cfg_.lines_per_row <= 64,
                   "reference bitmap is a u64");
  CAMPS_ASSERT(policy_ != nullptr);
  mru_order_.reserve(cfg_.entries);
  evict_util_hist_.assign(cfg_.lines_per_row + 1, 0);
  evict_unused_hist_.assign(cfg_.lines_per_row + 1, 0);
}

std::optional<u32> PrefetchBuffer::find(BankRow row) const {
  for (u32 i = 0; i < slots_.size(); ++i) {
    if (slots_[i].valid && slots_[i].id == row) return i;
  }
  return std::nullopt;
}

bool PrefetchBuffer::contains(BankRow row) const {
  return find(row).has_value();
}

u32 PrefetchBuffer::recency_of_position(size_t pos) const {
  // MRU (pos 0) always reads entries-1, per Section 3.2; the LRU of a full
  // buffer reads 0.
  return cfg_.entries - 1 - static_cast<u32>(pos);
}

std::optional<u32> PrefetchBuffer::recency(BankRow row) const {
  const auto slot = find(row);
  if (!slot) return std::nullopt;
  const auto pos = std::find(mru_order_.begin(), mru_order_.end(), *slot) -
                   mru_order_.begin();
  return recency_of_position(static_cast<size_t>(pos));
}

std::optional<u32> PrefetchBuffer::utilization(BankRow row) const {
  const auto slot = find(row);
  if (!slot) return std::nullopt;
  return slots_[*slot].utilization;
}

void PrefetchBuffer::touch_mru(u32 slot) {
  const auto it = std::find(mru_order_.begin(), mru_order_.end(), slot);
  CAMPS_ASSERT(it != mru_order_.end());
  mru_order_.erase(it);
  mru_order_.insert(mru_order_.begin(), slot);
}

bool PrefetchBuffer::access(BankRow row, LineId line, AccessType type,
                            bool fill_touch) {
  CAMPS_ASSERT(line < cfg_.lines_per_row);
  const auto slot = find(row);
  if (!slot) {
    ++misses_;
    return false;
  }
  Entry& e = slots_[*slot];
  const u64 bit = u64{1} << line;
  if (fill_touch) {
    // The line that triggered the fetch: its data was transferred, but it
    // neither proves the prefetch useful nor raises retention value.
    e.seed_bitmap |= bit;
  } else {
    if ((e.accessed_bitmap & bit) == 0) {
      e.accessed_bitmap |= bit;
      ++e.utilization;
    }
    ++e.useful_refs;
    ++hits_;
  }
  if (type == AccessType::kWrite) e.dirty = true;
  touch_mru(*slot);
  return true;
}

std::vector<VictimCandidate> PrefetchBuffer::candidates() const {
  std::vector<VictimCandidate> out;
  out.reserve(mru_order_.size());
  for (size_t pos = 0; pos < mru_order_.size(); ++pos) {
    const Entry& e = slots_[mru_order_[pos]];
    out.push_back(VictimCandidate{
        .slot = mru_order_[pos],
        .utilization = e.utilization,
        .recency = recency_of_position(pos),
        .fully_used = e.fully_transferred(cfg_.lines_per_row),
    });
  }
  return out;
}

EvictedRow PrefetchBuffer::pop_slot(u32 slot) {
  Entry& e = slots_[slot];
  CAMPS_ASSERT(e.valid);
  EvictedRow victim{
      .id = e.id,
      .referenced = e.useful_refs != 0,
      .dirty = e.dirty,
      .utilization = e.utilization,
  };
  ++finished_rows_;
  const u32 bucket = std::min(victim.utilization, cfg_.lines_per_row);
  ++evict_util_hist_[bucket];
  if (victim.referenced) ++finished_referenced_;
  if (!victim.referenced) {
    ++evicted_unreferenced_;
    ++evict_unused_hist_[bucket];
  }
  if (victim.dirty) ++dirty_writebacks_;
  ++evictions_;
  e = Entry{};
  const auto it = std::find(mru_order_.begin(), mru_order_.end(), slot);
  CAMPS_ASSERT(it != mru_order_.end());
  mru_order_.erase(it);
  return victim;
}

std::optional<u64> PrefetchBuffer::insert_stamp(BankRow row) const {
  const auto slot = find(row);
  if (!slot) return std::nullopt;
  return slots_[*slot].insert_stamp;
}

InsertResult PrefetchBuffer::insert(BankRow row, u64 seed_bitmap,
                                    u64 stamp) {
  InsertResult result;
  if (contains(row)) return result;
  if (cfg_.lines_per_row < 64) {
    seed_bitmap &= (u64{1} << cfg_.lines_per_row) - 1;
  }

  if (mru_order_.size() == cfg_.entries) {
    const u32 victim_slot = policy_->pick_victim(candidates());
    CAMPS_ASSERT_MSG(victim_slot < slots_.size() && slots_[victim_slot].valid,
                     "policy returned an invalid victim");
    result.victim = pop_slot(victim_slot);
  }

  // Find a free slot (one must exist now).
  u32 free = cfg_.entries;
  for (u32 i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].valid) {
      free = i;
      break;
    }
  }
  CAMPS_ASSERT(free < cfg_.entries);
  slots_[free] = Entry{.id = row,
                       .seed_bitmap = seed_bitmap,
                       .accessed_bitmap = 0,
                       .utilization = 0,
                       .useful_refs = 0,
                       .insert_stamp = stamp,
                       .dirty = false,
                       .valid = true};
  mru_order_.insert(mru_order_.begin(), free);
  ++inserts_;
  result.inserted = true;
  if (trace_ != nullptr) {
    // Instant markers on the vault lane; the span id folds (bank, row) so a
    // viewer query can follow one row's residency.
    const Tick at = stamp * trace_ticks_per_stamp_;
    trace_->record(obs::Stage::kPfInsert, trace_track_,
                   (u64{row.bank} << 40) | row.row, at, at);
    if (result.victim) {
      trace_->record(obs::Stage::kPfEvict, trace_track_,
                     (u64{result.victim->id.bank} << 40) |
                         result.victim->id.row,
                     at, at);
    }
  }
  return result;
}

bool PrefetchBuffer::evict(BankRow row) {
  const auto slot = find(row);
  if (!slot) return false;
  pop_slot(*slot);
  return true;
}

std::vector<EvictedRow> PrefetchBuffer::flush() {
  std::vector<EvictedRow> victims;
  victims.reserve(mru_order_.size());
  while (!mru_order_.empty()) {
    victims.push_back(pop_slot(mru_order_.front()));
  }
  return victims;
}

void PrefetchBuffer::reset_stats() {
  hits_ = misses_ = inserts_ = evictions_ = 0;
  evicted_unreferenced_ = dirty_writebacks_ = 0;
  finished_rows_ = finished_referenced_ = 0;
  std::fill(evict_util_hist_.begin(), evict_util_hist_.end(), 0);
  std::fill(evict_unused_hist_.begin(), evict_unused_hist_.end(), 0);
}

double PrefetchBuffer::row_accuracy() const {
  // Count rows that have left the buffer plus resident rows, crediting any
  // row that was referenced at least once.
  u64 total = finished_rows_;
  u64 useful = finished_referenced_;
  for (const auto& e : slots_) {
    if (!e.valid) continue;
    ++total;
    if (e.useful_refs != 0) ++useful;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(useful) / static_cast<double>(total);
}

}  // namespace camps::prefetch
