// Row Utilization Table (Section 3.1).
//
// One entry per bank in the vault (Table I: 16 banks). Each entry remembers
// which row currently owns the bank's profile and how many requests that
// row has served. When a different row takes over the bank, the displaced
// entry is handed to the caller so the CAMPS scheme can move it into the
// Conflict Table — the table itself stays policy-free.
#pragma once

#include <optional>
#include <vector>

#include "check/audit.hpp"
#include "common/types.hpp"

namespace camps::prefetch {

class RowUtilizationTable final {
 public:
  struct Entry {
    RowId row = 0;
    u32 count = 0;
  };

  explicit RowUtilizationTable(u32 banks);

  /// Records one served request for (bank, row). Creates the entry with
  /// count 1 if the bank had none or tracked a different row (the caller
  /// must have handled displacement via `displace` first). Returns the
  /// updated count.
  u32 touch(BankId bank, RowId row);

  /// If the bank tracks a row different from `incoming`, removes and
  /// returns that entry (it is being displaced by the newly opened row).
  std::optional<Entry> displace(BankId bank, RowId incoming);

  /// Drops the bank's entry (after its row was prefetched).
  void remove(BankId bank);

  std::optional<Entry> entry(BankId bank) const;
  u32 banks() const { return static_cast<u32>(entries_.size()); }

  /// Hardware footprint in bits (paper: 16 entries x 20 bits per vault).
  u64 overhead_bits() const { return u64{entries_.size()} * 20; }

  /// Invariants: exactly one slot per bank, and every present entry has
  /// served at least one request (touch() creates entries with count 1).
  void audit(check::AuditReporter& reporter) const;

 private:
  friend struct check::TestCorruptor;

  std::vector<std::optional<Entry>> entries_;
};

static_assert(check::Auditable<RowUtilizationTable>);

}  // namespace camps::prefetch
