#include "prefetch/scheme_none.hpp"

namespace camps::prefetch {

PrefetchDecision NoPrefetchScheme::on_demand_access(
    const AccessContext& /*ctx*/) {
  return {};
}

}  // namespace camps::prefetch
