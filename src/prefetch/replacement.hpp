// Prefetch-buffer replacement policies.
//
// The paper compares two: classic LRU (used by BASE/BASE-HIT/MMD/CAMPS) and
// the utilization+recency policy of Section 3.2 (CAMPS-MOD). Policies see a
// snapshot of candidate entries and return the victim's slot index.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace camps::prefetch {

/// What a policy may inspect about each resident row.
struct VictimCandidate {
  u32 slot = 0;        ///< Buffer slot index (returned as the victim id).
  u32 utilization = 0; ///< Distinct lines referenced since insertion.
  u32 recency = 0;     ///< Paper encoding: MRU = entries-1, LRU = 0.
  bool fully_used = false;  ///< All distinct lines referenced.
};

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// Picks the victim among `candidates` (never empty). Deterministic.
  virtual u32 pick_victim(const std::vector<VictimCandidate>& candidates) = 0;

  virtual std::string name() const = 0;
};

/// Least-recently-used: evicts the candidate with minimum recency.
class LruReplacement final : public ReplacementPolicy {
 public:
  u32 pick_victim(const std::vector<VictimCandidate>& candidates) override;
  std::string name() const override { return "lru"; }
};

/// Section 3.2 policy:
///   1. if any row has had ALL its distinct lines referenced, evict it (its
///      data has already been shipped to the processor); ties broken by
///      lowest recency;
///   2. otherwise evict the row with minimum (utilization + recency);
///   3. ties broken by lowest utilization, then lowest recency, then slot.
class UtilizationRecencyReplacement final : public ReplacementPolicy {
 public:
  u32 pick_victim(const std::vector<VictimCandidate>& candidates) override;
  std::string name() const override { return "util-recency"; }
};

std::unique_ptr<ReplacementPolicy> make_lru();
std::unique_ptr<ReplacementPolicy> make_utilization_recency();

}  // namespace camps::prefetch
