// The per-vault prefetch buffer (Table I: 16 KB, fully associative, 1 KB
// lines = whole DRAM rows, 22-cycle hit latency).
//
// Rows are inserted whole by the prefetch engine and looked up per demand
// request. The buffer tracks, per resident row:
//   - a distinct-line reference bitmap (utilization = popcount),
//   - the paper's recency encoding (MRU = entries-1 ... LRU = 0),
//   - a dirty flag (writes hit buffered rows; dirty victims are written
//     back to the bank, costing energy).
// Victim selection is delegated to a ReplacementPolicy so CAMPS (LRU) and
// CAMPS-MOD (utilization+recency) share this implementation.
#pragma once

#include <bit>
#include <memory>
#include <optional>
#include <vector>

#include "check/audit.hpp"
#include "obs/trace_recorder.hpp"
#include "prefetch/replacement.hpp"

namespace camps::prefetch {

struct PrefetchBufferConfig {
  u32 entries = 16;        ///< 16 KB / 1 KB rows.
  u32 lines_per_row = 16;  ///< 1 KB row / 64 B lines. Must be <= 64.
  u64 hit_latency = 22;    ///< Vault-controller cycles to serve a hit.
};

/// Outcome of inserting a row (possibly evicting another).
struct EvictedRow {
  BankRow id;
  bool referenced = false;  ///< At least one line was demanded before
                            ///< eviction — the prefetch was *useful*.
  bool dirty = false;       ///< Needs a writeback to the bank.
  u32 utilization = 0;
};

struct InsertResult {
  bool inserted = false;             ///< False if the row was already here.
  std::optional<EvictedRow> victim;  ///< Present when a row was displaced.
};

class PrefetchBuffer final {
 public:
  PrefetchBuffer(const PrefetchBufferConfig& config,
                 std::unique_ptr<ReplacementPolicy> policy);

  /// Arms span recording: inserts and evictions become instant events on
  /// the vault's trace lane. `ticks_per_stamp` converts the controller's
  /// insert stamps (DRAM cycles) to global ticks.
  void attach_trace(obs::TraceRecorder* trace, u32 track,
                    u64 ticks_per_stamp) {
    trace_ = trace;
    trace_track_ = track;
    trace_ticks_per_stamp_ = ticks_per_stamp;
  }

  /// True if `row` is resident (no state change; used by the scheduler to
  /// filter redundant prefetches).
  bool contains(BankRow row) const;

  /// Serves a demand access. On hit: marks `line` referenced, bumps
  /// utilization for a newly-referenced line, moves the row to MRU, sets
  /// dirty on writes. Returns whether it hit.
  ///
  /// `fill_touch = true` marks the line that *triggered* the row fetch
  /// (BASE's serve-through-copy path): it updates the bitmap/utilization
  /// used for replacement but does not make the prefetch "useful" — only
  /// lines the prefetch genuinely anticipated count toward accuracy.
  bool access(BankRow row, LineId line, AccessType type,
              bool fill_touch = false);

  /// Inserts a freshly fetched row (as MRU). If the buffer is full the
  /// replacement policy picks a victim, returned for writeback/usefulness
  /// accounting. Inserting a resident row is a no-op.
  ///
  /// `seed_bitmap` marks lines that were already served while the row sat
  /// in the DRAM row buffer (e.g. the accesses that pushed it past the RUT
  /// threshold): they count toward utilization — Section 3.2's "all
  /// distinct cache lines accessed" test spans the row's whole life — but
  /// not toward prefetch usefulness.
  ///
  /// `insert_stamp` is a monotonic time (the controller uses DRAM cycles);
  /// the controller compares request arrival times against it to decide
  /// whether a hit is a true prefetch win (request arrived after the data)
  /// or merely a queued demand the copy happened to serve.
  InsertResult insert(BankRow row, u64 seed_bitmap = 0, u64 insert_stamp = 0);

  /// Insert stamp of a resident row; nullopt when absent.
  std::optional<u64> insert_stamp(BankRow row) const;

  /// Drops a resident row without statistics (used by tests/invalidation).
  bool evict(BankRow row);

  /// Evicts every resident row (MRU first), with full eviction accounting,
  /// and returns the victims so the caller can run the usual usefulness /
  /// writeback notifications. Used by the vault's fault-degradation path.
  std::vector<EvictedRow> flush();

  /// Records a lookup miss observed by the controller (which checks
  /// residency with contains() and only calls access() on hits).
  void count_miss() { ++misses_; }

  /// Eviction histograms by utilization at eviction time (diagnostics and
  /// the ablation benches): index = distinct lines referenced.
  const std::vector<u64>& evictions_by_utilization() const {
    return evict_util_hist_;
  }
  const std::vector<u64>& unused_evictions_by_utilization() const {
    return evict_unused_hist_;
  }

  u32 size() const { return static_cast<u32>(mru_order_.size()); }
  u32 capacity() const { return cfg_.entries; }
  const PrefetchBufferConfig& config() const { return cfg_; }

  /// Paper recency value of a resident row (MRU = entries-1); nullopt when
  /// absent. Exposed for tests and the replacement policy.
  std::optional<u32> recency(BankRow row) const;
  std::optional<u32> utilization(BankRow row) const;

  // --- statistics ------------------------------------------------------
  u64 hits() const { return hits_; }
  u64 misses() const { return misses_; }
  u64 inserts() const { return inserts_; }
  u64 evictions() const { return evictions_; }
  u64 evicted_unreferenced() const { return evicted_unreferenced_; }
  u64 dirty_writebacks() const { return dirty_writebacks_; }
  /// Rows that were referenced at least once, over all rows that have left
  /// the buffer plus those resident and referenced — the paper's
  /// "prefetching accuracy" numerator grows as prefetches prove useful.
  double row_accuracy() const;

  /// Zeroes all statistics (contents stay resident). Used at the warmup /
  /// measurement boundary.
  void reset_stats();

  /// Invariants: the recency stack is a permutation of the resident slots
  /// (Section 3.2's MRU = entries-1 ... LRU = 0 encoding), every entry's
  /// cached utilization matches its bitmap popcount and stays <= lines per
  /// row, bitmaps stay confined to the row's lines, and the eviction
  /// statistics cross-foot.
  void audit(check::AuditReporter& reporter) const;

 private:
  friend struct check::TestCorruptor;

  struct Entry {
    BankRow id{};
    /// Lines served from the DRAM row buffer before the fetch (plus BASE's
    /// fill-touch line). Counts toward "all data transferred" only.
    u64 seed_bitmap = 0;
    /// Lines demanded from this buffer entry — Section 3.2's utilization
    /// counter is the popcount of this.
    u64 accessed_bitmap = 0;
    u32 utilization = 0;  ///< popcount(accessed_bitmap), cached.
    u32 useful_refs = 0;  ///< Hits beyond the fetch-triggering line.
    u64 insert_stamp = 0;
    bool dirty = false;
    bool valid = false;

    bool fully_transferred(u32 lines_per_row) const {
      return static_cast<u32>(std::popcount(seed_bitmap | accessed_bitmap)) >=
             lines_per_row;
    }
  };

  std::optional<u32> find(BankRow row) const;
  void touch_mru(u32 slot);
  u32 recency_of_position(size_t pos) const;
  std::vector<VictimCandidate> candidates() const;
  EvictedRow pop_slot(u32 slot);

  PrefetchBufferConfig cfg_;
  std::unique_ptr<ReplacementPolicy> policy_;
  obs::TraceRecorder* trace_ = nullptr;
  u32 trace_track_ = 0;
  u64 trace_ticks_per_stamp_ = 1;
  std::vector<Entry> slots_;
  std::vector<u32> mru_order_;  ///< Front = MRU; holds valid slot indices.

  u64 hits_ = 0, misses_ = 0, inserts_ = 0, evictions_ = 0;
  u64 evicted_unreferenced_ = 0, dirty_writebacks_ = 0;
  u64 finished_rows_ = 0, finished_referenced_ = 0;
  std::vector<u64> evict_util_hist_;
  std::vector<u64> evict_unused_hist_;
};

static_assert(check::Auditable<PrefetchBuffer>);

}  // namespace camps::prefetch
