// STREAM — an extension scheme, not part of the paper's evaluation.
//
// The paper's related work contrasts CAMPS with adaptive stream detection
// (Hur & Lin, MICRO 2006), which prefetches ahead of detected sequential
// streams. This is a vault-side, row-granularity adaptation: a per-bank
// detector watches the direction of consecutive row activations; once a
// direction is confirmed `confidence_threshold` times, the next
// `degree` rows in stream order are prefetched (open-page policy, LRU
// buffer). It shines on strided/streaming row traffic and does nothing for
// conflict-dominated access patterns — exactly the gap CAMPS targets; the
// bench_ext_stream binary quantifies that contrast.
#pragma once

#include <string>
#include <vector>

#include "prefetch/scheme.hpp"

namespace camps::prefetch {

struct StreamParams {
  u32 banks = 16;
  u32 confidence_threshold = 2;  ///< Same-direction steps to confirm.
  u32 degree = 2;                ///< Rows prefetched ahead once confirmed.
};

class StreamScheme final : public PrefetchScheme {
 public:
  explicit StreamScheme(const StreamParams& params = {});

  PrefetchDecision on_demand_access(const AccessContext& ctx) override;
  std::string name() const override { return "STREAM"; }

  /// Detector state for tests: confirmed direction of a bank (0 if none).
  i64 direction(BankId bank) const;
  u32 confidence(BankId bank) const;

 private:
  struct Detector {
    RowId last_row = 0;
    i64 direction = 0;   ///< +1 / -1 once any step was seen; 0 initially.
    u32 confidence = 0;
    bool valid = false;
  };

  StreamParams p_;
  std::vector<Detector> detectors_;
};

}  // namespace camps::prefetch
