#include "prefetch/conflict_table.hpp"

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace camps::prefetch {

ConflictTable::ConflictTable(u32 entries) : capacity_(entries) {
  CAMPS_ASSERT(entries > 0);
}

bool ConflictTable::contains(BankRow id) const {
  return std::find(lru_.begin(), lru_.end(), id) != lru_.end();
}

std::optional<BankRow> ConflictTable::insert(BankRow id) {
  const auto it = std::find(lru_.begin(), lru_.end(), id);
  if (it != lru_.end()) {
    lru_.erase(it);
    lru_.push_front(id);
    return std::nullopt;
  }
  std::optional<BankRow> evicted;
  if (lru_.size() == capacity_) {
    evicted = lru_.back();
    lru_.pop_back();
  }
  lru_.push_front(id);
  return evicted;
}

bool ConflictTable::remove(BankRow id) {
  const auto it = std::find(lru_.begin(), lru_.end(), id);
  if (it == lru_.end()) return false;
  lru_.erase(it);
  return true;
}

std::vector<BankRow> ConflictTable::snapshot() const {
  return {lru_.begin(), lru_.end()};
}

}  // namespace camps::prefetch
