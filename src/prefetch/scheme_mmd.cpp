#include "prefetch/scheme_mmd.hpp"

#include "common/assert.hpp"

namespace camps::prefetch {

MmdScheme::MmdScheme(const MmdParams& params)
    : p_(params), degree_(params.initial_degree) {
  CAMPS_ASSERT(p_.max_degree >= 1);
  CAMPS_ASSERT(p_.initial_degree <= p_.max_degree);
  CAMPS_ASSERT(p_.epoch_evictions >= 1);
  CAMPS_ASSERT(p_.lower_threshold <= p_.raise_threshold);
}

PrefetchDecision MmdScheme::on_demand_access(const AccessContext& ctx) {
  if (ctx.outcome == dram::RowBufferOutcome::kHit) return {};

  if (degree_ == 0) {
    // Off: probe again after enough demand misses so feedback can resume.
    if (++misses_at_zero_ >= p_.probe_interval) {
      misses_at_zero_ = 0;
      degree_ = 1;
    } else {
      return {};
    }
  }

  PrefetchDecision d;
  d.fetch_row = true;
  d.precharge_after = false;  // open-page policy; scheduler decides later
  for (u32 i = 1; i < degree_; ++i) {
    d.extra_rows.push_back(ctx.row + i);
  }
  return d;
}

void MmdScheme::on_prefetch_evicted(BankRow /*row*/, bool was_used) {
  ++epoch_total_;
  if (was_used) ++epoch_used_;
  if (epoch_total_ < p_.epoch_evictions) return;

  const double usefulness =
      static_cast<double>(epoch_used_) / static_cast<double>(epoch_total_);
  if (usefulness > p_.raise_threshold && degree_ < p_.max_degree) {
    ++degree_;
  } else if (usefulness < p_.lower_threshold && degree_ > 0) {
    --degree_;
    misses_at_zero_ = 0;
  }
  epoch_total_ = epoch_used_ = 0;
  ++epochs_;
}

}  // namespace camps::prefetch
