// CAMPS and CAMPS-MOD (Sections 3.1 / 3.2) — the paper's contribution.
//
// Per-vault state: a Row Utilization Table (one entry per bank) and a
// Conflict Table (32 entries, fully associative, LRU). Decision flow,
// exactly as Figure 3 describes:
//
//   prefetch-buffer hit  -> served there; nothing to decide.
//   row-buffer HIT       -> count the access in the RUT; once the count
//                           reaches the threshold (4), fetch the whole row
//                           to the buffer, drop the RUT entry, precharge.
//   row-buffer MISS      -> the controller activates the row and serves the
//   (empty or conflict)     request. If the row already has a CT entry it
//                           is a proven conflict-causer: fetch it to the
//                           buffer, remove the CT entry, precharge.
//                           Otherwise keep the row open and (re)install it
//                           in the RUT; the entry it displaces moves to
//                           the CT.
//
// CAMPS pairs this with LRU buffer replacement; CAMPS-MOD swaps in the
// utilization+recency policy of Section 3.2. Both variants share this
// class — the only difference is make_replacement().
#pragma once

#include <memory>
#include <string>

#include "prefetch/conflict_table.hpp"
#include "prefetch/rut.hpp"
#include "prefetch/scheme.hpp"

namespace camps::prefetch {

struct CampsParams {
  u32 banks = 16;              ///< RUT entries per vault (Table I).
  u32 conflict_entries = 32;   ///< CT entries per vault.
  u32 utilization_threshold = 4;
  /// CAMPS-MOD: use the utilization+recency buffer replacement.
  bool modified_replacement = false;
};

class CampsScheme final : public PrefetchScheme {
 public:
  explicit CampsScheme(const CampsParams& params = {});

  PrefetchDecision on_demand_access(const AccessContext& ctx) override;
  /// Degradation flush (fault recovery): empties the RUT and CT wholesale.
  /// Empty tables trivially satisfy the exclusivity invariant, so the
  /// hand-off state cannot be corrupted mid-flight.
  void on_fault_flush() override;
  std::string name() const override {
    return p_.modified_replacement ? "CAMPS-MOD" : "CAMPS";
  }
  std::unique_ptr<ReplacementPolicy> make_replacement() const override;

  /// Invariants: the RUT and CT individually hold (delegated), the tables
  /// keep their configured shapes, a row's profile lives in the RUT *or*
  /// the CT but never both (the Section 3.1 hand-off moves it atomically),
  /// and the prefetch counters cross-foot. In debug builds this also runs
  /// automatically after every structural transition (see
  /// CAMPS_AUDIT_TRANSITIONS in scheme_camps.cpp).
  void audit(check::AuditReporter& reporter) const override;

  // Introspection for tests and stats.
  const RowUtilizationTable& rut() const { return rut_; }
  const ConflictTable& conflict_table() const { return ct_; }
  u64 threshold_prefetches() const { return threshold_prefetches_; }
  u64 conflict_prefetches() const { return conflict_prefetches_; }

  /// Hardware overhead of the profiling tables in bits (paper Section 3.3:
  /// 16x20 + 32x20 bits per vault = 120 bytes/vault, 3.75 KB per device).
  u64 overhead_bits() const {
    return rut_.overhead_bits() + ct_.overhead_bits();
  }

 private:
  friend struct check::TestCorruptor;

  CampsParams p_;
  RowUtilizationTable rut_;
  ConflictTable ct_;
  u64 threshold_prefetches_ = 0;
  u64 conflict_prefetches_ = 0;
};

}  // namespace camps::prefetch
