// Conflict Table (Section 3.1).
//
// Fully associative, 32 entries per vault, shared by all the vault's banks,
// LRU-replaced. It remembers rows recently displaced from row buffers; a
// newly activated row found here has caused a row-buffer conflict recently
// and becomes a prefetch candidate.
#pragma once

#include <list>
#include <optional>
#include <vector>

#include "check/audit.hpp"
#include "common/types.hpp"

namespace camps::prefetch {

class ConflictTable final {
 public:
  explicit ConflictTable(u32 entries = 32);

  /// True if (bank,row) is present. Does not update LRU order (pure query).
  bool contains(BankRow id) const;

  /// Inserts (bank,row) as MRU. If present already, refreshes its LRU
  /// position. If full, evicts the LRU entry and returns it.
  std::optional<BankRow> insert(BankRow id);

  /// Removes the entry if present (after its row has been prefetched).
  /// Returns true when something was removed.
  bool remove(BankRow id);

  u32 size() const { return static_cast<u32>(lru_.size()); }
  u32 capacity() const { return capacity_; }

  /// LRU-ordered snapshot, MRU first (for tests/inspection).
  std::vector<BankRow> snapshot() const;

  /// Hardware footprint in bits (paper: 32 entries x 20 bits per vault).
  u64 overhead_bits() const { return u64{capacity_} * 20; }

  /// Invariants: at most `capacity` entries and no (bank,row) appears
  /// twice in the LRU order (Section 3.1's fully-associative table).
  void audit(check::AuditReporter& reporter) const;

 private:
  friend struct check::TestCorruptor;

  u32 capacity_;
  std::list<BankRow> lru_;  ///< Front = MRU. 32 entries: linear scan is fine.
};

static_assert(check::Auditable<ConflictTable>);

}  // namespace camps::prefetch
