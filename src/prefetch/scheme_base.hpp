// BASE (Section 5): "prefetches a whole row at the first access to the
// row". Every demand access that had to open a row copies that row into
// the prefetch buffer and precharges the bank immediately. Consequence
// (noted with Fig. 6): the bank is always precharged between uses, so BASE
// has zero row-buffer conflicts — and the worst accuracy/energy, because
// every miss moves a full 1 KB row.
#pragma once

#include <string>

#include "prefetch/scheme.hpp"

namespace camps::prefetch {

class BaseScheme final : public PrefetchScheme {
 public:
  PrefetchDecision on_demand_access(const AccessContext& ctx) override;
  std::string name() const override { return "BASE"; }
};

}  // namespace camps::prefetch
