// No-prefetching scheme: a pure open-page baseline. Not part of the
// paper's comparison but invaluable for tests and ablations (it isolates
// the DRAM substrate from all prefetching effects).
#pragma once

#include <string>

#include "prefetch/scheme.hpp"

namespace camps::prefetch {

class NoPrefetchScheme final : public PrefetchScheme {
 public:
  PrefetchDecision on_demand_access(const AccessContext& ctx) override;
  std::string name() const override { return "NONE"; }
};

}  // namespace camps::prefetch
