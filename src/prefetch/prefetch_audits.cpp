// Cold-path audit() definitions for the CAMPS profiling structures
// (contract: check/audit.hpp; invariant catalog: docs/static_analysis.md).
// Kept out of the hot translation units so the audit code — which runs
// every N-hundred-thousand events, or never — does not dilute their .text.

#include <algorithm>
#include <bit>
#include <set>
#include <string>
#include <vector>

#include "check/audit.hpp"
#include "prefetch/conflict_table.hpp"
#include "prefetch/prefetch_buffer.hpp"
#include "prefetch/rut.hpp"
#include "prefetch/scheme_camps.hpp"

namespace camps {

void prefetch::ConflictTable::audit(check::AuditReporter& rep) const {
  const check::AuditScope scope(rep, "conflict_table");
  rep.expect(lru_.size() <= capacity_, "ct-capacity",
             std::to_string(lru_.size()) + " entries exceed the table's " +
                 std::to_string(capacity_) + "-entry capacity");
  // Fully associative: one entry per (bank,row). A duplicate would make
  // remove() leave a stale copy behind and corrupt the LRU order.
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    const auto dup = std::find(std::next(it), lru_.end(), *it);
    rep.expect(dup == lru_.end(), "ct-duplicate",
               "(bank " + std::to_string(it->bank) + ", row " +
                   std::to_string(it->row) +
                   ") appears more than once in the LRU order");
  }
}

void prefetch::RowUtilizationTable::audit(check::AuditReporter& rep) const {
  const check::AuditScope scope(rep, "rut");
  rep.expect(!entries_.empty(), "rut-shape", "table has no bank slots");
  for (size_t bank = 0; bank < entries_.size(); ++bank) {
    const auto& slot = entries_[bank];
    if (!slot) continue;
    rep.expect(slot->count >= 1, "rut-count",
               "bank " + std::to_string(bank) + " profiles row " +
                   std::to_string(slot->row) +
                   " with a zero request count (entries are created by "
                   "touch() with count 1)");
  }
}

void prefetch::PrefetchBuffer::audit(check::AuditReporter& rep) const {
  const check::AuditScope scope(rep, "prefetch_buffer");

  // Recency stack: a permutation of exactly the valid slots. Combined with
  // recency_of_position() this is Section 3.2's requirement that resident
  // rows carry distinct recency values with MRU = entries-1.
  rep.expect(mru_order_.size() <= cfg_.entries, "recency-overflow",
             "recency stack holds " + std::to_string(mru_order_.size()) +
                 " slots but the buffer has " + std::to_string(cfg_.entries));
  std::vector<bool> seen(slots_.size(), false);
  for (const u32 slot : mru_order_) {
    if (!rep.expect(slot < slots_.size(), "recency-range",
                    "recency stack references slot " + std::to_string(slot) +
                        " outside the buffer's " +
                        std::to_string(slots_.size()) + " slots")) {
      continue;
    }
    rep.expect(!seen[slot], "recency-permutation",
               "slot " + std::to_string(slot) +
                   " appears twice in the recency stack");
    seen[slot] = true;
    rep.expect(slots_[slot].valid, "recency-permutation",
               "recency stack lists slot " + std::to_string(slot) +
                   " but that slot is invalid");
  }
  u32 valid_slots = 0;
  for (const auto& e : slots_) valid_slots += e.valid ? 1 : 0;
  rep.expect(valid_slots == mru_order_.size(), "recency-permutation",
             std::to_string(valid_slots) + " resident rows but " +
                 std::to_string(mru_order_.size()) +
                 " recency-stack positions");

  // Per-entry bookkeeping.
  const u64 line_mask = cfg_.lines_per_row >= 64
                            ? ~u64{0}
                            : (u64{1} << cfg_.lines_per_row) - 1;
  for (u32 slot = 0; slot < slots_.size(); ++slot) {
    const Entry& e = slots_[slot];
    if (!e.valid) continue;
    const std::string who = "slot " + std::to_string(slot) + " (bank " +
                            std::to_string(e.id.bank) + ", row " +
                            std::to_string(e.id.row) + ")";
    rep.expect(e.utilization ==
                   static_cast<u32>(std::popcount(e.accessed_bitmap)),
               "utilization-popcount",
               who + ": cached utilization " +
                   std::to_string(e.utilization) +
                   " != popcount of accessed bitmap");
    rep.expect(e.utilization <= cfg_.lines_per_row, "utilization-bound",
               who + ": utilization " + std::to_string(e.utilization) +
                   " exceeds " + std::to_string(cfg_.lines_per_row) +
                   " lines per row");
    rep.expect((e.accessed_bitmap & ~line_mask) == 0 &&
                   (e.seed_bitmap & ~line_mask) == 0,
               "bitmap-range",
               who + ": reference bitmap marks lines past the row's " +
                   std::to_string(cfg_.lines_per_row) + " lines");
    rep.expect(e.useful_refs >= e.utilization, "useful-refs",
               who + ": " + std::to_string(e.useful_refs) +
                   " useful references cannot cover " +
                   std::to_string(e.utilization) + " distinct lines");
    // Duplicate residency would let one demand hit two copies.
    for (u32 other = slot + 1; other < slots_.size(); ++other) {
      rep.expect(!slots_[other].valid || !(slots_[other].id == e.id),
                 "duplicate-row",
                 who + ": also resident in slot " + std::to_string(other));
    }
  }

  // Victim-selection precondition: insert() on a full buffer consults the
  // policy, which requires a populated candidate list.
  rep.expect(policy_ != nullptr, "policy-missing",
             "no replacement policy attached");

  // Eviction statistics cross-foot with the histograms.
  rep.expect(evict_util_hist_.size() == cfg_.lines_per_row + 1 &&
                 evict_unused_hist_.size() == cfg_.lines_per_row + 1,
             "histogram-shape", "eviction histograms not sized lines+1");
  u64 util_sum = 0, unused_sum = 0;
  for (const u64 v : evict_util_hist_) util_sum += v;
  for (const u64 v : evict_unused_hist_) unused_sum += v;
  rep.expect(util_sum == evictions_, "eviction-crossfoot",
             "utilization histogram total " + std::to_string(util_sum) +
                 " != evictions " + std::to_string(evictions_));
  rep.expect(unused_sum == evicted_unreferenced_, "eviction-crossfoot",
             "unused histogram total " + std::to_string(unused_sum) +
                 " != unreferenced evictions " +
                 std::to_string(evicted_unreferenced_));
  rep.expect(evicted_unreferenced_ <= evictions_ &&
                 finished_referenced_ <= finished_rows_,
             "eviction-crossfoot",
             "subset counters exceed their totals");
}

void prefetch::CampsScheme::audit(check::AuditReporter& rep) const {
  const check::AuditScope scope(rep, name() == "CAMPS-MOD" ? "camps_mod"
                                                           : "camps");
  rut_.audit(rep);
  ct_.audit(rep);

  // Configured shapes survive (Table I: 16 RUT entries, 32 CT entries).
  rep.expect(rut_.banks() == p_.banks, "rut-shape",
             "RUT tracks " + std::to_string(rut_.banks()) +
                 " banks, configured for " + std::to_string(p_.banks));
  rep.expect(ct_.capacity() == p_.conflict_entries, "ct-shape",
             "CT capacity " + std::to_string(ct_.capacity()) +
                 " != configured " + std::to_string(p_.conflict_entries));

  // Section 3.1 hand-off exclusivity: a row's profile is either still being
  // accumulated in the RUT (row owns the bank's row buffer) or archived in
  // the CT (row was displaced) — never both at once. Both copies counting
  // the same row would double-trigger prefetches.
  for (BankId bank = 0; bank < rut_.banks(); ++bank) {
    const auto entry = rut_.entry(bank);
    if (!entry) continue;
    rep.expect(!ct_.contains(BankRow{bank, entry->row}), "rut-ct-exclusive",
               "row " + std::to_string(entry->row) + " of bank " +
                   std::to_string(bank) +
                   " is profiled in the RUT and archived in the CT at once");
  }
}

}  // namespace camps
