#include "prefetch/scheme_base_hit.hpp"

namespace camps::prefetch {

PrefetchDecision BaseHitScheme::on_demand_access(const AccessContext& ctx) {
  const u32 hits_for_row = ctx.queued_same_row + 1;  // +1: this request
  if (hits_for_row >= min_hits_) {
    // Like BASE, the copy is the service mechanism: the triggering request
    // and the queued same-row requests are satisfied out of the buffer
    // once the row lands there. The bank keeps the open-page policy.
    PrefetchDecision d;
    d.fetch_row = true;
    d.precharge_after = false;
    d.serve_via_buffer = true;
    return d;
  }
  return {};
}

}  // namespace camps::prefetch
