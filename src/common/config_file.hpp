// INI-style configuration file support.
//
// Examples and the experiment harness accept `key = value` files with
// optional `[section]` headers; section names are folded into the key as
// "section.key". Typed getters validate and convert on access so a typo in
// an experiment config fails loudly instead of silently using a default.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace camps {

class ConfigFile {
 public:
  ConfigFile() = default;

  /// Parses from text. Throws std::runtime_error with line information on a
  /// malformed line.
  static ConfigFile parse(const std::string& text);

  /// Loads and parses a file. Throws std::runtime_error if unreadable.
  static ConfigFile load(const std::string& path);

  bool has(const std::string& key) const;

  /// Typed getters: return the parsed value, or `fallback` when the key is
  /// absent. Throw std::runtime_error when the key exists but does not
  /// parse as the requested type.
  std::string get_string(const std::string& key,
                         const std::string& fallback = "") const;
  i64 get_int(const std::string& key, i64 fallback = 0) const;
  u64 get_uint(const std::string& key, u64 fallback = 0) const;
  double get_double(const std::string& key, double fallback = 0.0) const;
  bool get_bool(const std::string& key, bool fallback = false) const;

  void set(const std::string& key, const std::string& value);

  /// All keys, sorted.
  std::vector<std::string> keys() const;

  /// Validates that every key present is in `known`. Throws
  /// std::runtime_error naming each unknown key — with a did-you-mean
  /// suggestion when a known key is a near miss — so a typo like
  /// `audit_evry` fails loudly instead of silently using the default.
  void require_known(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace camps
