// Minimal deterministic JSON emission.
//
// Every machine-readable export in the repo (StatRegistry::dump_json, the
// Chrome trace exporter, --stats-json, the epoch sampler) goes through this
// writer so output is byte-stable: keys are emitted in caller order, doubles
// render as the shortest string that round-trips exactly, and there is no
// locale or pointer-order dependence anywhere. Byte-stability is what lets
// the determinism tests literally diff --jobs=1 against --jobs=2 output.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace camps {

/// JSON string escaping (quotes, backslash, control characters).
std::string json_escape(std::string_view s);

/// Shortest decimal rendering of `v` that parses back to the same double.
/// NaN/Inf (not representable in JSON) render as 0 — exports never contain
/// them on purpose, and a silent 0 beats invalid JSON downstream.
std::string json_double(double v);

/// Streaming JSON writer with optional pretty-printing. The caller is
/// responsible for well-formedness (matching begin/end, key before value
/// inside objects); the writer handles commas, indentation, and escaping.
class JsonWriter {
 public:
  /// `indent` = 0 emits compact JSON; > 0 pretty-prints with that many
  /// spaces per nesting level.
  explicit JsonWriter(int indent = 0) : indent_(indent) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits the key of the next object member.
  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v);
  void value(double v);
  void value(u64 v);
  void value(i64 v);
  void value(u32 v) { value(static_cast<u64>(v)); }
  void value(int v) { value(static_cast<i64>(v)); }

  /// Splices `json` (an already-rendered JSON value) in as the next value.
  /// The fragment keeps its own formatting; callers composing documents
  /// from raw fragments should use a consistent indent throughout.
  void raw(std::string_view json);

  /// Convenience: key + value in one call.
  template <typename T>
  void field(std::string_view k, T v) {
    key(k);
    value(v);
  }

  /// The document rendered so far. Call after the final end_*().
  const std::string& str() const { return out_; }

 private:
  void before_value();
  void newline_indent();

  std::string out_;
  int indent_;
  int depth_ = 0;
  /// Per-depth "a value has already been emitted at this level" flags.
  std::vector<bool> has_item_{false};
  bool pending_key_ = false;
};

/// Writes `content` to `path`; throws std::runtime_error on I/O failure.
void write_text_file(const std::string& path, std::string_view content);

}  // namespace camps
