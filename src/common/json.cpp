#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>

namespace camps {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "0";
  // Integers within exact-double range print without a fraction.
  if (v == static_cast<double>(static_cast<i64>(v)) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  // Shortest precision that survives a parse round-trip.
  char buf[64];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void JsonWriter::newline_indent() {
  if (indent_ == 0) return;
  out_ += '\n';
  out_.append(static_cast<size_t>(depth_ * indent_), ' ');
}

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // comma/indent were handled when the key was emitted
  }
  if (has_item_.back()) out_ += ',';
  if (depth_ > 0) newline_indent();
  has_item_.back() = true;
}

void JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  ++depth_;
  has_item_.push_back(false);
}

void JsonWriter::end_object() {
  const bool had_items = has_item_.back();
  has_item_.pop_back();
  --depth_;
  if (had_items) newline_indent();
  out_ += '}';
}

void JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  ++depth_;
  has_item_.push_back(false);
}

void JsonWriter::end_array() {
  const bool had_items = has_item_.back();
  has_item_.pop_back();
  --depth_;
  if (had_items) newline_indent();
  out_ += ']';
}

void JsonWriter::key(std::string_view k) {
  if (has_item_.back()) out_ += ',';
  newline_indent();
  has_item_.back() = true;
  out_ += '"';
  out_ += json_escape(k);
  out_ += indent_ > 0 ? "\": " : "\":";
  pending_key_ = true;
}

void JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
}

void JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
}

void JsonWriter::value(double v) {
  before_value();
  out_ += json_double(v);
}

void JsonWriter::raw(std::string_view json) {
  before_value();
  out_ += json;
}

void JsonWriter::value(u64 v) {
  before_value();
  out_ += std::to_string(v);
}

void JsonWriter::value(i64 v) {
  before_value();
  out_ += std::to_string(v);
}

void write_text_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) throw std::runtime_error("write to " + path + " failed");
}

}  // namespace camps
