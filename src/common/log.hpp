// Minimal leveled logging. Off (kWarn) by default so hot paths stay silent;
// tests and debugging sessions raise the level per component.
//
// printf-style formatting (GCC 12 in this toolchain has no <format>); the
// format string is checked by the compiler via the format attribute.
#pragma once

#include <string_view>

namespace camps {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

/// Process-wide log threshold. Messages below it are discarded before
/// formatting.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_vemit(LogLevel level, std::string_view component, const char* fmt,
               ...) __attribute__((format(printf, 3, 4)));
}

/// Writes one whole line to stderr under the process-wide logging mutex, so
/// lines emitted from concurrent sweep workers never interleave mid-line.
/// Unconditional (not subject to the log level): callers gate on their own
/// verbosity flags. A trailing '\n' is appended.
void progress_line(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

template <typename... Args>
void log(LogLevel level, std::string_view component, const char* fmt,
         Args&&... args) {
  if (level < log_level()) return;
  if constexpr (sizeof...(Args) == 0) {
    detail::log_vemit(level, component, "%s", fmt);
  } else {
    detail::log_vemit(level, component, fmt, std::forward<Args>(args)...);
  }
}

}  // namespace camps
