// Always-on invariant checks. Simulator correctness depends on state-machine
// invariants (e.g. "a bank never receives RD while precharging"); violating
// them silently would corrupt results, so these fire in release builds too.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace camps::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "CAMPS_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}

}  // namespace camps::detail

#define CAMPS_ASSERT(expr)                                              \
  do {                                                                  \
    if (!(expr)) [[unlikely]]                                           \
      ::camps::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define CAMPS_ASSERT_MSG(expr, msg)                                  \
  do {                                                               \
    if (!(expr)) [[unlikely]]                                        \
      ::camps::detail::assert_fail(#expr, __FILE__, __LINE__, msg);  \
  } while (0)
