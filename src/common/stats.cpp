#include "common/stats.hpp"

#include <algorithm>
#include <bit>
#include <functional>
#include <sstream>
#include <string>

#include "common/assert.hpp"
#include "common/json.hpp"

namespace camps {

Histogram::Histogram(u64 bucket_width, u32 num_buckets)
    : bucket_width_(bucket_width),
      shift_((bucket_width & (bucket_width - 1)) == 0
                 ? std::countr_zero(bucket_width)
                 : -1),
      buckets_(num_buckets + 1, 0) {
  CAMPS_ASSERT(bucket_width > 0);
  CAMPS_ASSERT(num_buckets > 0);
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const u64 target = static_cast<u64>(p / 100.0 * static_cast<double>(count_ - 1));
  u64 seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) {
      // Midpoint of the bucket; overflow bucket reports its lower edge.
      const double lo = static_cast<double>(i) * static_cast<double>(bucket_width_);
      if (i == buckets_.size() - 1) return lo;
      return lo + static_cast<double>(bucket_width_) / 2.0;
    }
  }
  return static_cast<double>(max_);
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = sum_ = min_ = max_ = 0;
}

void Histogram::merge_from(const Histogram& other) {
  CAMPS_ASSERT_MSG(bucket_width_ == other.bucket_width_ &&
                       buckets_.size() == other.buckets_.size(),
                   "histogram merge requires identical geometry");
  if (other.count_ == 0) return;
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

Counter& StatRegistry::counter(const std::string& name) {
  return counters_[name];
}

Histogram& StatRegistry::histogram(const std::string& name, u64 bucket_width,
                                   u32 num_buckets) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(bucket_width, num_buckets)).first;
  }
  return it->second;
}

void StatRegistry::add_formula(const std::string& name,
                               std::function<double()> fn) {
  formulas_[name] = std::move(fn);
}

u64 StatRegistry::counter_value(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

bool StatRegistry::has_counter(const std::string& name) const {
  return counters_.count(name) != 0;
}

const Histogram* StatRegistry::find_histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

u64 StatRegistry::sum_matching(const std::string& pattern) const {
  const auto star = pattern.find('*');
  if (star == std::string::npos) return counter_value(pattern);
  const std::string prefix = pattern.substr(0, star);
  const std::string suffix = pattern.substr(star + 1);
  u64 total = 0;
  // counters_ is sorted; jump to the first key >= prefix.
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    const std::string& name = it->first;
    if (name.compare(0, prefix.size(), prefix) != 0) break;
    if (name.size() >= prefix.size() + suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
      total += it->second.value();
    }
  }
  return total;
}

std::string StatRegistry::dump() const {
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    out << name << " = " << c.value() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    out << name << " = {count=" << h.count() << " mean=" << h.mean()
        << " min=" << h.min() << " max=" << h.max()
        << " p50=" << h.percentile(50) << " p99=" << h.percentile(99) << "}\n";
  }
  for (const auto& [name, fn] : formulas_) {
    out << name << " = " << fn() << '\n';
  }
  return out.str();
}

std::string StatRegistry::dump_json(int indent) const {
  JsonWriter w(indent);
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : counters_) w.field(name, c.value());
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    w.begin_object();
    w.field("count", h.count());
    w.field("sum", h.sum());
    w.field("min", h.min());
    w.field("max", h.max());
    w.field("mean", h.mean());
    w.field("p50", h.percentile(50));
    w.field("p95", h.percentile(95));
    w.field("p99", h.percentile(99));
    w.field("bucket_width", h.bucket_width());
    w.key("buckets");
    w.begin_array();
    for (u64 b : h.buckets()) w.value(b);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.key("formulas");
  w.begin_object();
  for (const auto& [name, fn] : formulas_) w.field(name, fn());
  w.end_object();
  w.end_object();
  return w.str();
}

void StatRegistry::reset() {
  for (auto& [_, c] : counters_) c.reset();
  for (auto& [_, h] : histograms_) h.reset();
}

void StatRegistry::merge_from(const StatRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counters_[name].merge_from(c);
  }
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_
               .emplace(name, Histogram(h.bucket_width(),
                                        static_cast<u32>(h.buckets().size() - 1)))
               .first;
    }
    it->second.merge_from(h);
  }
}

}  // namespace camps
