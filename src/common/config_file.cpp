#include "common/config_file.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace camps {
namespace {

std::string trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

[[noreturn]] void bad_value(const std::string& key, const std::string& value,
                            const char* type) {
  throw std::runtime_error("config key '" + key + "': value '" + value +
                           "' is not a valid " + type);
}

}  // namespace

ConfigFile ConfigFile::parse(const std::string& text) {
  ConfigFile cfg;
  std::istringstream in(text);
  std::string line;
  std::string section;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments ('#' or ';' to end of line).
    if (auto pos = line.find_first_of("#;"); pos != std::string::npos) {
      line.erase(pos);
    }
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        throw std::runtime_error("config line " + std::to_string(lineno) +
                                 ": unterminated section header");
      }
      section = trim(line.substr(1, line.size() - 2));
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("config line " + std::to_string(lineno) +
                               ": expected 'key = value'");
    }
    std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) {
      throw std::runtime_error("config line " + std::to_string(lineno) +
                               ": empty key");
    }
    if (!section.empty()) key = section + "." + key;
    cfg.values_[key] = value;
  }
  return cfg;
}

ConfigFile ConfigFile::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open config file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

bool ConfigFile::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string ConfigFile::get_string(const std::string& key,
                                   const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

i64 ConfigFile::get_int(const std::string& key, i64 fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  i64 out = 0;
  const auto& v = it->second;
  auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || ptr != v.data() + v.size()) {
    bad_value(key, v, "integer");
  }
  return out;
}

u64 ConfigFile::get_uint(const std::string& key, u64 fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  u64 out = 0;
  const auto& v = it->second;
  auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || ptr != v.data() + v.size()) {
    bad_value(key, v, "unsigned integer");
  }
  return out;
}

double ConfigFile::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const auto& v = it->second;
  try {
    size_t consumed = 0;
    const double out = std::stod(v, &consumed);
    if (consumed != v.size()) bad_value(key, v, "number");
    return out;
  } catch (const std::logic_error&) {
    bad_value(key, v, "number");
  }
}

bool ConfigFile::get_bool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  bad_value(key, it->second, "boolean");
}

void ConfigFile::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

std::vector<std::string> ConfigFile::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

namespace {

/// Levenshtein distance, for did-you-mean suggestions on unknown keys.
size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t up = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = up;
    }
  }
  return row[b.size()];
}

}  // namespace

void ConfigFile::require_known(const std::vector<std::string>& known) const {
  std::string errors;
  for (const auto& [key, _] : values_) {
    if (std::find(known.begin(), known.end(), key) != known.end()) continue;
    if (!errors.empty()) errors += "; ";
    errors += "unknown config key '" + key + "'";
    // Suggest the closest known key when it is plausibly a typo.
    const std::string* best = nullptr;
    size_t best_dist = 0;
    for (const std::string& k : known) {
      const size_t d = edit_distance(key, k);
      if (best == nullptr || d < best_dist) {
        best = &k;
        best_dist = d;
      }
    }
    if (best != nullptr && best_dist <= std::max<size_t>(2, key.size() / 4)) {
      errors += " (did you mean '" + *best + "'?)";
    }
  }
  if (!errors.empty()) throw std::runtime_error(errors);
}

}  // namespace camps
