#include "common/thread_pool.hpp"

#include <functional>

#include "common/assert.hpp"

namespace camps {

u32 ThreadPool::default_threads() {
  const u32 hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(u32 threads) {
  if (threads == 0) threads = default_threads();
  workers_.reserve(threads);
  for (u32 t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  CAMPS_ASSERT(job != nullptr);
  {
    std::unique_lock<std::mutex> lock(mu_);
    CAMPS_ASSERT_MSG(!shutdown_, "submit() after shutdown began");
    queue_.push_back(std::move(job));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with nothing left to do
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace camps
