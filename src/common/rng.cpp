#include "common/rng.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace camps {
namespace {

u64 splitmix64(u64& x) {
  x += 0x9E3779B97F4A7C15ULL;
  u64 z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(u64 seed) {
  u64 x = seed;
  for (auto& word : s_) word = splitmix64(x);
  // All-zero state is the one forbidden state of xoshiro; splitmix64 cannot
  // produce four zero outputs from any seed, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

u64 Rng::next() {
  const u64 result = rotl(s_[1] * 5, 7) * 9;
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

u64 Rng::next_below(u64 bound) {
  CAMPS_ASSERT(bound > 0);
  // Lemire's method: multiply into a 128-bit product; reject the small
  // biased region at the bottom.
  u64 x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  u64 low = static_cast<u64>(m);
  if (low < bound) {
    const u64 threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<u64>(m);
    }
  }
  return static_cast<u64>(m >> 64);
}

u64 Rng::next_range(u64 lo, u64 hi) {
  CAMPS_ASSERT(lo <= hi);
  return lo + next_below(hi - lo + 1);
}

double Rng::next_double() {
  // 53 high bits → uniform double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

u64 Rng::next_geometric(double mean) {
  if (mean <= 1.0) return 1;
  const double p = 1.0 / mean;
  double u = next_double();
  // Inverse CDF of the geometric distribution (support starting at 1).
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  const double draw = std::floor(std::log1p(-u) / std::log1p(-p)) + 1.0;
  if (draw < 1.0) return 1;
  if (draw > 1e18) return static_cast<u64>(1e18);
  return static_cast<u64>(draw);
}

Rng Rng::split(u64 salt) const {
  // Derive the child's seed from the parent state and the salt; the parent
  // state is untouched so parallel splits are order-independent.
  u64 x = s_[0] ^ rotl(s_[2], 13) ^ (salt * 0xD1342543DE82EF95ULL);
  return Rng(splitmix64(x));
}

}  // namespace camps
