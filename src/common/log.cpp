#include "common/log.hpp"

#include <cstdarg>
#include <cstdio>

namespace camps {
namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

namespace detail {
void log_vemit(LogLevel level, std::string_view component, const char* fmt,
               ...) {
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  std::fprintf(stderr, "[%s] %.*s: %s\n", level_name(level),
               static_cast<int>(component.size()), component.data(), buf);
}
}  // namespace detail

}  // namespace camps
