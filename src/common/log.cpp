#include "common/log.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <mutex>

namespace camps {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

/// Serializes all stderr emission (log lines and progress lines) so
/// concurrent sweep workers produce whole lines.
std::mutex& stderr_mutex() {
  static std::mutex mu;
  return mu;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {
void log_vemit(LogLevel level, std::string_view component, const char* fmt,
               ...) {
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  std::lock_guard<std::mutex> lock(stderr_mutex());
  std::fprintf(stderr, "[%s] %.*s: %s\n", level_name(level),
               static_cast<int>(component.size()), component.data(), buf);
}
}  // namespace detail

void progress_line(const char* fmt, ...) {
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  std::lock_guard<std::mutex> lock(stderr_mutex());
  std::fprintf(stderr, "%s\n", buf);
}

}  // namespace camps
