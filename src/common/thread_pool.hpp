// A small reusable fixed-size thread pool.
//
// Built for the experiment runner's embarrassingly parallel sweeps: jobs
// are independent simulations that share nothing mutable, so the pool is a
// plain work queue with no stealing or priorities. wait_idle() gives the
// submitter a barrier without destroying the workers, so one pool can serve
// several sweep rounds in a single bench process.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace camps {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (itself clamped to at least 1).
  explicit ThreadPool(u32 threads = 0);

  /// Drains outstanding jobs, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job. Jobs may submit further jobs.
  void submit(std::function<void()> job);

  /// Blocks until every submitted job (including jobs submitted by jobs)
  /// has finished. The pool stays usable afterwards.
  void wait_idle();

  u32 size() const { return static_cast<u32>(workers_.size()); }

  /// The worker count a `threads == 0` pool would get on this host.
  static u32 default_threads();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  u32 active_ = 0;      ///< Jobs currently executing.
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace camps
