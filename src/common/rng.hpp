// Deterministic pseudo-random number generation for trace synthesis.
//
// xoshiro256** — fast, high quality, and (unlike std::mt19937) with a
// stable, documented output sequence across standard-library versions, so
// synthetic workloads are reproducible byte-for-byte on any platform.
#pragma once

#include <array>

#include "common/types.hpp"

namespace camps {

class Rng {
 public:
  /// Seeds the four 64-bit state words from a single seed via SplitMix64,
  /// the initialization recommended by the xoshiro authors.
  explicit Rng(u64 seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  u64 next();

  /// Uniform in [0, bound). Uses Lemire's multiply-shift rejection method.
  u64 next_below(u64 bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  u64 next_range(u64 lo, u64 hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// Approximately geometric draw with mean `mean` (>= 1); used for run
  /// lengths. Always returns at least 1.
  u64 next_geometric(double mean);

  /// Splits off an independently-seeded child generator. Children of the
  /// same parent with different salts produce uncorrelated streams.
  Rng split(u64 salt) const;

 private:
  std::array<u64, 4> s_{};
};

}  // namespace camps
