// Lightweight statistics framework.
//
// Every simulator component registers named counters and histograms with a
// StatRegistry. The registry renders a stable, alphabetically sorted dump
// and supports derived "formula" stats evaluated at dump time (e.g. IPC,
// prefetch accuracy) so the raw counters stay cheap on the hot path.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace camps {

/// A monotonically increasing event counter.
class Counter {
 public:
  void inc(u64 by = 1) { value_ += by; }
  u64 value() const { return value_; }
  void reset() { value_ = 0; }

  /// Adds `other`'s count to this one (for cross-instance aggregation).
  void merge_from(const Counter& other) { value_ += other.value_; }

 private:
  u64 value_ = 0;
};

/// Fixed-bucket histogram over [0, bucket_width * num_buckets); values past
/// the last bucket land in an overflow bucket. Tracks sum/min/max exactly.
class Histogram {
 public:
  Histogram() : Histogram(16, 64) {}
  Histogram(u64 bucket_width, u32 num_buckets);

  /// Hot path: a handful of adds plus a shift (power-of-two widths) or one
  /// integer division. Components sample per memory access, so keep widths
  /// powers of two where the cost matters.
  void sample(u64 value) {
    u64 idx = shift_ >= 0 ? value >> shift_ : value / bucket_width_;
    if (idx >= buckets_.size() - 1) idx = buckets_.size() - 1;  // overflow
    ++buckets_[idx];
    ++count_;
    sum_ += value;
    if (count_ == 1) {
      min_ = max_ = value;
    } else {
      min_ = value < min_ ? value : min_;
      max_ = value > max_ ? value : max_;
    }
  }

  u64 count() const { return count_; }
  u64 sum() const { return sum_; }
  u64 min() const { return count_ ? min_ : 0; }
  u64 max() const { return max_; }
  double mean() const { return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0; }
  /// Linear-interpolated percentile in [0,100]; exact at bucket granularity.
  double percentile(double p) const;
  const std::vector<u64>& buckets() const { return buckets_; }
  u64 bucket_width() const { return bucket_width_; }
  void reset();

  /// Adds `other`'s samples to this histogram. Requires identical geometry
  /// (bucket width and count) — merging across differently shaped
  /// histograms would silently misbucket.
  void merge_from(const Histogram& other);

 private:
  u64 bucket_width_;
  int shift_;  // log2(bucket_width_) when a power of two, else -1
  std::vector<u64> buckets_;  // last element is the overflow bucket
  u64 count_ = 0;
  u64 sum_ = 0;
  u64 min_ = 0;
  u64 max_ = 0;
};

/// Central registry. Components hold references to the Counter/Histogram
/// objects it owns; names use '.'-separated paths ("vault7.rd_queue_full").
class StatRegistry {
 public:
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name, u64 bucket_width = 16,
                       u32 num_buckets = 64);

  /// Derived value computed at dump time from other stats.
  void add_formula(const std::string& name, std::function<double()> fn);

  /// Returns the counter value, or 0 if it was never registered.
  u64 counter_value(const std::string& name) const;
  bool has_counter(const std::string& name) const;

  /// Registered histogram by exact name, or nullptr. Never creates.
  const Histogram* find_histogram(const std::string& name) const;

  /// Sum of all counters whose name matches `prefix*suffix` with a single
  /// '*' wildcard in `pattern` (or exact match when no '*'). Used to
  /// aggregate per-vault counters into device totals.
  u64 sum_matching(const std::string& pattern) const;

  /// Renders "name = value" lines, sorted by name.
  std::string dump() const;

  /// Machine-readable registry dump: {"counters": {...}, "histograms":
  /// {name: {count,sum,min,max,mean,p50,p95,p99,bucket_width,buckets}},
  /// "formulas": {...}}. Names sort alphabetically and doubles render
  /// shortest-round-trip, so the output is byte-stable across runs and
  /// --jobs settings (see common/json.hpp).
  std::string dump_json(int indent = 0) const;

  void reset();

  /// Folds every counter and histogram of `other` into this registry,
  /// creating entries that don't exist yet. Counters add; histograms
  /// require matching geometry. Formulas are NOT merged: they capture
  /// references into their own registry, so each System re-registers them.
  /// This is what makes per-worker registries safe to aggregate after a
  /// parallel sweep without double-counting — each worker owns a private
  /// registry and the merge happens exactly once, under the caller's lock.
  void merge_from(const StatRegistry& other);

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, std::function<double()>> formulas_;
};

}  // namespace camps
