// Fundamental value types shared by every CAMPS subsystem.
//
// The simulator measures time in *CPU ticks* (see sim/clock.hpp for the
// clock-domain conversions). Addresses are full 64-bit physical addresses;
// the HMC address mapper (hmc/address_map.hpp) decomposes them into
// row/bank/vault/column coordinates.
#pragma once

#include <cstdint>
#include <limits>

namespace camps {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Physical byte address.
using Addr = u64;

/// Simulation time in CPU ticks (3 GHz by default).
using Tick = u64;

/// Sentinel for "no tick" / "never".
inline constexpr Tick kTickNever = std::numeric_limits<Tick>::max();

/// Identifier types. Plain integers by design: these index dense arrays on
/// hot paths, and the address mapper guarantees their ranges.
using CoreId = u32;
using VaultId = u32;
using BankId = u32;   ///< Bank index *within* a vault.
using RowId = u64;    ///< Row index within a bank.
using LineId = u32;   ///< Cache-line (column) index within a row.

/// A row uniquely identified inside one vault: (bank, row).
struct BankRow {
  BankId bank = 0;
  RowId row = 0;

  friend bool operator==(const BankRow&, const BankRow&) = default;
};

/// Memory access direction.
enum class AccessType : u8 { kRead, kWrite };

inline const char* to_string(AccessType t) {
  return t == AccessType::kRead ? "read" : "write";
}

}  // namespace camps
