// Cancellable, generation-safe timeout timers on top of the Simulator.
//
// The event queue has no removal operation (events are cheap, removal is
// not), so a cancelled timeout leaves a dead event behind that fires as a
// no-op. TimeoutScheduler wraps the pattern: arm() returns a handle,
// cancel() invalidates it, and the wrapped event checks liveness before
// invoking the callback. Handles are never reused, so a late cancel of an
// already-fired timer is a harmless no-op rather than a use-after-free of
// a recycled slot.
//
// Note: an armed-then-cancelled timer still counts toward
// Simulator::events_executed() when its dead event fires. Components that
// must keep event counts identical to a configuration without timers (the
// fault-free byte-identity guarantee) must not arm timers at all in that
// configuration, rather than arm-and-cancel.
#pragma once

#include <functional>
#include <set>

#include "sim/simulator.hpp"

namespace camps::sim {

class TimeoutScheduler final {
 public:
  using Handle = u64;

  explicit TimeoutScheduler(Simulator& sim) : sim_(sim) {}
  TimeoutScheduler(const TimeoutScheduler&) = delete;
  TimeoutScheduler& operator=(const TimeoutScheduler&) = delete;

  /// Schedules `fn` to run `delay` ticks from now unless cancelled first.
  Handle arm(Tick delay, std::function<void()> fn) {
    const Handle h = next_++;
    live_.insert(h);
    sim_.schedule(delay, [this, h, fn = std::move(fn)] {
      if (live_.erase(h) == 0) return;  // cancelled before firing
      fn();
    });
    return h;
  }

  /// Returns true if the timer was still pending (and is now disarmed).
  bool cancel(Handle h) { return live_.erase(h) != 0; }

  /// Timers armed and neither fired nor cancelled.
  size_t pending() const { return live_.size(); }

 private:
  Simulator& sim_;
  Handle next_ = 1;
  std::set<Handle> live_;  ///< Ordered: deterministic and audit-friendly.
};

}  // namespace camps::sim
