// Clock-domain arithmetic.
//
// Global simulation time (Tick) is an integer count of 1/24-ns quanta. That
// quantum is the largest one in which both clocks of Table I are integral:
//
//   CPU   3 GHz      -> period 1/3 ns  =  8 ticks
//   DRAM  800 MHz    -> period 5/4 ns  = 30 ticks   (DDR3-1600 command clock)
//
// Using an integral quantum keeps every cross-domain conversion exact, so
// simulations are deterministic and phase relationships never drift.
// Serial-link serialization times (12.5 Gbps lanes) are not integral in this
// quantum; the link model rounds each packet's serialization latency up to
// whole ticks, which under-reports link bandwidth by < 3% worst case and is
// documented in hmc/serial_link.hpp.
#pragma once

#include "common/assert.hpp"
#include "common/types.hpp"

namespace camps::sim {

/// Simulation quanta per nanosecond.
inline constexpr u64 kTicksPerNs = 24;

/// CPU clock: 3 GHz.
inline constexpr u64 kCpuTicksPerCycle = 8;

/// DRAM command clock: 800 MHz (DDR3-1600).
inline constexpr u64 kDramTicksPerCycle = 30;

/// A fixed-frequency clock domain anchored at tick 0.
class ClockDomain {
 public:
  explicit ClockDomain(u64 ticks_per_cycle) : ticks_per_cycle_(ticks_per_cycle) {
    CAMPS_ASSERT(ticks_per_cycle > 0);
  }

  u64 ticks_per_cycle() const { return ticks_per_cycle_; }

  /// Duration of `cycles` cycles, in ticks.
  Tick to_ticks(u64 cycles) const { return cycles * ticks_per_cycle_; }

  /// Number of *complete* cycles elapsed at `tick`.
  u64 to_cycles(Tick tick) const { return tick / ticks_per_cycle_; }

  /// The first clock edge at or after `tick`.
  Tick next_edge(Tick tick) const {
    const Tick rem = tick % ticks_per_cycle_;
    return rem == 0 ? tick : tick + (ticks_per_cycle_ - rem);
  }

  /// The first edge strictly after `tick`.
  Tick edge_after(Tick tick) const {
    return next_edge(tick + 1);
  }

 private:
  u64 ticks_per_cycle_;
};

inline ClockDomain cpu_clock() { return ClockDomain(kCpuTicksPerCycle); }
inline ClockDomain dram_clock() { return ClockDomain(kDramTicksPerCycle); }

}  // namespace camps::sim
