// Cold-path audit() definitions for the event queue and simulator
// (contract: check/audit.hpp; invariant catalog: docs/static_analysis.md).
// Kept out of the hot translation units so the audit code — which runs
// every N-hundred-thousand events, or never — does not dilute their .text.

#include <set>
#include <string>

#include "check/audit.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace camps {

void sim::EventQueue::audit(check::AuditReporter& rep) const {
  const check::AuditScope scope(rep, "event_queue");

  // Heap shape: every node sorts no earlier than its parent.
  for (size_t i = 1; i < heap_.size(); ++i) {
    const size_t parent = (i - 1) / 2;
    rep.expect(!earlier(heap_[i], heap_[parent]), "heap-order",
               "heap[" + std::to_string(i) + "] (when=" +
                   std::to_string(heap_[i].when) + ", seq=" +
                   std::to_string(heap_[i].seq) +
                   ") sorts earlier than its parent heap[" +
                   std::to_string(parent) + "] (when=" +
                   std::to_string(heap_[parent].when) + ", seq=" +
                   std::to_string(heap_[parent].seq) + ")");
  }

  // Slab partition: heap slots and free slots are disjoint, in range, and
  // together cover the slab exactly once.
  rep.expect(heap_.size() + free_.size() == slab_.size(), "slab-partition",
             "heap (" + std::to_string(heap_.size()) + ") + free list (" +
                 std::to_string(free_.size()) + ") != slab size (" +
                 std::to_string(slab_.size()) + ")");
  std::set<u32> seen_slots;
  std::set<u64> seen_seqs;
  for (const HeapEntry& entry : heap_) {
    if (!rep.expect(entry.slot < slab_.size(), "slot-range",
                    "heap entry references slot " +
                        std::to_string(entry.slot) + " outside slab of " +
                        std::to_string(slab_.size()))) {
      continue;
    }
    rep.expect(seen_slots.insert(entry.slot).second, "slot-duplicate",
               "slot " + std::to_string(entry.slot) +
                   " appears twice in the heap");
    rep.expect(static_cast<bool>(slab_[entry.slot]), "slot-live",
               "in-heap slot " + std::to_string(entry.slot) +
                   " holds an empty event");
    rep.expect(entry.seq < next_seq_, "seq-range",
               "heap seq " + std::to_string(entry.seq) +
                   " >= next_seq " + std::to_string(next_seq_));
    rep.expect(seen_seqs.insert(entry.seq).second, "seq-duplicate",
               "sequence number " + std::to_string(entry.seq) +
                   " appears twice (tie-break order would be ambiguous)");
  }
  for (const u32 slot : free_) {
    if (!rep.expect(slot < slab_.size(), "slot-range",
                    "free-list slot " + std::to_string(slot) +
                        " outside slab of " + std::to_string(slab_.size()))) {
      continue;
    }
    rep.expect(seen_slots.insert(slot).second, "slot-duplicate",
               "slot " + std::to_string(slot) +
                   " is both in the heap and on the free list (or listed "
                   "free twice)");
    rep.expect(!static_cast<bool>(slab_[slot]), "slot-leak",
               "free slot " + std::to_string(slot) +
                   " still holds a live event");
  }
}

void sim::Simulator::audit(check::AuditReporter& rep) const {
  const check::AuditScope scope(rep, "sim");
  if (!queue_.empty()) {
    rep.expect(now_ <= queue_.next_time(), "time-monotone",
               "now (" + std::to_string(now_) +
                   ") is past the earliest pending event (" +
                   std::to_string(queue_.next_time()) + ")");
  }
  queue_.audit(rep);
}

}  // namespace camps
