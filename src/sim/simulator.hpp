// The simulation executive: owns the event queue and the notion of "now".
//
// Components capture `Simulator&` and call schedule()/schedule_at(); the
// system driver calls run() variants. Time only moves forward.
#pragma once

#include <functional>

#include "sim/event_queue.hpp"

namespace camps::sim {

class Simulator final {
 public:
  Tick now() const { return now_; }

  /// Schedules `fn` to run `delay` ticks from now.
  void schedule(Tick delay, EventFn fn);

  /// Schedules `fn` at absolute tick `when`; must be >= now().
  void schedule_at(Tick when, EventFn fn);

  /// Runs until the queue drains. Returns the number of events executed.
  u64 run();

  /// Runs events with time <= `deadline`; afterwards now() == deadline if
  /// the queue drained or the next event lies beyond it.
  u64 run_until(Tick deadline);

  /// Runs until `pred()` becomes true (checked after every event) or the
  /// queue drains. Returns true if the predicate fired.
  bool run_while_pending(const std::function<bool()>& pred);

  /// Executes exactly one event, if any. Returns false if queue was empty.
  bool step();

  u64 events_executed() const { return executed_; }
  EventQueue& queue() { return queue_; }

  /// Calls `fn` after every `every_events` executed events (0 disables).
  /// The audit driver hangs its periodic model audits here; the disabled
  /// case costs one predictable branch per event.
  void set_event_hook(u64 every_events, std::function<void()> fn) {
    hook_every_ = fn ? every_events : 0;
    hook_countdown_ = hook_every_;
    hook_ = std::move(fn);
  }

  /// Invariants: time never outruns the earliest pending event, and the
  /// event queue's internal structure holds (delegated).
  void audit(check::AuditReporter& reporter) const;

 private:
  /// Shared post-event bookkeeping for all run variants.
  void after_event() {
    ++executed_;
    if (hook_every_ != 0 && --hook_countdown_ == 0) [[unlikely]] {
      hook_countdown_ = hook_every_;
      hook_();
    }
  }

  EventQueue queue_;
  Tick now_ = 0;
  u64 executed_ = 0;
  u64 hook_every_ = 0;
  u64 hook_countdown_ = 0;
  std::function<void()> hook_;
};

static_assert(check::Auditable<Simulator>);

}  // namespace camps::sim
