// The simulation executive: owns the event queue and the notion of "now".
//
// Components capture `Simulator&` and call schedule()/schedule_at(); the
// system driver calls run() variants. Time only moves forward.
#pragma once

#include <functional>

#include "sim/event_queue.hpp"

namespace camps::sim {

class Simulator {
 public:
  Tick now() const { return now_; }

  /// Schedules `fn` to run `delay` ticks from now.
  void schedule(Tick delay, EventFn fn);

  /// Schedules `fn` at absolute tick `when`; must be >= now().
  void schedule_at(Tick when, EventFn fn);

  /// Runs until the queue drains. Returns the number of events executed.
  u64 run();

  /// Runs events with time <= `deadline`; afterwards now() == deadline if
  /// the queue drained or the next event lies beyond it.
  u64 run_until(Tick deadline);

  /// Runs until `pred()` becomes true (checked after every event) or the
  /// queue drains. Returns true if the predicate fired.
  bool run_while_pending(const std::function<bool()>& pred);

  /// Executes exactly one event, if any. Returns false if queue was empty.
  bool step();

  u64 events_executed() const { return executed_; }
  EventQueue& queue() { return queue_; }

 private:
  EventQueue queue_;
  Tick now_ = 0;
  u64 executed_ = 0;
};

}  // namespace camps::sim
