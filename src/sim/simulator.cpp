#include "sim/simulator.hpp"

#include <functional>
#include <string>

#include "common/assert.hpp"

namespace camps::sim {

void Simulator::schedule(Tick delay, EventFn fn) {
  queue_.schedule(now_ + delay, std::move(fn));
}

void Simulator::schedule_at(Tick when, EventFn fn) {
  CAMPS_ASSERT_MSG(when >= now_, "cannot schedule into the past");
  queue_.schedule(when, std::move(fn));
}

u64 Simulator::run() {
  u64 n = 0;
  while (step()) ++n;
  return n;
}

u64 Simulator::run_until(Tick deadline) {
  u64 n = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    step();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

bool Simulator::run_while_pending(const std::function<bool()>& pred) {
  while (!queue_.empty()) {
    step();
    if (pred()) return true;
  }
  return pred();
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [when, fn] = queue_.pop();
  CAMPS_ASSERT(when >= now_);
  now_ = when;
  fn();
  after_event();
  return true;
}

}  // namespace camps::sim
