#include "sim/event_queue.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace camps::sim {

void EventQueue::schedule(Tick when, EventFn fn) {
  heap_.push_back(Entry{when, next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

Tick EventQueue::next_time() const {
  CAMPS_ASSERT(!heap_.empty());
  return heap_.front().when;
}

std::pair<Tick, EventFn> EventQueue::pop() {
  CAMPS_ASSERT(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  return {e.when, std::move(e.fn)};
}

void EventQueue::clear() { heap_.clear(); }

}  // namespace camps::sim
