#include "sim/event_queue.hpp"

#include <algorithm>
#include <set>
#include <string>

#include "common/assert.hpp"

namespace camps::sim {

void EventQueue::schedule(Tick when, EventFn fn) {
  u32 slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
    slab_[slot] = std::move(fn);
  } else {
    slot = static_cast<u32>(slab_.size());
    slab_.push_back(std::move(fn));
  }
  heap_.push_back(HeapEntry{when, next_seq_++, slot});
  sift_up(heap_.size() - 1);
}

Tick EventQueue::next_time() const {
  CAMPS_ASSERT(!heap_.empty());
  return heap_.front().when;
}

std::pair<Tick, EventFn> EventQueue::pop() {
  CAMPS_ASSERT(!heap_.empty());
  const HeapEntry top = heap_.front();
  std::pair<Tick, EventFn> out{top.when, std::move(slab_[top.slot])};
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  free_.push_back(top.slot);
  return out;
}

void EventQueue::clear() {
  heap_.clear();
  slab_.clear();
  free_.clear();
}

void EventQueue::sift_up(size_t i) {
  const HeapEntry entry = heap_[i];
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!earlier(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void EventQueue::sift_down(size_t i) {
  const HeapEntry entry = heap_[i];
  const size_t n = heap_.size();
  while (true) {
    size_t child = 2 * i + 1;
    if (child >= n) break;
    const size_t right = child + 1;
    if (right < n && earlier(heap_[right], heap_[child])) child = right;
    if (!earlier(heap_[child], entry)) break;
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = entry;
}

}  // namespace camps::sim
