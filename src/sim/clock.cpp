// clock.hpp is header-only; this file exists so the camps_sim target always
// has at least one translation unit exercising the header under the
// project's warning flags.
#include "sim/clock.hpp"

namespace camps::sim {

static_assert(kCpuTicksPerCycle * 3 == kTicksPerNs,      // 3 GHz
              "CPU clock must be exactly 3 GHz in the tick quantum");
static_assert(kDramTicksPerCycle * 4 == kTicksPerNs * 5, // 800 MHz
              "DRAM clock must be exactly 800 MHz in the tick quantum");

}  // namespace camps::sim
