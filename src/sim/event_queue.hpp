// Discrete-event priority queue.
//
// Events at equal ticks execute in insertion order (a monotone sequence
// number breaks heap ties), which makes whole-system runs bit-for-bit
// deterministic regardless of heap internals.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace camps::sim {

using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Schedules `fn` to run at absolute time `when`. `when` must not precede
  /// the time of the most recently popped event.
  void schedule(Tick when, EventFn fn);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Requires !empty().
  Tick next_time() const;

  /// Pops and returns the earliest event. Requires !empty().
  std::pair<Tick, EventFn> pop();

  /// Total events ever scheduled (for stats / tests).
  u64 scheduled_count() const { return next_seq_; }

  void clear();

 private:
  struct Entry {
    Tick when;
    u64 seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::vector<Entry> heap_;
  u64 next_seq_ = 0;
};

}  // namespace camps::sim
