// Discrete-event priority queue.
//
// Events at equal ticks execute in insertion order (a monotone sequence
// number breaks heap ties), which makes whole-system runs bit-for-bit
// deterministic regardless of heap internals.
//
// Two hot-path design choices (see bench/micro_event_queue.cpp):
//  * Event is a small-buffer-optimized functor: captures up to
//    Event::kInlineCapacity bytes live inside the event record, so the
//    common vault/core/cache callbacks never touch the heap. Larger or
//    over-aligned captures fall back to a heap allocation (counted, so
//    tests can assert the fast path stays fast).
//  * The queue is a key-in-heap index heap: the binary heap holds compact
//    (when, seq, slot) entries while the ~100-byte Event payloads sit in a
//    slab addressed by slot. Sifts compare and move 24-byte POD entries in
//    one contiguous array — no payload moves, no slab pointer chasing — and
//    popped slots are recycled through a free list.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "check/audit.hpp"
#include "common/types.hpp"

namespace camps::sim {

/// A move-only `void()` callable with inline storage for small captures.
/// Drop-in for the hot subset of std::function<void()>: no copy, no
/// target-type queries, but also no heap allocation for any nothrow-movable
/// capture of at most kInlineCapacity bytes.
class Event {
 public:
  /// Sized to the largest scheduling capture in the simulator (HmcDevice
  /// forwards a MemRequest + DecodedAddr + tick = 80 bytes).
  static constexpr size_t kInlineCapacity = 88;

  Event() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Event> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Event(F&& f) {  // NOLINT(google-explicit-constructor): functor adaptor
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCapacity &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); };
      if constexpr (!std::is_trivially_copyable_v<Fn> ||
                    !std::is_trivially_destructible_v<Fn>) {
        manage_ = [](void* dst, void* src, Op op) {
          if (op == Op::kRelocate) {
            Fn* from = std::launder(reinterpret_cast<Fn*>(src));
            ::new (dst) Fn(std::move(*from));
            from->~Fn();
          } else {
            std::launder(reinterpret_cast<Fn*>(dst))->~Fn();
          }
        };
      }
    } else {
      heap_allocations_.fetch_add(1, std::memory_order_relaxed);
      heap_ = true;
      Fn* heap = new Fn(std::forward<F>(f));
      std::memcpy(buf_, &heap, sizeof heap);
      invoke_ = [](void* p) {
        Fn* fn;
        std::memcpy(&fn, p, sizeof fn);
        (*fn)();
      };
      manage_ = [](void* dst, void* src, Op op) {
        if (op == Op::kRelocate) {
          std::memcpy(dst, src, sizeof(Fn*));
        } else {
          Fn* fn;
          std::memcpy(&fn, dst, sizeof fn);
          delete fn;
        }
      };
    }
  }

  Event(Event&& other) noexcept { move_from(other); }
  Event& operator=(Event&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;
  ~Event() { reset(); }

  void operator()() { invoke_(buf_); }

  explicit operator bool() const { return invoke_ != nullptr; }

  /// True if the capture lives in the inline buffer (no heap allocation).
  bool is_inline() const { return invoke_ != nullptr && !heap_; }

  void reset() {
    if (invoke_ && manage_) manage_(buf_, nullptr, Op::kDestroy);
    invoke_ = nullptr;
    manage_ = nullptr;
    heap_ = false;
  }

  /// Process-wide count of events whose capture spilled to the heap. A hot
  /// loop staying allocation-free shows up here as a flat line; tests and
  /// the microbenchmark assert on deltas.
  static u64 heap_allocation_count() {
    return heap_allocations_.load(std::memory_order_relaxed);
  }

 private:
  enum class Op { kRelocate, kDestroy };

  void move_from(Event& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    heap_ = other.heap_;
    if (invoke_) {
      if (manage_) {
        manage_(buf_, other.buf_, Op::kRelocate);
      } else {
        std::memcpy(buf_, other.buf_, kInlineCapacity);
      }
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
    other.heap_ = false;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineCapacity];
  void (*invoke_)(void*) = nullptr;
  /// Non-null only when relocation/destruction is non-trivial (inline
  /// non-trivially-copyable capture, or heap-spilled capture).
  void (*manage_)(void* dst, void* src, Op op) = nullptr;
  bool heap_ = false;

  static inline std::atomic<u64> heap_allocations_{0};
};

using EventFn = Event;

class EventQueue final {
 public:
  /// Schedules `fn` to run at absolute time `when`. `when` must not precede
  /// the time of the most recently popped event.
  void schedule(Tick when, EventFn fn);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Requires !empty().
  Tick next_time() const;

  /// Pops and returns the earliest event. Requires !empty().
  std::pair<Tick, EventFn> pop();

  /// Total events ever scheduled (for stats / tests).
  u64 scheduled_count() const { return next_seq_; }

  void clear();

  /// Invariants: the heap is a valid min-heap over (when, seq); the in-heap
  /// slots and the free list exactly partition the slab; every in-heap slot
  /// holds a live event and every free slot an empty one; sequence numbers
  /// are distinct and below next_seq_.
  void audit(check::AuditReporter& reporter) const;

 private:
  friend struct check::TestCorruptor;

  /// Heap node: the full sort key plus the slab slot of the payload. Keeping
  /// the key here (instead of dereferencing the slab in the comparator) keeps
  /// sift traffic inside one contiguous, trivially-movable array.
  struct HeapEntry {
    Tick when;
    u64 seq;
    u32 slot;
  };

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  void sift_up(size_t i);
  void sift_down(size_t i);

  std::vector<Event> slab_;      ///< Payloads, addressed by HeapEntry::slot.
  std::vector<HeapEntry> heap_;  ///< Min-heap keyed (when, seq).
  std::vector<u32> free_;        ///< Recycled slab slots.
  u64 next_seq_ = 0;
};

static_assert(check::Auditable<EventQueue>);

}  // namespace camps::sim
