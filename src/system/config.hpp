// Whole-system configuration (Table I) and config-file overrides.
#pragma once

#include "cache/hierarchy.hpp"
#include "common/config_file.hpp"
#include "cpu/core.hpp"
#include "hmc/hmc_device.hpp"
#include "obs/obs_config.hpp"
#include "prefetch/factory.hpp"
#include "trace/patterns.hpp"

namespace camps::system {

struct SystemConfig {
  u32 cores = 8;
  cpu::CoreConfig core;              ///< 4-wide, 8 outstanding loads.
  cache::HierarchyConfig caches;     ///< 32K/256K/16M per Table I.
  hmc::HmcConfig hmc;                ///< 32 vaults, 16 banks, DDR3-1600.
  prefetch::SchemeKind scheme = prefetch::SchemeKind::kCampsMod;
  prefetch::SchemeParams scheme_params;
  u64 seed = 1;                      ///< Workload generation seed.
  obs::ObsConfig obs;                ///< Tracing / epoch-sampling knobs.
  /// Hard wall-clock bound for one run, in simulated CPU cycles; a run
  /// that hasn't finished its measurement window by then stops and reports
  /// partial=true (prevents hangs on mis-tuned configurations).
  u64 max_cycles = 400'000'000;
  /// Model self-audit interval: every N executed events the whole system
  /// (event queue, banks, RUT/CT, prefetch buffers, MSHRs, queues) is
  /// checked against its invariants and the run aborts with a state dump on
  /// any violation. 0 disables auditing (the default; audits cost time).
  u64 audit_every = 0;

  /// Pattern geometry consistent with the HMC address map, for workload
  /// construction.
  trace::PatternGeometry pattern_geometry() const;

  /// Per-core physical address slice in bytes (cube capacity / cores).
  u64 core_slice_bytes() const;
};

/// Table I defaults with the given scheme.
SystemConfig table1_config(
    prefetch::SchemeKind scheme = prefetch::SchemeKind::kCampsMod);

/// First-generation HMC (HMC 1.0-era): 16 vaults x 8 banks, 4 x 10 Gbps
/// links, 2 GB cube. Useful for studying how CAMPS's benefit scales with
/// vault-level parallelism (extension; the paper models gen2).
SystemConfig hmc_gen1_config(
    prefetch::SchemeKind scheme = prefetch::SchemeKind::kCampsMod);

/// Applies `key = value` overrides; recognized keys (all optional):
///   cores, seed, max_cycles, audit_every,
///   core.issue_width, core.max_outstanding, core.warmup, core.measure,
///   hmc.vaults, hmc.banks, hmc.links, hmc.rows_per_bank,
///   buffer.entries, buffer.hit_latency,
///   camps.threshold, camps.conflict_entries, mmd.max_degree,
///   scheme (NONE|BASE|BASE-HIT|MMD|CAMPS|CAMPS-MOD),
///   fault.link_crc_rate, fault.link_drop_rate, fault.xbar_drop_rate,
///   fault.vault_stall_rate, fault.vault_stall_ticks,
///   fault.host_timeout_ticks, fault.host_backoff_ticks,
///   fault.retry_budget, fault.degrade_threshold, fault.link_tokens,
///   fault.seed
/// Throws std::runtime_error for malformed values and for unrecognized
/// keys (with a did-you-mean suggestion for near misses).
SystemConfig apply_overrides(SystemConfig base, const ConfigFile& cfg);

}  // namespace camps::system
