#include "system/config.hpp"

#include <string>
#include <vector>

namespace camps::system {

trace::PatternGeometry SystemConfig::pattern_geometry() const {
  const hmc::AddressMap map(hmc.geometry, hmc.field_order);
  trace::PatternGeometry g;
  g.line_bytes = hmc.geometry.line_bytes;
  g.row_bytes = hmc.geometry.row_bytes;
  g.same_bank_row_stride = map.same_bank_row_stride();
  return g;
}

u64 SystemConfig::core_slice_bytes() const {
  return hmc.geometry.capacity_bytes() / cores;
}

SystemConfig table1_config(prefetch::SchemeKind scheme) {
  SystemConfig cfg;
  cfg.scheme = scheme;
  return cfg;  // every member default already encodes Table I
}

SystemConfig hmc_gen1_config(prefetch::SchemeKind scheme) {
  SystemConfig cfg = table1_config(scheme);
  cfg.hmc.geometry.vaults = 16;
  cfg.hmc.geometry.banks_per_vault = 8;
  cfg.hmc.vault.banks = 8;
  cfg.hmc.geometry.rows_per_bank = 16384;  // 2 GB cube
  cfg.hmc.link.gbps_per_lane = 10.0;
  return cfg;
}

SystemConfig apply_overrides(SystemConfig base, const ConfigFile& cfg) {
  // Every key this function reads. A key outside this list is a typo (or a
  // stale experiment file) and must fail loudly, not silently default.
  static const std::vector<std::string> kKnownKeys = {
      "cores", "seed", "max_cycles", "audit_every",
      "core.issue_width", "core.max_outstanding", "core.warmup",
      "core.measure",
      "hmc.vaults", "hmc.banks", "hmc.links", "hmc.rows_per_bank",
      "buffer.entries", "buffer.hit_latency",
      "camps.threshold", "camps.conflict_entries", "mmd.max_degree",
      "scheme",
      "fault.link_crc_rate", "fault.link_drop_rate", "fault.xbar_drop_rate",
      "fault.vault_stall_rate", "fault.vault_stall_ticks",
      "fault.host_timeout_ticks", "fault.host_backoff_ticks",
      "fault.retry_budget", "fault.degrade_threshold", "fault.link_tokens",
      "fault.seed",
  };
  cfg.require_known(kKnownKeys);

  base.cores = static_cast<u32>(cfg.get_uint("cores", base.cores));
  base.seed = cfg.get_uint("seed", base.seed);
  base.max_cycles = cfg.get_uint("max_cycles", base.max_cycles);
  base.audit_every = cfg.get_uint("audit_every", base.audit_every);

  base.core.issue_width = static_cast<u32>(
      cfg.get_uint("core.issue_width", base.core.issue_width));
  base.core.max_outstanding_loads = static_cast<u32>(
      cfg.get_uint("core.max_outstanding", base.core.max_outstanding_loads));
  base.core.warmup_instructions =
      cfg.get_uint("core.warmup", base.core.warmup_instructions);
  base.core.measure_instructions =
      cfg.get_uint("core.measure", base.core.measure_instructions);

  base.hmc.geometry.vaults =
      static_cast<u32>(cfg.get_uint("hmc.vaults", base.hmc.geometry.vaults));
  base.hmc.geometry.banks_per_vault = static_cast<u32>(
      cfg.get_uint("hmc.banks", base.hmc.geometry.banks_per_vault));
  base.hmc.vault.banks = base.hmc.geometry.banks_per_vault;
  base.hmc.num_links =
      static_cast<u32>(cfg.get_uint("hmc.links", base.hmc.num_links));
  base.hmc.geometry.rows_per_bank =
      cfg.get_uint("hmc.rows_per_bank", base.hmc.geometry.rows_per_bank);

  base.hmc.vault.buffer.entries = static_cast<u32>(
      cfg.get_uint("buffer.entries", base.hmc.vault.buffer.entries));
  base.hmc.vault.buffer.hit_latency =
      cfg.get_uint("buffer.hit_latency", base.hmc.vault.buffer.hit_latency);

  base.scheme_params.camps.utilization_threshold = static_cast<u32>(
      cfg.get_uint("camps.threshold",
                   base.scheme_params.camps.utilization_threshold));
  base.scheme_params.camps.conflict_entries = static_cast<u32>(
      cfg.get_uint("camps.conflict_entries",
                   base.scheme_params.camps.conflict_entries));
  base.scheme_params.mmd.max_degree = static_cast<u32>(
      cfg.get_uint("mmd.max_degree", base.scheme_params.mmd.max_degree));

  if (cfg.has("scheme")) {
    base.scheme = prefetch::scheme_from_string(cfg.get_string("scheme"));
  }

  fault::FaultConfig& f = base.hmc.fault;
  f.link_crc_rate = cfg.get_double("fault.link_crc_rate", f.link_crc_rate);
  f.link_drop_rate = cfg.get_double("fault.link_drop_rate", f.link_drop_rate);
  f.xbar_drop_rate = cfg.get_double("fault.xbar_drop_rate", f.xbar_drop_rate);
  f.vault_stall_rate =
      cfg.get_double("fault.vault_stall_rate", f.vault_stall_rate);
  f.vault_stall_ticks =
      cfg.get_uint("fault.vault_stall_ticks", f.vault_stall_ticks);
  f.host_timeout_ticks =
      cfg.get_uint("fault.host_timeout_ticks", f.host_timeout_ticks);
  f.host_backoff_ticks =
      cfg.get_uint("fault.host_backoff_ticks", f.host_backoff_ticks);
  f.host_retry_budget = static_cast<u32>(
      cfg.get_uint("fault.retry_budget", f.host_retry_budget));
  f.vault_degrade_threshold = static_cast<u32>(
      cfg.get_uint("fault.degrade_threshold", f.vault_degrade_threshold));
  f.link_tokens =
      static_cast<u32>(cfg.get_uint("fault.link_tokens", f.link_tokens));
  f.seed = cfg.get_uint("fault.seed", f.seed);
  return base;
}

}  // namespace camps::system
