#include "system/config.hpp"

namespace camps::system {

trace::PatternGeometry SystemConfig::pattern_geometry() const {
  const hmc::AddressMap map(hmc.geometry, hmc.field_order);
  trace::PatternGeometry g;
  g.line_bytes = hmc.geometry.line_bytes;
  g.row_bytes = hmc.geometry.row_bytes;
  g.same_bank_row_stride = map.same_bank_row_stride();
  return g;
}

u64 SystemConfig::core_slice_bytes() const {
  return hmc.geometry.capacity_bytes() / cores;
}

SystemConfig table1_config(prefetch::SchemeKind scheme) {
  SystemConfig cfg;
  cfg.scheme = scheme;
  return cfg;  // every member default already encodes Table I
}

SystemConfig hmc_gen1_config(prefetch::SchemeKind scheme) {
  SystemConfig cfg = table1_config(scheme);
  cfg.hmc.geometry.vaults = 16;
  cfg.hmc.geometry.banks_per_vault = 8;
  cfg.hmc.vault.banks = 8;
  cfg.hmc.geometry.rows_per_bank = 16384;  // 2 GB cube
  cfg.hmc.link.gbps_per_lane = 10.0;
  return cfg;
}

SystemConfig apply_overrides(SystemConfig base, const ConfigFile& cfg) {
  base.cores = static_cast<u32>(cfg.get_uint("cores", base.cores));
  base.seed = cfg.get_uint("seed", base.seed);
  base.max_cycles = cfg.get_uint("max_cycles", base.max_cycles);
  base.audit_every = cfg.get_uint("audit_every", base.audit_every);

  base.core.issue_width = static_cast<u32>(
      cfg.get_uint("core.issue_width", base.core.issue_width));
  base.core.max_outstanding_loads = static_cast<u32>(
      cfg.get_uint("core.max_outstanding", base.core.max_outstanding_loads));
  base.core.warmup_instructions =
      cfg.get_uint("core.warmup", base.core.warmup_instructions);
  base.core.measure_instructions =
      cfg.get_uint("core.measure", base.core.measure_instructions);

  base.hmc.geometry.vaults =
      static_cast<u32>(cfg.get_uint("hmc.vaults", base.hmc.geometry.vaults));
  base.hmc.geometry.banks_per_vault = static_cast<u32>(
      cfg.get_uint("hmc.banks", base.hmc.geometry.banks_per_vault));
  base.hmc.vault.banks = base.hmc.geometry.banks_per_vault;
  base.hmc.num_links =
      static_cast<u32>(cfg.get_uint("hmc.links", base.hmc.num_links));
  base.hmc.geometry.rows_per_bank =
      cfg.get_uint("hmc.rows_per_bank", base.hmc.geometry.rows_per_bank);

  base.hmc.vault.buffer.entries = static_cast<u32>(
      cfg.get_uint("buffer.entries", base.hmc.vault.buffer.entries));
  base.hmc.vault.buffer.hit_latency =
      cfg.get_uint("buffer.hit_latency", base.hmc.vault.buffer.hit_latency);

  base.scheme_params.camps.utilization_threshold = static_cast<u32>(
      cfg.get_uint("camps.threshold",
                   base.scheme_params.camps.utilization_threshold));
  base.scheme_params.camps.conflict_entries = static_cast<u32>(
      cfg.get_uint("camps.conflict_entries",
                   base.scheme_params.camps.conflict_entries));
  base.scheme_params.mmd.max_degree = static_cast<u32>(
      cfg.get_uint("mmd.max_degree", base.scheme_params.mmd.max_degree));

  if (cfg.has("scheme")) {
    base.scheme = prefetch::scheme_from_string(cfg.get_string("scheme"));
  }
  return base;
}

}  // namespace camps::system
