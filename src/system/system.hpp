// Full-system assembly: cores -> caches -> HMC, wired per SystemConfig.
//
// Methodology (mirrors the paper's Section 4): every core executes its
// trace; when a core crosses its warmup-instruction boundary it reports in,
// and when the *last* core does, all memory-side statistics reset — that
// instant opens the measurement window. The run ends when every core has
// completed its measured instruction budget (cores that finish early keep
// executing so contention stays realistic), or at the max_cycles bound.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cpu/core.hpp"
#include "hmc/host_controller.hpp"
#include "obs/epoch_sampler.hpp"
#include "obs/trace_recorder.hpp"
#include "system/config.hpp"
#include "system/results.hpp"

namespace camps::system {

class System {
 public:
  /// Takes ownership of one trace source per core
  /// (traces.size() == config.cores).
  System(const SystemConfig& config,
         std::vector<std::unique_ptr<trace::TraceSource>> traces);
  ~System();
  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Runs warmup + measurement and gathers results. Call once. When
  /// cfg_.audit_every > 0, audit() runs every that-many executed events and
  /// once more at the end; any violation aborts via the CAMPS_ASSERT fail
  /// path with a full state dump.
  RunResults run();

  /// Audits every model structure in the system (simulator event queue,
  /// caches/MSHRs, host controller, all vaults with their banks, prefetch
  /// buffers, and scheme tables). Collects violations into `reporter`
  /// without aborting, so tests can inject corruption and inspect.
  void audit(check::AuditReporter& reporter) const;

  // Component access for examples/tests (valid after construction).
  sim::Simulator& simulator() { return sim_; }
  cache::CacheHierarchy& caches() { return *caches_; }
  hmc::HostController& memory() { return *host_; }
  const cpu::Core& core(CoreId id) const { return *cores_[id]; }
  StatRegistry& stats() { return stats_; }
  obs::TraceRecorder& trace() { return trace_; }

 private:
  class MemoryAdapter;

  void on_core_warmed(CoreId core);
  void on_core_measured(CoreId core);
  /// Runs one audit pass; aborts through check::audit_fail on violations.
  void audit_or_abort() const;
  RunResults collect_results() const;

  /// Fills one EpochSample from current device/cache state.
  obs::EpochSample sample_epoch() const;

  SystemConfig cfg_;
  sim::Simulator sim_;
  StatRegistry stats_;
  obs::TraceRecorder trace_;
  std::unique_ptr<obs::EpochSampler> epoch_sampler_;
  std::unique_ptr<hmc::HostController> host_;
  std::unique_ptr<MemoryAdapter> adapter_;
  std::unique_ptr<cache::CacheHierarchy> caches_;
  std::vector<std::unique_ptr<trace::TraceSource>> traces_;
  std::vector<std::unique_ptr<cpu::Core>> cores_;

  u32 warmed_ = 0;
  u32 measured_ = 0;
  Tick window_start_ = 0;
  Tick window_end_ = 0;
  u64 instr_at_window_start_ = 0;
  bool ran_ = false;
  bool partial_ = false;
};

/// Convenience: build a System for one of Table II's workloads.
std::unique_ptr<System> make_workload_system(const SystemConfig& config,
                                             const std::string& workload_id);

}  // namespace camps::system
