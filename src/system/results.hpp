// Results of one full-system run: the quantities every figure of the paper
// is built from.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/epoch_sampler.hpp"
#include "obs/trace_recorder.hpp"

namespace camps::system {

/// Summary of one latency-breakdown histogram (all values in CPU cycles).
struct StageStats {
  u64 count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Where a memory read's cycles went, stage by stage. Stages are measured
/// independently (each request contributes to every stage it crossed), so
/// the means do not sum exactly to total_read.
struct LatencyBreakdown {
  StageStats host_queue;    ///< Waiting for a free downstream link slot.
  StageStats link_down;     ///< Request serialization + flight.
  StageStats link_up;       ///< Response serialization + flight.
  StageStats vault_queue;   ///< Vault read/write queue wait.
  StageStats bank_service;  ///< Column command to data done.
  StageStats buffer_hit;    ///< Prefetch-buffer serves.
  StageStats total_read;    ///< Whole round trip (host submit -> deliver).
};

/// Fault-injection accounting for one run. `active` is false (and every
/// count zero) when the run had no FaultPlan; the JSON omits the whole
/// object then, keeping fault-free output byte-identical to builds that
/// predate the subsystem.
struct FaultSummary {
  bool active = false;
  u64 crc_errors = 0;       ///< Link transfers that failed CRC.
  u64 replays = 0;          ///< Packets re-delivered from a retry buffer.
  u64 link_drops = 0;       ///< Transfers lost beyond replay.
  u64 xbar_drops = 0;       ///< Crossbar grants dropped.
  u64 vault_stalls = 0;     ///< Vault responses delayed by a stall fault.
  u64 host_retries = 0;     ///< Timeout-driven re-issues at the host.
  u64 host_poisoned = 0;    ///< Reads completed poisoned (budget spent).
  u64 late_responses = 0;   ///< Responses that lost the race to a retry.
  u64 degrade_flushes = 0;  ///< Vault prefetch-state quiesce events.
  u64 token_stall_ticks = 0;  ///< Ticks serialization waited for credits.
  /// Recovery latency per recovered/poisoned fault (CPU cycles).
  StageStats recovery;

  /// Faults injected into the fabric (drops/stalls/CRC errors); every one
  /// must show up again as a replay, retry, or poisoned completion.
  u64 injected() const {
    return crc_errors + link_drops + xbar_drops + vault_stalls;
  }
};

struct CoreResult {
  double ipc = 0.0;          ///< Measured-window IPC.
  u64 instructions = 0;      ///< Instructions inside the window.
  u64 loads = 0;
  u64 stores = 0;
  u64 stall_cycles = 0;
};

struct RunResults {
  std::string scheme;
  std::vector<CoreResult> cores;

  /// Geometric mean of per-core IPCs (the paper's Fig. 5 metric).
  double geomean_ipc = 0.0;

  /// Average memory access time seen by loads, in CPU cycles (Fig. 8).
  double amat_cycles = 0.0;
  /// Mean main-memory (HMC round-trip) latency, CPU cycles.
  double mem_latency_cycles = 0.0;

  // Row-buffer behaviour at the banks (Fig. 6).
  u64 row_hits = 0;
  u64 row_empties = 0;
  u64 row_conflicts = 0;
  double row_conflict_rate = 0.0;  ///< conflicts / all bank accesses.

  // Prefetching (Fig. 7).
  u64 prefetches = 0;
  double prefetch_accuracy = 0.0;  ///< useful rows / prefetched rows.
  u64 buffer_hits = 0;
  u64 buffer_misses = 0;
  double buffer_hit_rate = 0.0;

  // Energy (Fig. 9).
  double energy_pj = 0.0;

  // Serial-link utilization over the measurement window (0..1 per
  // direction, averaged over the links).
  double link_down_utilization = 0.0;
  double link_up_utilization = 0.0;
  u64 link_wakeups = 0;  ///< Power-management wakeups across all links.

  // Workload character.
  double mpki = 0.0;  ///< L3 misses per kilo-instruction, whole workload.
  u64 memory_reads = 0;
  u64 memory_writes = 0;

  Tick measure_span_ticks = 0;
  bool partial = false;  ///< True if the run hit the max_cycles bound.

  /// Per-stage latency breakdown (populated when the run had a registry).
  LatencyBreakdown latency;

  /// Fault-injection accounting (inactive unless the run carried a
  /// FaultPlan; see fault/fault_config.hpp).
  FaultSummary faults;

  // Request-lifecycle trace (empty unless SystemConfig::obs enabled it).
  // Shared so RunResults stays cheaply copyable in the sweep caches.
  std::shared_ptr<const std::vector<obs::Span>> trace_spans;
  u64 trace_recorded = 0;  ///< Spans recorded (>= trace_spans->size()).
  u64 trace_dropped = 0;   ///< Spans overwritten in the ring buffer.

  /// Epoch time-series (null unless SystemConfig::obs::epoch_ticks > 0).
  std::shared_ptr<const std::vector<obs::EpochSample>> epochs;

  // Host-side performance of the simulation itself (not simulated time).
  // events_executed is deterministic; wall_seconds is not, so identical-run
  // comparisons must exclude it.
  u64 events_executed = 0;     ///< Simulator events dispatched by the run.
  double wall_seconds = 0.0;   ///< Host wall-clock spent inside run().

  /// Multi-line human-readable summary.
  std::string summary() const;

  /// Machine-readable JSON object. Deterministic for a fixed run: the
  /// non-deterministic wall_seconds field is deliberately excluded, and
  /// everything else is byte-stable across --jobs values.
  std::string to_json(int indent = 0) const;
};

/// Geometric mean helper (0 if any element is <= 0 or the vector is empty).
double geometric_mean(const std::vector<double>& values);

}  // namespace camps::system
