#include "system/results.hpp"

#include <cmath>
#include <sstream>

namespace camps::system {

double geometric_mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) return 0.0;
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

std::string RunResults::summary() const {
  std::ostringstream out;
  out << "scheme           : " << scheme << (partial ? "  [PARTIAL]" : "")
      << '\n';
  out << "geomean IPC      : " << geomean_ipc << '\n';
  out << "AMAT (cycles)    : " << amat_cycles << '\n';
  out << "mem lat (cycles) : " << mem_latency_cycles << '\n';
  out << "L3 MPKI          : " << mpki << '\n';
  out << "row hit/empty/conf: " << row_hits << " / " << row_empties << " / "
      << row_conflicts << "  (conflict rate " << row_conflict_rate * 100.0
      << "%)\n";
  out << "prefetches       : " << prefetches << "  accuracy "
      << prefetch_accuracy * 100.0 << "%\n";
  out << "buffer hit rate  : " << buffer_hit_rate * 100.0 << "%  (" << buffer_hits
      << " hits)\n";
  out << "memory rd/wr     : " << memory_reads << " / " << memory_writes
      << '\n';
  out << "HMC energy (uJ)  : " << energy_pj / 1e6 << '\n';
  out << "link util dn/up  : " << link_down_utilization * 100.0 << "% / "
      << link_up_utilization * 100.0 << "%\n";
  return out.str();
}

}  // namespace camps::system
