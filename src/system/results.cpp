#include "system/results.hpp"

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace camps::system {

namespace {

/// Stage rows for iterating the breakdown in a fixed, documented order.
struct StageRow {
  const char* name;
  const StageStats* stats;
};

std::vector<StageRow> stage_rows(const LatencyBreakdown& b) {
  return {{"host_queue", &b.host_queue},   {"link_down", &b.link_down},
          {"link_up", &b.link_up},         {"vault_queue", &b.vault_queue},
          {"bank_service", &b.bank_service}, {"buffer_hit", &b.buffer_hit},
          {"total_read", &b.total_read}};
}

}  // namespace

double geometric_mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) return 0.0;
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

std::string RunResults::summary() const {
  std::ostringstream out;
  out << "scheme           : " << scheme << (partial ? "  [PARTIAL]" : "")
      << '\n';
  out << "geomean IPC      : " << geomean_ipc << '\n';
  out << "AMAT (cycles)    : " << amat_cycles << '\n';
  out << "mem lat (cycles) : " << mem_latency_cycles << '\n';
  out << "L3 MPKI          : " << mpki << '\n';
  out << "row hit/empty/conf: " << row_hits << " / " << row_empties << " / "
      << row_conflicts << "  (conflict rate " << row_conflict_rate * 100.0
      << "%)\n";
  out << "prefetches       : " << prefetches << "  accuracy "
      << prefetch_accuracy * 100.0 << "%\n";
  out << "buffer hit rate  : " << buffer_hit_rate * 100.0 << "%  (" << buffer_hits
      << " hits)\n";
  out << "memory rd/wr     : " << memory_reads << " / " << memory_writes
      << '\n';
  out << "HMC energy (uJ)  : " << energy_pj / 1e6 << '\n';
  out << "link util dn/up  : " << link_down_utilization * 100.0 << "% / "
      << link_up_utilization * 100.0 << "%\n";
  if (latency.total_read.count > 0) {
    out << "latency breakdown (CPU cycles, mean / p95):\n";
    for (const auto& row : stage_rows(latency)) {
      if (row.stats->count == 0) continue;
      out << "  " << row.name << " : " << row.stats->mean << " / "
          << row.stats->p95 << "  (" << row.stats->count << " samples)\n";
    }
  }
  if (faults.active) {
    out << "faults injected  : " << faults.injected() << "  (crc "
        << faults.crc_errors << ", drops "
        << faults.link_drops + faults.xbar_drops << ", stalls "
        << faults.vault_stalls << ")\n";
    out << "fault recovery   : " << faults.replays << " replays, "
        << faults.host_retries << " retries, " << faults.host_poisoned
        << " poisoned, " << faults.degrade_flushes << " degrade flushes\n";
    if (faults.recovery.count > 0) {
      out << "recovery latency : " << faults.recovery.mean << " / "
          << faults.recovery.p95 << " cycles (mean / p95, "
          << faults.recovery.count << " samples)\n";
    }
  }
  return out.str();
}

std::string RunResults::to_json(int indent) const {
  JsonWriter w(indent);
  w.begin_object();
  w.field("scheme", scheme);
  w.field("geomean_ipc", geomean_ipc);
  w.field("amat_cycles", amat_cycles);
  w.field("mem_latency_cycles", mem_latency_cycles);
  w.field("mpki", mpki);
  w.field("row_hits", row_hits);
  w.field("row_empties", row_empties);
  w.field("row_conflicts", row_conflicts);
  w.field("row_conflict_rate", row_conflict_rate);
  w.field("prefetches", prefetches);
  w.field("prefetch_accuracy", prefetch_accuracy);
  w.field("buffer_hits", buffer_hits);
  w.field("buffer_misses", buffer_misses);
  w.field("buffer_hit_rate", buffer_hit_rate);
  w.field("energy_pj", energy_pj);
  w.field("link_down_utilization", link_down_utilization);
  w.field("link_up_utilization", link_up_utilization);
  w.field("link_wakeups", link_wakeups);
  w.field("memory_reads", memory_reads);
  w.field("memory_writes", memory_writes);
  w.field("measure_span_ticks", measure_span_ticks);
  w.field("partial", partial);
  w.field("events_executed", events_executed);
  w.key("cores");
  w.begin_array();
  for (const auto& core : cores) {
    w.begin_object();
    w.field("ipc", core.ipc);
    w.field("instructions", core.instructions);
    w.field("loads", core.loads);
    w.field("stores", core.stores);
    w.field("stall_cycles", core.stall_cycles);
    w.end_object();
  }
  w.end_array();
  w.key("latency");
  w.begin_object();
  for (const auto& row : stage_rows(latency)) {
    w.key(row.name);
    w.begin_object();
    w.field("count", row.stats->count);
    w.field("mean", row.stats->mean);
    w.field("p50", row.stats->p50);
    w.field("p95", row.stats->p95);
    w.field("p99", row.stats->p99);
    w.end_object();
  }
  w.end_object();
  w.field("trace_recorded", trace_recorded);
  w.field("trace_dropped", trace_dropped);
  if (faults.active) {
    // Emitted only under fault injection so fault-free JSON stays
    // byte-identical to output from before the subsystem existed.
    w.key("faults");
    w.begin_object();
    w.field("injected", faults.injected());
    w.field("crc_errors", faults.crc_errors);
    w.field("replays", faults.replays);
    w.field("link_drops", faults.link_drops);
    w.field("xbar_drops", faults.xbar_drops);
    w.field("vault_stalls", faults.vault_stalls);
    w.field("host_retries", faults.host_retries);
    w.field("host_poisoned", faults.host_poisoned);
    w.field("late_responses", faults.late_responses);
    w.field("degrade_flushes", faults.degrade_flushes);
    w.field("token_stall_ticks", faults.token_stall_ticks);
    w.key("recovery");
    w.begin_object();
    w.field("count", faults.recovery.count);
    w.field("mean", faults.recovery.mean);
    w.field("p50", faults.recovery.p50);
    w.field("p95", faults.recovery.p95);
    w.field("p99", faults.recovery.p99);
    w.end_object();
    w.end_object();
  }
  w.end_object();
  return w.str();
}

}  // namespace camps::system
