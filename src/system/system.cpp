#include "system/system.hpp"

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "workload/workloads.hpp"

namespace camps::system {
namespace {

/// Applies the per-core virtual->physical fold so all downstream structures
/// (shared L3, HMC) see disjoint physical slices per core.
class TranslatingSource final : public trace::TraceSource {
 public:
  TranslatingSource(std::unique_ptr<trace::TraceSource> inner, Addr slice_base,
                    u64 slice_bytes)
      : inner_(std::move(inner)),
        slice_base_(slice_base),
        slice_bytes_(slice_bytes) {}

  std::optional<trace::TraceRecord> next() override {
    auto r = inner_->next();
    if (!r) return std::nullopt;
    r->addr = slice_base_ + r->addr % slice_bytes_;
    return r;
  }
  void reset() override { inner_->reset(); }

 private:
  std::unique_ptr<trace::TraceSource> inner_;
  Addr slice_base_;
  u64 slice_bytes_;
};

}  // namespace

class System::MemoryAdapter final : public cache::MemoryPort {
 public:
  explicit MemoryAdapter(hmc::HostController* host) : host_(host) {}

  void mem_read(Addr line_addr, CoreId core,
                std::function<void()> done) override {
    host_->read(line_addr, core,
                [done = std::move(done)](const hmc::MemRequest&) { done(); });
  }
  void mem_write(Addr line_addr, CoreId core) override {
    host_->write(line_addr, core);
  }

 private:
  hmc::HostController* host_;
};

System::System(const SystemConfig& config,
               std::vector<std::unique_ptr<trace::TraceSource>> traces)
    : cfg_(config) {
  CAMPS_ASSERT_MSG(traces.size() == cfg_.cores,
                   "one trace source per core required");
  if (cfg_.obs.trace_enabled) trace_.enable(cfg_.obs.trace_capacity);
  host_ = std::make_unique<hmc::HostController>(
      sim_, cfg_.hmc, cfg_.scheme, cfg_.scheme_params, &stats_, &trace_);
  adapter_ = std::make_unique<MemoryAdapter>(host_.get());
  caches_ = std::make_unique<cache::CacheHierarchy>(sim_, cfg_.caches,
                                                    cfg_.cores, adapter_.get());
  const u64 slice = cfg_.core_slice_bytes();
  traces_.reserve(cfg_.cores);
  cores_.reserve(cfg_.cores);
  for (CoreId c = 0; c < cfg_.cores; ++c) {
    traces_.push_back(std::make_unique<TranslatingSource>(
        std::move(traces[c]), Addr{c} * slice, slice));
    cores_.push_back(std::make_unique<cpu::Core>(
        sim_, c, cfg_.core, traces_.back().get(), caches_.get(),
        [this](CoreId id) { on_core_warmed(id); },
        [this](CoreId id) { on_core_measured(id); }));
  }
}

System::~System() = default;

void System::on_core_warmed(CoreId /*core*/) {
  if (++warmed_ != cfg_.cores) return;
  // Measurement window opens: reset every memory-side statistic while the
  // microarchitectural state (caches, row buffers, prefetch buffers) stays
  // warm — the paper's warmup methodology.
  window_start_ = sim_.now();
  host_->reset_stats();
  caches_->reset_stats();
  stats_.reset();
  trace_.clear();  // the exported trace covers the measurement window
  instr_at_window_start_ = 0;
  for (const auto& core : cores_) {
    instr_at_window_start_ += core->instructions_issued();
  }
}

void System::on_core_measured(CoreId /*core*/) {
  if (++measured_ == cfg_.cores) window_end_ = sim_.now();
}

void System::audit(check::AuditReporter& rep) const {
  rep.set_tick(sim_.now());
  sim_.audit(rep);
  caches_->audit(rep);
  host_->audit(rep);
}

void System::audit_or_abort() const {
  check::AuditReporter rep;
  audit(rep);
  if (!rep.clean()) check::audit_fail(rep);
}

RunResults System::run() {
  CAMPS_ASSERT_MSG(!ran_, "System::run() may be called once");
  ran_ = true;
  const auto wall_start = std::chrono::steady_clock::now();
  if (cfg_.audit_every > 0) {
    sim_.set_event_hook(cfg_.audit_every, [this] { audit_or_abort(); });
  }
  if (cfg_.obs.epoch_ticks > 0) {
    epoch_sampler_ = std::make_unique<obs::EpochSampler>(
        sim_, cfg_.obs.epoch_ticks, [this] { return sample_epoch(); },
        [this] { return measured_ != cfg_.cores; });
    epoch_sampler_->start();
  }
  for (auto& core : cores_) core->start();
  const Tick bound = cfg_.max_cycles * sim::kCpuTicksPerCycle;
  sim_.run_while_pending([&] {
    if (measured_ == cfg_.cores) return true;
    if (sim_.now() >= bound) {
      partial_ = true;
      return true;
    }
    return false;
  });
  if (partial_ || window_end_ == 0) window_end_ = sim_.now();
  if (warmed_ != cfg_.cores) window_start_ = window_end_;
  // Closing audit: the drained end state must satisfy every invariant too.
  if (cfg_.audit_every > 0) audit_or_abort();
  RunResults r = collect_results();
  r.events_executed = sim_.events_executed();
  r.wall_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  return r;
}

RunResults System::collect_results() const {
  RunResults r;
  r.scheme = prefetch::to_string(cfg_.scheme);
  r.partial = partial_;
  r.measure_span_ticks =
      window_end_ > window_start_ ? window_end_ - window_start_ : 0;

  std::vector<double> ipcs;
  u64 window_instructions = 0;
  for (const auto& core : cores_) {
    CoreResult cr;
    cr.ipc = core->measured_ipc();
    cr.instructions = core->measured_instructions();
    cr.loads = core->loads();
    cr.stores = core->stores();
    cr.stall_cycles = core->stall_cycles();
    window_instructions += core->instructions_issued();
    ipcs.push_back(cr.ipc);
    r.cores.push_back(cr);
  }
  window_instructions -= std::min(window_instructions, instr_at_window_start_);
  r.geomean_ipc = geometric_mean(ipcs);

  r.amat_cycles = caches_->amat_cycles();
  r.mem_latency_cycles = host_->mean_read_latency_cycles();

  const auto& device = host_->device();
  r.row_hits = device.total_row_hits();
  r.row_empties = device.total_row_empties();
  r.row_conflicts = device.total_row_conflicts();
  r.row_conflict_rate = device.row_conflict_rate();
  r.prefetches = device.total_prefetches();
  r.prefetch_accuracy = device.prefetch_accuracy();
  r.buffer_hits = device.total_buffer_hits();
  r.buffer_misses = device.total_buffer_misses();
  const u64 buffer_lookups = r.buffer_hits + r.buffer_misses;
  r.buffer_hit_rate = buffer_lookups == 0
                          ? 0.0
                          : static_cast<double>(r.buffer_hits) /
                                static_cast<double>(buffer_lookups);

  r.memory_reads = caches_->memory_reads();
  r.memory_writes = caches_->memory_writes();
  r.mpki = window_instructions == 0
               ? 0.0
               : 1000.0 * static_cast<double>(caches_->l3().misses()) /
                     static_cast<double>(window_instructions);

  const double window_ns = static_cast<double>(r.measure_span_ticks) /
                           static_cast<double>(sim::kTicksPerNs);
  r.energy_pj = device.energy().total_pj(window_ns);

  if (r.measure_span_ticks > 0) {
    const double span = static_cast<double>(r.measure_span_ticks) *
                        static_cast<double>(cfg_.hmc.num_links);
    r.link_down_utilization =
        static_cast<double>(device.link_busy_ticks_down()) / span;
    r.link_up_utilization =
        static_cast<double>(device.link_busy_ticks_up()) / span;
  }
  r.link_wakeups = device.link_wakeups();

  auto stage_of = [this](const char* name) {
    StageStats s;
    const Histogram* h = stats_.find_histogram(name);
    if (h == nullptr || h->count() == 0) return s;
    s.count = h->count();
    s.mean = h->mean();
    s.p50 = h->percentile(50.0);
    s.p95 = h->percentile(95.0);
    s.p99 = h->percentile(99.0);
    return s;
  };
  r.latency.host_queue = stage_of("latency.host_queue_cycles");
  r.latency.link_down = stage_of("latency.link_down_cycles");
  r.latency.link_up = stage_of("latency.link_up_cycles");
  r.latency.vault_queue = stage_of("latency.vault_queue_cycles");
  r.latency.bank_service = stage_of("latency.bank_service_cycles");
  r.latency.buffer_hit = stage_of("latency.buffer_hit_cycles");
  r.latency.total_read = stage_of("latency.total_read_cycles");

  if (trace_.enabled()) {
    r.trace_spans = std::make_shared<const std::vector<obs::Span>>(
        trace_.sorted_spans());
    r.trace_recorded = trace_.recorded();
    r.trace_dropped = trace_.dropped();
  }
  if (epoch_sampler_ != nullptr) {
    r.epochs = std::make_shared<const std::vector<obs::EpochSample>>(
        epoch_sampler_->samples());
  }
  if (device.fault_plan() != nullptr) {
    r.faults.active = true;
    r.faults.crc_errors = stats_.counter_value("fault.crc_errors");
    r.faults.replays = stats_.counter_value("fault.replays");
    r.faults.link_drops = stats_.counter_value("fault.link_drops");
    r.faults.xbar_drops = stats_.counter_value("fault.xbar_drops");
    r.faults.vault_stalls = stats_.counter_value("fault.vault_stalls");
    r.faults.host_retries = stats_.counter_value("fault.host_retries");
    r.faults.host_poisoned = stats_.counter_value("fault.host_poisoned");
    r.faults.late_responses = stats_.counter_value("fault.late_responses");
    r.faults.degrade_flushes = stats_.counter_value("fault.degrade_flushes");
    r.faults.token_stall_ticks =
        stats_.counter_value("fault.token_stall_ticks");
    r.faults.recovery = stage_of("fault.recovery_cycles");
  }
  return r;
}

obs::EpochSample System::sample_epoch() const {
  obs::EpochSample s;
  const auto& device = host_->device();
  s.row_hits = device.total_row_hits();
  s.row_empties = device.total_row_empties();
  s.row_conflicts = device.total_row_conflicts();
  s.row_conflict_rate = device.row_conflict_rate();
  s.prefetches_issued = device.total_prefetches();
  s.prefetch_accuracy = device.prefetch_accuracy();
  s.buffer_hits = device.total_buffer_hits();
  s.buffer_misses = device.total_buffer_misses();
  const u64 lookups = s.buffer_hits + s.buffer_misses;
  s.buffer_hit_rate = lookups == 0 ? 0.0
                                   : static_cast<double>(s.buffer_hits) /
                                         static_cast<double>(lookups);
  s.link_down_busy_ticks = device.link_busy_ticks_down();
  s.link_up_busy_ticks = device.link_busy_ticks_up();
  for (VaultId v = 0; v < device.vault_count(); ++v) {
    const auto& vault = device.vault(v);
    s.buffer_occupancy += vault.buffer().size();
    s.demand_reads += vault.demand_reads();
    s.demand_writes += vault.demand_writes();
  }
  return s;
}

std::unique_ptr<System> make_workload_system(const SystemConfig& config,
                                             const std::string& workload_id) {
  const auto& wl = workload::workload(workload_id);
  auto sources = wl.make_sources(config.seed, config.pattern_geometry());
  CAMPS_ASSERT(sources.size() == config.cores);
  return std::make_unique<System>(config, std::move(sources));
}

}  // namespace camps::system
