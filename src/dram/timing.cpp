#include "dram/timing.hpp"

namespace camps::dram {

bool TimingParams::valid() const {
  if (tRCD == 0 || tRP == 0 || tCL == 0 || tBURST == 0) return false;
  if (tRAS < tRCD) return false;        // row must be usable before closing
  if (tREFI <= tRFC) return false;      // refresh must fit in its interval
  if (tROWFETCH == 0) return false;
  return true;
}

TimingParams default_timing() { return TimingParams{}; }

}  // namespace camps::dram
