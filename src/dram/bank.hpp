// Per-bank DRAM state machine with command-legality checks.
//
// The bank tracks its row-buffer state and the earliest cycle at which each
// command class becomes legal. All times are DRAM command-clock cycles; the
// vault controller converts to global ticks. The bank itself never
// schedules events — it is a passive timed resource the scheduler queries.
#pragma once

#include <optional>

#include "check/audit.hpp"
#include "common/types.hpp"
#include "dram/timing.hpp"
#include "obs/trace_recorder.hpp"
#include "sim/clock.hpp"

namespace camps::dram {

enum class BankState : u8 {
  kPrecharged,   ///< No row open; ACT legal once tRP satisfied.
  kActivating,   ///< ACT issued; columns legal at act_cycle + tRCD.
  kActive,       ///< Row open; RD/WR/row-fetch/PRE legal per timing.
  kPrecharging,  ///< PRE issued; ACT legal at pre_cycle + tRP.
  kRefreshing,   ///< All-bank refresh in progress until tRFC elapses.
};

/// Classification of a demand access against the current row-buffer state,
/// following the paper's terminology: a *conflict* is an access to row B
/// while a different row A is open (requires PRE + ACT); a *miss* (or
/// "empty" access) finds the bank precharged; a *hit* finds its row open.
enum class RowBufferOutcome : u8 { kHit, kEmpty, kConflict };

class Bank final {
 public:
  explicit Bank(const TimingParams& timing) : t_(&timing) {}

  /// Arms span recording for this bank's commands. `track` is the bank's
  /// global lane id (vault * banks_per_vault + bank). The bank records ACT,
  /// PRE, column-service, and row-fetch windows; `trace_id` on the command
  /// methods ties a span back to the demand request that caused it.
  void attach_trace(obs::TraceRecorder* trace, u32 track) {
    trace_ = trace;
    trace_track_ = track;
  }

  /// Current state once all transitions up to `cycle` have settled.
  BankState state(u64 cycle) const;

  /// The open (or opening) row, if any.
  std::optional<RowId> open_row(u64 cycle) const;

  /// Classifies a demand access to `row` at `cycle`.
  RowBufferOutcome classify(u64 cycle, RowId row) const;

  // --- Earliest-legal-cycle queries (all >= the argument) -------------
  u64 earliest_activate(u64 cycle) const;
  u64 earliest_column(u64 cycle) const;   ///< RD/WR/row-fetch on open row.
  u64 earliest_precharge(u64 cycle) const;

  // --- Commands. Each CAMPS_ASSERTs legality at `cycle`. --------------
  void activate(u64 cycle, RowId row, u64 trace_id = 0);
  /// Reads one line; returns the cycle the last data beat arrives.
  u64 read(u64 cycle, u64 trace_id = 0);
  /// Writes one line; returns the cycle write data finishes (gates tWR).
  u64 write(u64 cycle, u64 trace_id = 0);
  /// Streams the whole open row to the prefetch buffer; returns completion.
  u64 fetch_row(u64 cycle, u64 trace_id = 0);
  void precharge(u64 cycle);
  /// Enters refresh; bank must be precharged. Busy until cycle + tRFC.
  void refresh(u64 cycle);

  // --- Event counts consumed by the energy model / stats --------------
  u64 activate_count() const { return n_act_; }
  u64 precharge_count() const { return n_pre_; }
  u64 read_count() const { return n_rd_; }
  u64 write_count() const { return n_wr_; }
  u64 row_fetch_count() const { return n_rowfetch_; }
  u64 refresh_count() const { return n_ref_; }

  /// Invariants over the command-legality bookkeeping: the raw state is a
  /// legal enum value, transient states carry a consistent completion
  /// cycle, timing-window anchors only exist after the commands that set
  /// them, and the command counters respect the FSM's legal sequences
  /// (e.g. every PRE follows an ACT).
  void audit(check::AuditReporter& reporter) const;

 private:
  friend struct check::TestCorruptor;

  /// Records [begin, end) DRAM cycles as a tick span; one inlined branch
  /// when tracing is off (this sits on the per-DRAM-command hot path).
  void trace_span(obs::Stage stage, u64 id, u64 begin_cycle, u64 end_cycle) {
    if (trace_ == nullptr) return;
    trace_->record(stage, trace_track_, id,
                   begin_cycle * sim::kDramTicksPerCycle,
                   end_cycle * sim::kDramTicksPerCycle);
  }

  const TimingParams* t_;
  obs::TraceRecorder* trace_ = nullptr;
  u32 trace_track_ = 0;

  BankState raw_state_ = BankState::kPrecharged;
  RowId row_ = 0;
  u64 ready_at_ = 0;       ///< Cycle the current transient completes.
  u64 act_at_ = 0;         ///< Cycle of the last ACT (tRAS anchor).
  u64 last_col_at_ = 0;    ///< Last RD/WR/row-fetch issue (tCCD anchor).
  u64 rd_pre_gate_ = 0;    ///< Earliest PRE due to reads (tRTP).
  u64 wr_pre_gate_ = 0;    ///< Earliest PRE due to writes (tWR).
  bool any_col_ = false;

  u64 n_act_ = 0, n_pre_ = 0, n_rd_ = 0, n_wr_ = 0, n_rowfetch_ = 0,
      n_ref_ = 0;

  void settle(u64 cycle);
  u64 column_issue_cycle(u64 cycle) const;
};

static_assert(check::Auditable<Bank>);

}  // namespace camps::dram
