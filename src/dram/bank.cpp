#include "dram/bank.hpp"

#include <algorithm>
#include <optional>
#include <string>

#include "common/assert.hpp"
#include "sim/clock.hpp"

namespace camps::dram {

BankState Bank::state(u64 cycle) const {
  // Transients settle by themselves once their completion cycle passes.
  if (raw_state_ == BankState::kActivating && cycle >= ready_at_) {
    return BankState::kActive;
  }
  if ((raw_state_ == BankState::kPrecharging ||
       raw_state_ == BankState::kRefreshing) &&
      cycle >= ready_at_) {
    return BankState::kPrecharged;
  }
  return raw_state_;
}

void Bank::settle(u64 cycle) {
  const BankState s = state(cycle);
  if (s != raw_state_) raw_state_ = s;
}

std::optional<RowId> Bank::open_row(u64 cycle) const {
  const BankState s = state(cycle);
  if (s == BankState::kActive || s == BankState::kActivating) return row_;
  return std::nullopt;
}

RowBufferOutcome Bank::classify(u64 cycle, RowId row) const {
  const auto open = open_row(cycle);
  if (!open) return RowBufferOutcome::kEmpty;
  return *open == row ? RowBufferOutcome::kHit : RowBufferOutcome::kConflict;
}

u64 Bank::earliest_activate(u64 cycle) const {
  switch (raw_state_) {
    case BankState::kPrecharged:
      return cycle;
    case BankState::kPrecharging:
    case BankState::kRefreshing:
      return std::max(cycle, ready_at_);
    default:
      // Must precharge first; not directly activatable.
      return kTickNever;
  }
}

u64 Bank::column_issue_cycle(u64 cycle) const {
  u64 c = std::max(cycle, act_at_ + t_->tRCD);
  if (any_col_) c = std::max(c, last_col_at_ + t_->tCCD);
  return c;
}

u64 Bank::earliest_column(u64 cycle) const {
  const BankState s = state(cycle);
  if (s != BankState::kActive && s != BankState::kActivating) {
    return kTickNever;
  }
  return column_issue_cycle(cycle);
}

u64 Bank::earliest_precharge(u64 cycle) const {
  const BankState s = state(cycle);
  if (s != BankState::kActive && s != BankState::kActivating) {
    return kTickNever;
  }
  u64 c = std::max(cycle, act_at_ + t_->tRAS);
  c = std::max({c, rd_pre_gate_, wr_pre_gate_});
  return c;
}

void Bank::activate(u64 cycle, RowId row, u64 trace_id) {
  settle(cycle);
  CAMPS_ASSERT_MSG(raw_state_ == BankState::kPrecharged,
                   "ACT issued to a non-precharged bank");
  CAMPS_ASSERT(cycle >= earliest_activate(cycle));
  raw_state_ = BankState::kActivating;
  row_ = row;
  act_at_ = cycle;
  ready_at_ = cycle + t_->tRCD;
  any_col_ = false;
  rd_pre_gate_ = wr_pre_gate_ = 0;
  ++n_act_;
  trace_span(obs::Stage::kBankAct, trace_id, cycle, ready_at_);
}

u64 Bank::read(u64 cycle, u64 trace_id) {
  settle(cycle);
  CAMPS_ASSERT_MSG(state(cycle) == BankState::kActive ||
                       state(cycle) == BankState::kActivating,
                   "RD issued with no row open");
  CAMPS_ASSERT(cycle >= column_issue_cycle(cycle));
  last_col_at_ = cycle;
  any_col_ = true;
  rd_pre_gate_ = std::max(rd_pre_gate_, cycle + t_->tRTP);
  ++n_rd_;
  const u64 done = cycle + t_->tCL + t_->tBURST;
  trace_span(obs::Stage::kBankService, trace_id, cycle, done);
  return done;
}

u64 Bank::write(u64 cycle, u64 trace_id) {
  settle(cycle);
  CAMPS_ASSERT_MSG(state(cycle) == BankState::kActive ||
                       state(cycle) == BankState::kActivating,
                   "WR issued with no row open");
  CAMPS_ASSERT(cycle >= column_issue_cycle(cycle));
  last_col_at_ = cycle;
  any_col_ = true;
  const u64 data_end = cycle + t_->tWL + t_->tBURST;
  wr_pre_gate_ = std::max(wr_pre_gate_, data_end + t_->tWR);
  ++n_wr_;
  trace_span(obs::Stage::kBankService, trace_id, cycle, data_end);
  return data_end;
}

u64 Bank::fetch_row(u64 cycle, u64 trace_id) {
  settle(cycle);
  CAMPS_ASSERT_MSG(state(cycle) == BankState::kActive ||
                       state(cycle) == BankState::kActivating,
                   "row fetch issued with no row open");
  CAMPS_ASSERT(cycle >= column_issue_cycle(cycle));
  // First data appears after the CAS latency, then the row streams over
  // the wide TSV bus for tROWFETCH cycles.
  const u64 done = cycle + t_->tCL + t_->tROWFETCH;
  // The copy occupies the column path until it completes.
  last_col_at_ = done - t_->tCCD < cycle ? cycle : done - t_->tCCD;
  any_col_ = true;
  rd_pre_gate_ = std::max(rd_pre_gate_, done);
  ++n_rowfetch_;
  trace_span(obs::Stage::kRowFetch, trace_id, cycle, done);
  return done;
}

void Bank::precharge(u64 cycle) {
  settle(cycle);
  CAMPS_ASSERT_MSG(raw_state_ == BankState::kActive ||
                       raw_state_ == BankState::kActivating,
                   "PRE issued with no row open");
  CAMPS_ASSERT(cycle >= earliest_precharge(cycle));
  raw_state_ = BankState::kPrecharging;
  ready_at_ = cycle + t_->tRP;
  ++n_pre_;
  trace_span(obs::Stage::kBankPre, /*id=*/0, cycle, ready_at_);
}

void Bank::refresh(u64 cycle) {
  settle(cycle);
  CAMPS_ASSERT_MSG(raw_state_ == BankState::kPrecharged,
                   "refresh requires a precharged bank");
  CAMPS_ASSERT(cycle >= ready_at_ || raw_state_ == BankState::kPrecharged);
  raw_state_ = BankState::kRefreshing;
  ready_at_ = cycle + t_->tRFC;
  ++n_ref_;
}

}  // namespace camps::dram
