// DRAM timing parameters, expressed in DRAM command-clock cycles (800 MHz).
//
// Table I of the paper fixes tRCD = tRP = tCL = 11 cycles (DDR3-1600); the
// remaining constraints are standard DDR3-1600 values and are needed for a
// legal command stream (tRAS keeps a row open long enough, tWR/tRTP gate
// precharge after column ops, tCCD serializes the vault data TSV bus).
#pragma once

#include "common/types.hpp"

namespace camps::dram {

struct TimingParams {
  u64 tRCD = 11;   ///< ACT -> first column command.
  u64 tRP = 11;    ///< PRE -> next ACT.
  u64 tCL = 11;    ///< RD -> first data beat.
  u64 tRAS = 28;   ///< ACT -> PRE (minimum row-open time).
  u64 tWL = 8;     ///< WR -> first data beat (CWL).
  u64 tBURST = 4;  ///< Data beats for one 64 B line (BL8 over the TSV bus).
  u64 tCCD = 4;    ///< Column command to column command (same bank group).
  u64 tRTP = 6;    ///< RD -> PRE.
  u64 tWR = 12;    ///< End of write data -> PRE (write recovery).
  u64 tRRD = 5;    ///< ACT -> ACT, different banks in the same vault.
  u64 tFAW = 24;   ///< Rolling window: at most four ACTs per vault per tFAW.
  u64 tRFC = 128;  ///< Refresh cycle time (all banks busy).
  u64 tREFI = 6240;///< Refresh interval: 7.8 us at 800 MHz.

  /// Cycles to stream a whole 1 KB row from the sense amps into the vault
  /// prefetch buffer over the wide TSV bus (after tCL). 32 B per command
  /// clock = 32 cycles for 1 KB — twice the per-line column bandwidth,
  /// reflecting the TSV width advantage Section 2.4 of the paper relies on
  /// without making whole-row copies free.
  u64 tROWFETCH = 32;

  /// Returns true when the parameter set is internally consistent (e.g. a
  /// row can actually be read within tRAS).
  bool valid() const;
};

/// DDR3-1600-like defaults matching Table I.
TimingParams default_timing();

}  // namespace camps::dram
