// All-bank refresh bookkeeping for one vault.
//
// HMC vaults refresh autonomously (the vault controller owns refresh, per
// HMC spec 2.1); we model the standard policy: every tREFI an all-bank
// refresh becomes due, the controller closes open rows and holds commands
// for tRFC. The scheduler only tracks *when* refreshes are due and whether
// one is in progress; the vault controller performs the bank operations.
#pragma once

#include "common/types.hpp"
#include "dram/timing.hpp"

namespace camps::dram {

class RefreshScheduler {
 public:
  explicit RefreshScheduler(const TimingParams& timing, bool enabled = true)
      : t_(&timing), enabled_(enabled), next_due_(timing.tREFI) {}

  /// True when a refresh is due at or before `cycle` and not yet started.
  bool due(u64 cycle) const { return enabled_ && cycle >= next_due_; }

  /// Cycle at which the next refresh becomes due (kTickNever if disabled).
  u64 next_due() const { return enabled_ ? next_due_ : kTickNever; }

  /// Marks the refresh that was due as started at `cycle`; the next one is
  /// due a full tREFI after the *scheduled* point, so refresh debt does not
  /// accumulate silently.
  void start(u64 cycle);

  /// Cycle the in-progress refresh completes (commands legal again).
  u64 busy_until() const { return busy_until_; }
  bool in_progress(u64 cycle) const { return cycle < busy_until_; }

  u64 refreshes_issued() const { return issued_; }

 private:
  const TimingParams* t_;
  bool enabled_;
  u64 next_due_;
  u64 busy_until_ = 0;
  u64 issued_ = 0;
};

}  // namespace camps::dram
