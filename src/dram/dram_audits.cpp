// Cold-path audit() definitions for the bank FSM
// (contract: check/audit.hpp; invariant catalog: docs/static_analysis.md).
// Kept out of the hot translation units so the audit code — which runs
// every N-hundred-thousand events, or never — does not dilute their .text.

#include <string>

#include "check/audit.hpp"
#include "dram/bank.hpp"

namespace camps {

namespace {

const char* state_name(dram::BankState s) {
  switch (s) {
    case dram::BankState::kPrecharged: return "precharged";
    case dram::BankState::kActivating: return "activating";
    case dram::BankState::kActive: return "active";
    case dram::BankState::kPrecharging: return "precharging";
    case dram::BankState::kRefreshing: return "refreshing";
  }
  return "<corrupt>";
}

}  // namespace

void dram::Bank::audit(check::AuditReporter& rep) const {
  const std::string dump =
      std::string("state=") + state_name(raw_state_) +
      " row=" + std::to_string(row_) + " ready_at=" +
      std::to_string(ready_at_) + " act_at=" + std::to_string(act_at_) +
      " last_col_at=" + std::to_string(last_col_at_) + " rd_pre_gate=" +
      std::to_string(rd_pre_gate_) + " wr_pre_gate=" +
      std::to_string(wr_pre_gate_) + " any_col=" +
      (any_col_ ? "1" : "0") + " n_act=" + std::to_string(n_act_) +
      " n_pre=" + std::to_string(n_pre_);

  const bool state_legal = raw_state_ == BankState::kPrecharged ||
                           raw_state_ == BankState::kActivating ||
                           raw_state_ == BankState::kActive ||
                           raw_state_ == BankState::kPrecharging ||
                           raw_state_ == BankState::kRefreshing;
  if (!rep.expect(state_legal, "fsm-state",
                  "raw state value " +
                      std::to_string(static_cast<u32>(raw_state_)) +
                      " is not a BankState",
                  dump)) {
    return;  // Everything below keys off the state; don't cascade noise.
  }

  // Transient completion bookkeeping.
  if (raw_state_ == BankState::kActivating) {
    rep.expect(ready_at_ == act_at_ + t_->tRCD, "act-window",
               "activating but ready_at != act_at + tRCD", dump);
  }
  if (raw_state_ == BankState::kPrecharging) {
    rep.expect(ready_at_ >= t_->tRP, "pre-window",
               "precharging with ready_at earlier than tRP", dump);
  }

  // Column-timing anchors exist only after the commands that set them.
  if (!any_col_) {
    rep.expect(rd_pre_gate_ == 0 && wr_pre_gate_ == 0, "col-gate",
               "no column issued since ACT but a tRTP/tWR precharge gate "
               "is armed",
               dump);
  } else {
    rep.expect(n_rd_ + n_wr_ + n_rowfetch_ > 0, "col-count",
               "column issued (any_col) but no RD/WR/row-fetch counted",
               dump);
    rep.expect(last_col_at_ >= act_at_, "col-order",
               "last column issue precedes the row's ACT", dump);
  }
  if (rd_pre_gate_ != 0) {
    rep.expect(n_rd_ + n_rowfetch_ > 0, "gate-provenance",
               "tRTP gate armed without any read or row fetch", dump);
  }
  if (wr_pre_gate_ != 0) {
    rep.expect(n_wr_ > 0, "gate-provenance",
               "tWR gate armed without any write", dump);
  }

  // Legal command sequences: a row is opened by exactly one ACT and closed
  // by exactly one PRE, so the counters interlock with the state.
  const bool open = raw_state_ == BankState::kActive ||
                    raw_state_ == BankState::kActivating;
  rep.expect(n_act_ == n_pre_ + (open ? 1 : 0), "act-pre-balance",
             open ? "row open but ACT count != PRE count + 1"
                  : "row closed but ACT count != PRE count",
             dump);
}

}  // namespace camps
