#include "dram/refresh.hpp"

#include "common/assert.hpp"

namespace camps::dram {

void RefreshScheduler::start(u64 cycle) {
  CAMPS_ASSERT(enabled_);
  CAMPS_ASSERT(cycle >= next_due_);
  busy_until_ = cycle + t_->tRFC;
  next_due_ += t_->tREFI;
  // If the controller fell far behind (long row-fetch bursts), catch up by
  // skipping intervals rather than issuing a refresh storm; real
  // controllers bound postponed refreshes similarly (up to 8 in DDR3).
  while (next_due_ + t_->tREFI < cycle) next_due_ += t_->tREFI;
  ++issued_;
}

}  // namespace camps::dram
