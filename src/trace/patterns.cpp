#include "trace/patterns.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "common/assert.hpp"

namespace camps::trace {

PatternBase::PatternBase(const PatternParams& params,
                         const PatternGeometry& geom)
    : p_(params), g_(geom), rng_(params.seed) {
  CAMPS_ASSERT(p_.region_bytes >= g_.row_bytes);
  CAMPS_ASSERT(g_.line_bytes > 0 && g_.row_bytes % g_.line_bytes == 0);
  // Keep the math simple: regions are whole numbers of rows.
  p_.region_bytes -= p_.region_bytes % g_.row_bytes;
  p_.base -= p_.base % g_.line_bytes;
}

void PatternBase::reset() {
  rng_ = Rng(p_.seed);
  on_reset();
}

TraceRecord PatternBase::make(Addr addr) {
  TraceRecord r;
  // gap >= 0; geometric around the mean keeps bursts realistic.
  r.gap = p_.mean_gap <= 0.0
              ? 0
              : static_cast<u32>(
                    std::min<u64>(rng_.next_geometric(p_.mean_gap + 1.0) - 1,
                                  1u << 20));
  r.addr = addr - addr % g_.line_bytes;
  r.type = rng_.next_bool(p_.write_ratio) ? AccessType::kWrite
                                          : AccessType::kRead;
  return r;
}

Addr PatternBase::clamp_to_region(Addr addr) const {
  if (addr < p_.base) return p_.base;
  const Addr end = p_.base + p_.region_bytes;
  if (addr >= end) return p_.base + (addr - p_.base) % p_.region_bytes;
  return addr;
}

// ---------------------------------------------------------------- sequential

SequentialStream::SequentialStream(const PatternParams& params,
                                   const PatternGeometry& geom,
                                   double mean_run_lines)
    : PatternBase(params, geom), mean_run_(std::max(1.0, mean_run_lines)) {
  on_reset();
}

void SequentialStream::on_reset() {
  cursor_ = p_.base;
  run_left_ = 0;
}

std::optional<TraceRecord> SequentialStream::next() {
  if (run_left_ == 0) {
    run_left_ = rng_.next_geometric(mean_run_);
    const u64 lines_in_region = p_.region_bytes / g_.line_bytes;
    cursor_ = p_.base + rng_.next_below(lines_in_region) * g_.line_bytes;
  }
  const TraceRecord r = make(cursor_);
  cursor_ = clamp_to_region(cursor_ + g_.line_bytes);
  --run_left_;
  return r;
}

// ------------------------------------------------------------------ hot rows

HotRowPattern::HotRowPattern(const PatternParams& params,
                             const PatternGeometry& geom, u32 hot_rows,
                             double mean_reuse, double cold_ratio,
                             u32 active_lines)
    : PatternBase(params, geom),
      hot_rows_(std::max<u32>(1, hot_rows)),
      mean_reuse_(std::max(1.0, mean_reuse)),
      cold_ratio_(cold_ratio),
      active_lines_(active_lines) {
  on_reset();
}

void HotRowPattern::assign_lines(u32 slot) {
  const u32 lines = static_cast<u32>(g_.lines_per_row());
  const u32 count = active_lines_ == 0 ? lines
                                       : std::min(active_lines_, lines);
  // Partial Fisher-Yates draw of `count` distinct lines.
  std::vector<u32> all(lines);
  for (u32 i = 0; i < lines; ++i) all[i] = i;
  for (u32 i = 0; i < count; ++i) {
    const u64 j = i + rng_.next_below(lines - i);
    std::swap(all[i], all[j]);
  }
  all.resize(count);
  row_lines_[slot] = std::move(all);
}

void HotRowPattern::on_reset() {
  row_bases_.assign(hot_rows_, 0);
  row_lines_.assign(hot_rows_, {});
  const u64 rows_in_region = p_.region_bytes / g_.row_bytes;
  for (u32 slot = 0; slot < hot_rows_; ++slot) {
    row_bases_[slot] = p_.base + rng_.next_below(rows_in_region) * g_.row_bytes;
    assign_lines(slot);
  }
  current_ = 0;
  reuse_left_ = 0;
}

void HotRowPattern::pick_new_row() {
  current_ = static_cast<u32>(rng_.next_below(hot_rows_));
  reuse_left_ = rng_.next_geometric(mean_reuse_);
  // Hot sets slowly rotate so the workload is not a fixed 32-row loop.
  if (rng_.next_bool(0.02)) {
    const u64 rows_in_region = p_.region_bytes / g_.row_bytes;
    row_bases_[current_] =
        p_.base + rng_.next_below(rows_in_region) * g_.row_bytes;
    assign_lines(current_);
  }
}

std::optional<TraceRecord> HotRowPattern::next() {
  if (rng_.next_bool(cold_ratio_)) {
    const u64 lines_in_region = p_.region_bytes / g_.line_bytes;
    return make(p_.base + rng_.next_below(lines_in_region) * g_.line_bytes);
  }
  if (reuse_left_ == 0) pick_new_row();
  --reuse_left_;
  const auto& lines = row_lines_[current_];
  const u32 line = lines[rng_.next_below(lines.size())];
  return make(row_bases_[current_] + u64{line} * g_.line_bytes);
}

// ----------------------------------------------------------- conflict streams

ConflictStreams::ConflictStreams(const PatternParams& params,
                                 const PatternGeometry& geom, u32 streams,
                                 u32 accesses_per_row, u32 banks_covered,
                                 u32 burst_length)
    : PatternBase(params, geom),
      streams_(std::max<u32>(2, streams)),
      per_row_(std::max<u32>(1, accesses_per_row)),
      banks_covered_(std::max<u32>(1, banks_covered)),
      burst_(std::max<u32>(1, burst_length)) {
  on_reset();
}

void ConflictStreams::on_reset() {
  walkers_.assign(static_cast<size_t>(streams_) * banks_covered_, Walker{});
  // Bank lane b gets `streams_` walkers, offset from each other by whole
  // same-bank row strides so they collide in the row buffer; different
  // lanes are reached by row_bytes offsets (distinct bank/vault bits under
  // the default mapping). A per-instance random lane offset decorrelates
  // multiple instances (cores) so they do not all punish the same banks.
  const Addr lane_offset =
      rng_.next_below(p_.region_bytes / g_.row_bytes) * g_.row_bytes;
  for (u32 b = 0; b < banks_covered_; ++b) {
    for (u32 s = 0; s < streams_; ++s) {
      auto& w = walkers_[static_cast<size_t>(b) * streams_ + s];
      const Addr raw = lane_offset + static_cast<Addr>(b) * g_.row_bytes +
                       static_cast<Addr>(s) * g_.same_bank_row_stride;
      w.row_base = p_.base + raw % p_.region_bytes;
      w.line = 0;
      w.left = per_row_;
    }
  }
  turn_ = 0;
  burst_left_ = 0;
}

std::optional<TraceRecord> ConflictStreams::next() {
  // Round-robin across walkers, each issuing a short spatial burst per
  // turn: turn boundaries land in the same bank but a different row — a
  // guaranteed conflict unless prefetched.
  if (burst_left_ == 0) {
    turn_ = static_cast<u32>((turn_ + 1) % walkers_.size());
    burst_left_ = burst_;
  }
  --burst_left_;
  auto& w = walkers_[turn_];

  const Addr addr = w.row_base + static_cast<Addr>(w.line) * g_.line_bytes;
  w.line = static_cast<u32>((w.line + 1) % g_.lines_per_row());
  if (--w.left == 0) {
    w.left = per_row_;
    // Advance by `streams_` same-bank rows so walkers never merge.
    Addr next_base =
        w.row_base + static_cast<Addr>(streams_) * g_.same_bank_row_stride;
    if (next_base >= p_.base + p_.region_bytes) {
      next_base = p_.base + (next_base - p_.base) % p_.region_bytes;
      // Keep the row aligned to the walker's bank lane.
      next_base -= (next_base - p_.base) % g_.row_bytes;
    }
    w.row_base = next_base;
    w.line = 0;
    burst_left_ = 0;  // a new row starts on a fresh turn
  }
  return make(addr);
}

// ------------------------------------------------------------------- strided

StridedPattern::StridedPattern(const PatternParams& params,
                               const PatternGeometry& geom, u64 stride_bytes)
    : PatternBase(params, geom), stride_(std::max<u64>(geom.line_bytes, stride_bytes)) {
  on_reset();
}

void StridedPattern::on_reset() { cursor_ = p_.base; }

std::optional<TraceRecord> StridedPattern::next() {
  const TraceRecord r = make(cursor_);
  cursor_ = clamp_to_region(cursor_ + stride_);
  return r;
}

// -------------------------------------------------------------------- random

RandomPattern::RandomPattern(const PatternParams& params,
                             const PatternGeometry& geom)
    : PatternBase(params, geom) {}

std::optional<TraceRecord> RandomPattern::next() {
  const u64 lines_in_region = p_.region_bytes / g_.line_bytes;
  return make(p_.base + rng_.next_below(lines_in_region) * g_.line_bytes);
}

// ------------------------------------------------------------------- mixture

MixturePattern::MixturePattern(std::vector<Component> components, u64 seed)
    : components_(std::move(components)), rng_(seed), seed_(seed) {
  CAMPS_ASSERT(!components_.empty());
  double total = 0.0;
  for (const auto& c : components_) {
    CAMPS_ASSERT(c.weight > 0.0);
    CAMPS_ASSERT(c.source != nullptr);
    total += c.weight;
    cumulative_.push_back(total);
  }
  for (auto& c : cumulative_) c /= total;
  cumulative_.back() = 1.0;  // guard against rounding
}

std::optional<TraceRecord> MixturePattern::next() {
  const double u = rng_.next_double();
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  const size_t idx = static_cast<size_t>(it - cumulative_.begin());
  return components_[std::min(idx, components_.size() - 1)].source->next();
}

void MixturePattern::reset() {
  rng_ = Rng(seed_);
  for (auto& c : components_) c.source->reset();
}

}  // namespace camps::trace
