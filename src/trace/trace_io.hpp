// Binary trace file formats (".ctrc").
//
// Version 1 (fixed-width), layout (little-endian):
//   8 bytes  magic "CAMPSTRC"
//   4 bytes  format version (1)
//   8 bytes  record count
//   records: { u32 gap, u8 type, 3 pad bytes, u64 addr } x count
//
// The fixed 16-byte record keeps readers trivially seekable; pad bytes must
// be zero and are verified on read so corrupt files fail fast.
//
// Version 2 (compact) varint-delta-encodes each record:
//   byte 0      flags: bit0 = write, bit1 = addr delta is negative
//   varint      gap
//   varint      zig-zag-free |addr - prev_addr| in 64 B lines
// Spatially local traces compress roughly 4-5x vs v1. Both versions share
// the magic; the version field selects the decoder.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace camps::trace {

/// Writes `records` to `path` in version 1 (fixed-width). Throws
/// std::runtime_error on I/O failure.
void write_trace_file(const std::string& path,
                      const std::vector<TraceRecord>& records);

/// Writes `records` in the compact version 2 encoding. Addresses must be
/// 64 B aligned (trace generators guarantee this); throws
/// std::runtime_error otherwise or on I/O failure.
void write_trace_file_v2(const std::string& path,
                         const std::vector<TraceRecord>& records);

/// Reads a whole trace file. Throws std::runtime_error on I/O failure,
/// bad magic, unsupported version, or a truncated/corrupt body.
std::vector<TraceRecord> read_trace_file(const std::string& path);

/// Streaming reader for large files; yields records without loading the
/// whole file.
class TraceFileSource final : public TraceSource {
 public:
  explicit TraceFileSource(const std::string& path);
  ~TraceFileSource() override;
  TraceFileSource(const TraceFileSource&) = delete;
  TraceFileSource& operator=(const TraceFileSource&) = delete;

  std::optional<TraceRecord> next() override;
  void reset() override;

  u64 record_count() const { return count_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  u64 count_ = 0;
};

}  // namespace camps::trace
