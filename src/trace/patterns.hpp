// Composable synthetic access-pattern generators.
//
// These substitute for SPEC CPU2006 traces (see DESIGN.md §2). Each pattern
// is an infinite TraceSource driven by a deterministic Rng; what matters for
// CAMPS is the *row-level* structure the patterns expose:
//
//   SequentialStream  — spatial runs inside rows (high row utilization)
//   HotRowPattern     — revisited rows (RUT-threshold candidates)
//   ConflictStreams   — interleaved walkers in the SAME bank, different rows
//                       (the row-buffer ping-pong the Conflict Table targets)
//   StridedPattern    — regular strides, possibly row-crossing
//   RandomPattern     — uniform lines in a region (pointer-chase proxy)
//   MixturePattern    — weighted blend of the above
//
// Addresses are virtual within [base, base + region_bytes); the system
// layer gives each core a disjoint address-space slice.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "trace/trace.hpp"

namespace camps::trace {

/// Geometry facts a generator needs to create bank-conscious patterns.
struct PatternGeometry {
  u64 line_bytes = 64;
  u64 row_bytes = 1024;
  /// Address delta that moves to the next row of the *same* bank and vault
  /// under the active address mapping (2^19 for the default RoRaBaVaCo map:
  /// 64 B line x 16 columns x 32 vaults x 16 banks).
  u64 same_bank_row_stride = u64{1} << 19;

  u64 lines_per_row() const { return row_bytes / line_bytes; }
};

/// Knobs shared by every pattern.
struct PatternParams {
  Addr base = 0;            ///< Region start (line-aligned).
  u64 region_bytes = u64{1} << 26;  ///< Working-set size.
  double mean_gap = 2.0;    ///< Mean non-memory instructions per access.
  double write_ratio = 0.2; ///< Probability an access is a write.
  u64 seed = 1;
};

/// Base class: owns the Rng and fabricates records from addresses.
class PatternBase : public TraceSource {
 public:
  PatternBase(const PatternParams& params, const PatternGeometry& geom);
  void reset() override;

 protected:
  /// Builds a record at `addr` with a freshly drawn gap and access type.
  TraceRecord make(Addr addr);
  Addr clamp_to_region(Addr addr) const;

  PatternParams p_;
  PatternGeometry g_;
  Rng rng_;

 private:
  virtual void on_reset() {}
};

/// Walks lines sequentially; after a geometric run, jumps to a random
/// line-aligned position. Long runs -> whole rows consumed in order.
class SequentialStream final : public PatternBase {
 public:
  SequentialStream(const PatternParams& params, const PatternGeometry& geom,
                   double mean_run_lines = 64.0);
  std::optional<TraceRecord> next() override;

 private:
  void on_reset() override;
  double mean_run_;
  Addr cursor_ = 0;
  u64 run_left_ = 0;
};

/// Maintains `hot_rows` favourite rows; performs `mean_reuse` random-line
/// accesses within the current hot row, then hops to another hot row.
/// Occasionally (cold_ratio) touches a cold random line instead.
///
/// `active_lines` restricts each hot row to a fixed random subset of its
/// lines (0 = all lines): real hot structures occupy part of a DRAM row,
/// so the row is re-referenced indefinitely without ever having all
/// distinct lines touched — the case Section 3.2's full-utilization
/// eviction must NOT fire on.
class HotRowPattern final : public PatternBase {
 public:
  HotRowPattern(const PatternParams& params, const PatternGeometry& geom,
                u32 hot_rows = 32, double mean_reuse = 8.0,
                double cold_ratio = 0.1, u32 active_lines = 0);
  std::optional<TraceRecord> next() override;

 private:
  void on_reset() override;
  void pick_new_row();
  void assign_lines(u32 slot);
  u32 hot_rows_;
  double mean_reuse_;
  double cold_ratio_;
  u32 active_lines_;
  std::vector<Addr> row_bases_;
  std::vector<std::vector<u32>> row_lines_;  ///< Allowed lines per hot row.
  u32 current_ = 0;
  u64 reuse_left_ = 0;
};

/// `streams` interleaved walkers pinned to the same bank: walker k starts
/// at base + k * same_bank_row_stride and advances by `streams` rows after
/// consuming `accesses_per_row` lines, so every switch between walkers is a
/// row-buffer conflict in that bank. `banks_covered` replicates the setup
/// across several banks to spread load.
class ConflictStreams final : public PatternBase {
 public:
  /// `burst_length`: consecutive accesses a walker issues per turn before
  /// yielding (spatial burst). Visits per row = accesses_per_row /
  /// burst_length; each visit boundary is a row-buffer conflict, while the
  /// burst's tail gives a prefetched row immediate usefulness — the
  /// spatial-plus-conflicting structure real interleaved streams have.
  ConflictStreams(const PatternParams& params, const PatternGeometry& geom,
                  u32 streams = 4, u32 accesses_per_row = 4,
                  u32 banks_covered = 8, u32 burst_length = 1);
  std::optional<TraceRecord> next() override;

 private:
  void on_reset() override;
  struct Walker {
    Addr row_base = 0;
    u32 line = 0;
    u32 left = 0;
  };
  u32 streams_;
  u32 per_row_;
  u32 banks_covered_;
  u32 burst_;
  std::vector<Walker> walkers_;
  u32 turn_ = 0;
  u32 burst_left_ = 0;
};

/// Fixed-stride walker (e.g. column scans). Strides >= row_bytes touch one
/// line per row — worst case for row-granularity prefetching.
class StridedPattern final : public PatternBase {
 public:
  StridedPattern(const PatternParams& params, const PatternGeometry& geom,
                 u64 stride_bytes);
  std::optional<TraceRecord> next() override;

 private:
  void on_reset() override;
  u64 stride_;
  Addr cursor_ = 0;
};

/// Uniform random line in the region every access.
class RandomPattern final : public PatternBase {
 public:
  RandomPattern(const PatternParams& params, const PatternGeometry& geom);
  std::optional<TraceRecord> next() override;
};

/// Weighted probabilistic blend of child patterns.
class MixturePattern final : public TraceSource {
 public:
  struct Component {
    double weight;
    std::unique_ptr<TraceSource> source;
  };
  MixturePattern(std::vector<Component> components, u64 seed);
  std::optional<TraceRecord> next() override;
  void reset() override;

 private:
  std::vector<Component> components_;
  std::vector<double> cumulative_;
  Rng rng_;
  u64 seed_;
};

}  // namespace camps::trace
