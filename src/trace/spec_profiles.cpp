#include "trace/spec_profiles.hpp"

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace camps::trace {
namespace {

constexpr u64 kMiB = u64{1} << 20;

// Region layout inside each benchmark's (per-core) address space. The
// friendly region is small enough to live in the L2/L3; memory regions are
// far larger than the 16 MB shared L3 so their accesses reach the HMC.
// The system layer maps each core's virtual space into a 1 GiB physical
// slice by taking the address modulo 1 GiB; the bases below are chosen so
// the three regions stay disjoint after that fold:
//   friendly -> [0, 64 MiB)   mem0 -> [64, 576 MiB)   mem1 -> [640, 1024 MiB)
constexpr Addr kFriendlyBase = 0;
constexpr Addr kMemBase0 = (u64{1} << 30) + (u64{64} << 20);
constexpr Addr kMemBase1 = (u64{3} << 30) + (u64{640} << 20);

PatternParams params(Addr base, u64 region, double gap, double wr, u64 seed) {
  PatternParams p;
  p.base = base;
  p.region_bytes = region;
  p.mean_gap = gap;
  p.write_ratio = wr;
  p.seed = seed;
  return p;
}

/// The cache-resident fraction of the instruction stream: hot rows inside a
/// small region, absorbed almost entirely by the L2/L3.
std::unique_ptr<TraceSource> friendly(const PatternGeometry& g, double gap,
                                      double wr, u64 seed, u64 bytes = kMiB) {
  return std::make_unique<HotRowPattern>(
      params(kFriendlyBase, bytes, gap, wr, seed), g,
      /*hot_rows=*/128, /*mean_reuse=*/24.0, /*cold_ratio=*/0.02);
}

using Comp = MixturePattern::Component;

std::unique_ptr<TraceSource> mixture(std::vector<Comp> comps, u64 seed) {
  return std::make_unique<MixturePattern>(std::move(comps), seed);
}

// Component builders. Regions (after the per-core 1 GiB fold):
//   mem0 [64, 576 MiB) streams/random, mem1 [640, 1024 MiB) second stream
//   or conflict lanes, hot [576, 640 MiB) long-lived hot rows.
constexpr Addr kHotBase = (u64{2} << 30) + (u64{576} << 20);
/// Short-burst streams: runs of ~6 lines trigger the RUT threshold and
/// then die — the marginal prefetches whose cheap disposal is what the
/// utilization+recency policy buys over LRU.
constexpr Addr kShortBase = (u64{1} << 30) + (u64{320} << 20);

std::unique_ptr<TraceSource> seq(const PatternGeometry& g, double gap,
                                 double wr, u64 seed, Addr base, u64 region,
                                 double run_lines) {
  return std::make_unique<SequentialStream>(params(base, region, gap, wr, seed),
                                            g, run_lines);
}

std::unique_ptr<TraceSource> hot(const PatternGeometry& g, double gap,
                                 double wr, u64 seed, u64 region, u32 rows,
                                 double reuse, double cold) {
  // Hot structures occupy ~half a row: the row is re-referenced
  // indefinitely but never reaches full line coverage, so replacement
  // policy quality (not full-use harvesting) decides its fate.
  return std::make_unique<HotRowPattern>(
      params(kHotBase, region, gap, wr, seed), g, rows, reuse, cold,
      /*active_lines=*/8);
}

std::unique_ptr<TraceSource> rnd(const PatternGeometry& g, double gap,
                                 double wr, u64 seed, Addr base, u64 region) {
  return std::make_unique<RandomPattern>(params(base, region, gap, wr, seed),
                                         g);
}

std::unique_ptr<TraceSource> strided(const PatternGeometry& g, double gap,
                                     double wr, u64 seed, Addr base,
                                     u64 region, u64 stride) {
  return std::make_unique<StridedPattern>(params(base, region, gap, wr, seed),
                                          g, stride);
}

std::unique_ptr<TraceSource> conflict(const PatternGeometry& g, double gap,
                                      double wr, u64 seed, Addr base,
                                      u64 region, u32 streams, u32 per_row,
                                      u32 lanes, u32 burst) {
  return std::make_unique<ConflictStreams>(params(base, region, gap, wr, seed),
                                           g, streams, per_row, lanes, burst);
}

// Per-benchmark factories. The weights on the memory components set the
// MPKI class; the component types set the row-buffer behaviour the
// prefetchers see: sequential runs consume whole rows (full-utilization
// evictions), hot rows live across long reuse gaps (utilization+recency
// replacement protects them where LRU ages them out), conflict lanes make
// the Conflict Table earn its keep, and random scatter punishes blind
// whole-row prefetching (BASE).

std::unique_ptr<TraceSource> make_bwaves(u64 seed, const PatternGeometry& g) {
  // Streaming numeric kernel: long sequential runs plus revisited boundary
  // rows.
  const double gap = 2.2, wr = 0.25;
  std::vector<Comp> c;
  c.push_back({0.80, friendly(g, gap, wr, seed * 31 + 1)});
  c.push_back({0.08, seq(g, gap, wr, seed * 31 + 2, kMemBase0, 256 * kMiB,
                         64.0)});
  c.push_back({0.04, seq(g, gap, wr, seed * 31 + 5, kShortBase, 128 * kMiB,
                         6.0)});
  c.push_back({0.10, hot(g, gap, wr, seed * 31 + 3, 48 * kMiB, 128, 12.0,
                         0.05)});
  return mixture(std::move(c), seed);
}

std::unique_ptr<TraceSource> make_gems(u64 seed, const PatternGeometry& g) {
  // FDTD stencil: sequential sweeps, plane-crossing strides, hot planes.
  const double gap = 2.3, wr = 0.3;
  std::vector<Comp> c;
  c.push_back({0.80, friendly(g, gap, wr, seed * 37 + 1)});
  c.push_back({0.06, seq(g, gap, wr, seed * 37 + 2, kMemBase0, 256 * kMiB,
                         48.0)});
  c.push_back({0.04, seq(g, gap, wr, seed * 37 + 5, kShortBase, 128 * kMiB,
                         6.0)});
  c.push_back({0.03, strided(g, gap, wr, seed * 37 + 3, kMemBase1,
                             256 * kMiB, 2048)});
  c.push_back({0.09, hot(g, gap, wr, seed * 37 + 4, 48 * kMiB, 128, 10.0,
                         0.1)});
  return mixture(std::move(c), seed);
}

std::unique_ptr<TraceSource> make_gcc(u64 seed, const PatternGeometry& g) {
  // Irregular compiler data structures: bank-conflicting walkers, hot
  // symbol-table rows, scattered tail.
  const double gap = 2.4, wr = 0.25;
  std::vector<Comp> c;
  c.push_back({0.82, friendly(g, gap, wr, seed * 41 + 1)});
  c.push_back({0.09, conflict(g, gap, wr, seed * 41 + 2, kMemBase1,
                              128 * kMiB, 3, 9, 16, 3)});
  c.push_back({0.08, hot(g, gap, wr, seed * 41 + 3, 32 * kMiB, 128, 8.0,
                         0.1)});
  c.push_back({0.01, rnd(g, gap, wr, seed * 41 + 4, kMemBase0, 128 * kMiB)});
  c.push_back({0.03, seq(g, gap, wr, seed * 41 + 5, kShortBase, 128 * kMiB,
                         6.0)});
  return mixture(std::move(c), seed);
}

std::unique_ptr<TraceSource> make_lbm(u64 seed, const PatternGeometry& g) {
  // Lattice-Boltzmann: write-heavy streaming over a large lattice.
  const double gap = 2.0, wr = 0.45;
  std::vector<Comp> c;
  c.push_back({0.76, friendly(g, gap, wr, seed * 43 + 1)});
  c.push_back({0.20, seq(g, gap, wr, seed * 43 + 2, kMemBase0, 256 * kMiB,
                         96.0)});
  c.push_back({0.04, seq(g, gap, wr, seed * 43 + 3, kMemBase1, 256 * kMiB,
                         48.0)});
  return mixture(std::move(c), seed);
}

std::unique_ptr<TraceSource> make_milc(u64 seed, const PatternGeometry& g) {
  // Lattice QCD: scattered site accesses with short local sweeps and a few
  // revisited gauge rows.
  const double gap = 2.3, wr = 0.2;
  std::vector<Comp> c;
  c.push_back({0.81, friendly(g, gap, wr, seed * 47 + 1)});
  c.push_back({0.04, rnd(g, gap, wr, seed * 47 + 2, kMemBase0, 224 * kMiB)});
  c.push_back({0.04, seq(g, gap, wr, seed * 47 + 5, kShortBase, 128 * kMiB,
                         6.0)});
  c.push_back({0.05, seq(g, gap, wr, seed * 47 + 3, kMemBase1, 256 * kMiB,
                         24.0)});
  c.push_back({0.09, hot(g, gap, wr, seed * 47 + 4, 32 * kMiB, 96, 8.0,
                         0.15)});
  return mixture(std::move(c), seed);
}

std::unique_ptr<TraceSource> make_sphinx(u64 seed, const PatternGeometry& g) {
  // Speech decoding: heavily revisited model rows with a scattered tail.
  const double gap = 2.5, wr = 0.15;
  std::vector<Comp> c;
  c.push_back({0.82, friendly(g, gap, wr, seed * 53 + 1)});
  c.push_back({0.16, hot(g, gap, wr, seed * 53 + 2, 64 * kMiB, 192, 10.0,
                         0.1)});
  c.push_back({0.02, rnd(g, gap, wr, seed * 53 + 3, kMemBase0, 224 * kMiB)});
  c.push_back({0.03, seq(g, gap, wr, seed * 53 + 5, kShortBase, 128 * kMiB,
                         6.0)});
  c.push_back({0.02, seq(g, gap, wr, seed * 53 + 4, kMemBase1, 128 * kMiB,
                         32.0)});
  return mixture(std::move(c), seed);
}

std::unique_ptr<TraceSource> make_omnetpp(u64 seed, const PatternGeometry& g) {
  // Discrete-event simulation: pointer-heavy, strongly conflicting event
  // queues plus hot scheduler rows.
  const double gap = 2.4, wr = 0.3;
  std::vector<Comp> c;
  c.push_back({0.80, friendly(g, gap, wr, seed * 59 + 1)});
  c.push_back({0.12, conflict(g, gap, wr, seed * 59 + 2, kMemBase1,
                              160 * kMiB, 4, 12, 24, 3)});
  c.push_back({0.07, hot(g, gap, wr, seed * 59 + 3, 32 * kMiB, 96, 7.0,
                         0.1)});
  c.push_back({0.03, rnd(g, gap, wr, seed * 59 + 4, kMemBase0, 224 * kMiB)});
  c.push_back({0.03, seq(g, gap, wr, seed * 59 + 5, kShortBase, 128 * kMiB,
                         6.0)});
  return mixture(std::move(c), seed);
}

std::unique_ptr<TraceSource> make_mcf(u64 seed, const PatternGeometry& g) {
  // Network simplex: the classic pointer-chaser; highest MPKI of the set,
  // with conflicting arc lists and a few hot node rows.
  const double gap = 1.8, wr = 0.2;
  std::vector<Comp> c;
  c.push_back({0.72, friendly(g, gap, wr, seed * 61 + 1)});
  c.push_back({0.08, rnd(g, gap, wr, seed * 61 + 2, kMemBase0, 224 * kMiB)});
  c.push_back({0.04, seq(g, gap, wr, seed * 61 + 5, kShortBase, 128 * kMiB,
                         6.0)});
  c.push_back({0.10, conflict(g, gap, wr, seed * 61 + 3, kMemBase1,
                              256 * kMiB, 3, 8, 32, 2)});
  c.push_back({0.08, hot(g, gap, wr, seed * 61 + 4, 48 * kMiB, 128, 6.0,
                         0.2)});
  return mixture(std::move(c), seed);
}

std::unique_ptr<TraceSource> make_cactus(u64 seed, const PatternGeometry& g) {
  // Numerical relativity: regular strides with strong row reuse.
  const double gap = 2.8, wr = 0.3;
  std::vector<Comp> c;
  c.push_back({0.945, friendly(g, gap, wr, seed * 67 + 1)});
  c.push_back({0.010, strided(g, gap, wr, seed * 67 + 2, kMemBase0,
                              96 * kMiB, 256)});
  c.push_back({0.009, seq(g, gap, wr, seed * 67 + 3, kMemBase1, 96 * kMiB,
                          48.0)});
  c.push_back({0.005, hot(g, gap, wr, seed * 67 + 4, 16 * kMiB, 32, 10.0,
                          0.1)});
  return mixture(std::move(c), seed);
}

std::unique_ptr<TraceSource> make_bzip2(u64 seed, const PatternGeometry& g) {
  // Block compression: bursty sequential windows plus hot dictionary rows.
  const double gap = 2.7, wr = 0.3;
  std::vector<Comp> c;
  c.push_back({0.95, friendly(g, gap, wr, seed * 71 + 1)});
  c.push_back({0.019, seq(g, gap, wr, seed * 71 + 2, kMemBase0, 48 * kMiB,
                         48.0)});
  c.push_back({0.005, hot(g, gap, wr, seed * 71 + 3, 16 * kMiB, 32, 8.0,
                         0.1)});
  return mixture(std::move(c), seed);
}

std::unique_ptr<TraceSource> make_astar(u64 seed, const PatternGeometry& g) {
  // Path search: pointer chasing in a map plus revisited frontier rows.
  const double gap = 2.6, wr = 0.2;
  std::vector<Comp> c;
  c.push_back({0.94, friendly(g, gap, wr, seed * 73 + 1)});
  c.push_back({0.019, rnd(g, gap, wr, seed * 73 + 2, kMemBase0, 64 * kMiB)});
  c.push_back({0.009, hot(g, gap, wr, seed * 73 + 3, 16 * kMiB, 48, 6.0,
                         0.15)});
  return mixture(std::move(c), seed);
}

std::unique_ptr<TraceSource> make_wrf(u64 seed, const PatternGeometry& g) {
  // Weather model: streaming field sweeps at low intensity.
  const double gap = 2.9, wr = 0.3;
  std::vector<Comp> c;
  c.push_back({0.96, friendly(g, gap, wr, seed * 79 + 1)});
  c.push_back({0.016, seq(g, gap, wr, seed * 79 + 2, kMemBase0, 96 * kMiB,
                         64.0)});
  c.push_back({0.006, hot(g, gap, wr, seed * 79 + 3, 16 * kMiB, 32, 8.0,
                         0.1)});
  return mixture(std::move(c), seed);
}

std::unique_ptr<TraceSource> make_tonto(u64 seed, const PatternGeometry& g) {
  // Quantum chemistry: small hot structures, rare cold misses.
  const double gap = 3.0, wr = 0.25;
  std::vector<Comp> c;
  c.push_back({0.97, friendly(g, gap, wr, seed * 83 + 1)});
  c.push_back({0.02, hot(g, gap, wr, seed * 83 + 2, 32 * kMiB, 48, 6.0,
                         0.3)});
  return mixture(std::move(c), seed);
}

std::unique_ptr<TraceSource> make_zeusmp(u64 seed, const PatternGeometry& g) {
  // Magnetohydrodynamics: plane strides over a medium grid.
  const double gap = 2.8, wr = 0.3;
  std::vector<Comp> c;
  c.push_back({0.95, friendly(g, gap, wr, seed * 89 + 1)});
  c.push_back({0.012, strided(g, gap, wr, seed * 89 + 2, kMemBase0,
                              128 * kMiB, 2048)});
  c.push_back({0.007, seq(g, gap, wr, seed * 89 + 3, kMemBase1, 128 * kMiB,
                          32.0)});
  c.push_back({0.005, hot(g, gap, wr, seed * 89 + 4, 16 * kMiB, 32, 8.0,
                          0.1)});
  return mixture(std::move(c), seed);
}

std::unique_ptr<TraceSource> make_h264(u64 seed, const PatternGeometry& g) {
  // Video encoding: very high locality, reference-frame row reuse.
  const double gap = 2.9, wr = 0.35;
  std::vector<Comp> c;
  c.push_back({0.96, friendly(g, gap, wr, seed * 97 + 1)});
  c.push_back({0.016, seq(g, gap, wr, seed * 97 + 2, kMemBase0, 24 * kMiB,
                         96.0)});
  c.push_back({0.006, hot(g, gap, wr, seed * 97 + 3, 16 * kMiB, 32, 12.0,
                         0.05)});
  return mixture(std::move(c), seed);
}

std::vector<BenchmarkProfile> build_profiles() {
  auto wrap = [](auto fn) {
    return [fn](u64 seed, const PatternGeometry& g) { return fn(seed, g); };
  };
  return {
      {"bwaves", MemClass::kHigh, "streaming numeric grid", wrap(make_bwaves)},
      {"gems", MemClass::kHigh, "FDTD stencil, strided planes", wrap(make_gems)},
      {"gcc", MemClass::kHigh, "irregular, bank-conflicting", wrap(make_gcc)},
      {"lbm", MemClass::kHigh, "write-heavy streaming lattice", wrap(make_lbm)},
      {"milc", MemClass::kHigh, "scattered lattice sites", wrap(make_milc)},
      {"sphinx", MemClass::kHigh, "hot model rows + scatter", wrap(make_sphinx)},
      {"omnetpp", MemClass::kHigh, "pointer-heavy, conflicting", wrap(make_omnetpp)},
      {"mcf", MemClass::kHigh, "pointer chasing, huge WS", wrap(make_mcf)},
      {"cactus", MemClass::kLow, "regular strides, good reuse", wrap(make_cactus)},
      {"bzip2", MemClass::kLow, "bursty sequential windows", wrap(make_bzip2)},
      {"astar", MemClass::kLow, "pointer chasing, medium WS", wrap(make_astar)},
      {"wrf", MemClass::kLow, "low-intensity streaming", wrap(make_wrf)},
      {"tonto", MemClass::kLow, "small hot structures", wrap(make_tonto)},
      {"zeusmp", MemClass::kLow, "plane strides, medium grid", wrap(make_zeusmp)},
      {"h264ref", MemClass::kLow, "high-locality video bursts", wrap(make_h264)},
  };
}

}  // namespace

const std::vector<BenchmarkProfile>& all_benchmarks() {
  static const std::vector<BenchmarkProfile> profiles = build_profiles();
  return profiles;
}

const BenchmarkProfile& benchmark(const std::string& name) {
  for (const auto& b : all_benchmarks()) {
    if (b.name == name) return b;
  }
  throw std::out_of_range("unknown benchmark: " + name);
}

}  // namespace camps::trace
