#include "trace/trace.hpp"

#include <unordered_set>
#include <vector>

namespace camps::trace {

std::vector<TraceRecord> collect(TraceSource& source, size_t max_records) {
  std::vector<TraceRecord> out;
  out.reserve(max_records);
  while (out.size() < max_records) {
    auto rec = source.next();
    if (!rec) break;
    out.push_back(*rec);
  }
  return out;
}

TraceStats summarize(const std::vector<TraceRecord>& records) {
  TraceStats s;
  std::unordered_set<Addr> lines;
  for (const auto& r : records) {
    ++s.records;
    s.instructions += r.gap + 1;
    if (r.type == AccessType::kRead) ++s.reads; else ++s.writes;
    lines.insert(r.addr >> 6);
  }
  s.distinct_lines = lines.size();
  if (s.instructions > 0) {
    s.accesses_per_kilo_instr =
        1000.0 * static_cast<double>(s.records) / static_cast<double>(s.instructions);
  }
  return s;
}

}  // namespace camps::trace
