#include "trace/trace_io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace camps::trace {
namespace {

constexpr char kMagic[8] = {'C', 'A', 'M', 'P', 'S', 'T', 'R', 'C'};
constexpr u32 kVersionFixed = 1;
constexpr u32 kVersionCompact = 2;

void put_u32(std::ostream& out, u32 v) {
  std::array<char, 4> b;
  for (int i = 0; i < 4; ++i) b[static_cast<size_t>(i)] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.write(b.data(), 4);
}

void put_u64(std::ostream& out, u64 v) {
  std::array<char, 8> b;
  for (int i = 0; i < 8; ++i) b[static_cast<size_t>(i)] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.write(b.data(), 8);
}

u32 get_u32(std::istream& in) {
  std::array<unsigned char, 4> b;
  in.read(reinterpret_cast<char*>(b.data()), 4);
  // Checked before decoding: a short read leaves the array uninitialized.
  if (!in) throw std::runtime_error("trace file: unexpected end of file");
  u32 v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | b[static_cast<size_t>(i)];
  return v;
}

u64 get_u64(std::istream& in) {
  std::array<unsigned char, 8> b;
  in.read(reinterpret_cast<char*>(b.data()), 8);
  if (!in) throw std::runtime_error("trace file: unexpected end of file");
  u64 v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[static_cast<size_t>(i)];
  return v;
}

void put_varint(std::ostream& out, u64 v) {
  while (v >= 0x80) {
    out.put(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.put(static_cast<char>(v));
}

u64 get_varint(std::istream& in) {
  u64 v = 0;
  int shift = 0;
  for (;;) {
    const int c = in.get();
    if (c == std::char_traits<char>::eof()) {
      throw std::runtime_error("trace file: truncated varint");
    }
    if (shift >= 64) {
      throw std::runtime_error("trace file: varint overflow (corrupt)");
    }
    v |= (static_cast<u64>(c) & 0x7F) << shift;
    if ((c & 0x80) == 0) return v;
    shift += 7;
  }
}

// --- version 1 records ----------------------------------------------------

void write_record_v1(std::ostream& out, const TraceRecord& r) {
  put_u32(out, r.gap);
  const char type = r.type == AccessType::kWrite ? 1 : 0;
  out.put(type);
  out.put(0);
  out.put(0);
  out.put(0);
  put_u64(out, r.addr);
}

TraceRecord read_record_v1(std::istream& in) {
  TraceRecord r;
  r.gap = get_u32(in);
  std::array<char, 4> tp;
  in.read(tp.data(), 4);
  if (!in) throw std::runtime_error("trace file: unexpected end of file");
  if (tp[1] != 0 || tp[2] != 0 || tp[3] != 0) {
    throw std::runtime_error("trace file: nonzero pad bytes (corrupt record)");
  }
  if (tp[0] != 0 && tp[0] != 1) {
    throw std::runtime_error("trace file: invalid access type");
  }
  r.type = tp[0] == 1 ? AccessType::kWrite : AccessType::kRead;
  r.addr = get_u64(in);
  return r;
}

// --- version 2 records (varint line-delta) ---------------------------------

constexpr u64 kLineShift = 6;  // 64 B lines

void write_record_v2(std::ostream& out, const TraceRecord& r,
                     Addr& prev_addr) {
  if (r.addr % 64 != 0) {
    throw std::runtime_error(
        "trace file v2 requires 64 B aligned addresses");
  }
  const u64 line = r.addr >> kLineShift;
  const u64 prev_line = prev_addr >> kLineShift;
  const bool negative = line < prev_line;
  const u64 delta = negative ? prev_line - line : line - prev_line;
  u8 flags = 0;
  if (r.type == AccessType::kWrite) flags |= 1;
  if (negative) flags |= 2;
  out.put(static_cast<char>(flags));
  put_varint(out, r.gap);
  put_varint(out, delta);
  prev_addr = r.addr;
}

TraceRecord read_record_v2(std::istream& in, Addr& prev_addr) {
  const int flags = in.get();
  if (flags == std::char_traits<char>::eof()) {
    throw std::runtime_error("trace file: truncated body");
  }
  if ((flags & ~0x3) != 0) {
    throw std::runtime_error("trace file: invalid v2 flags (corrupt)");
  }
  TraceRecord r;
  r.type = (flags & 1) ? AccessType::kWrite : AccessType::kRead;
  const u64 gap = get_varint(in);
  if (gap > 0xFFFFFFFFull) {
    throw std::runtime_error("trace file: v2 gap overflows u32 (corrupt)");
  }
  r.gap = static_cast<u32>(gap);
  const u64 delta = get_varint(in);
  const u64 prev_line = prev_addr >> kLineShift;
  const u64 line = (flags & 2) ? prev_line - delta : prev_line + delta;
  r.addr = line << kLineShift;
  prev_addr = r.addr;
  return r;
}

void write_header(std::ostream& out, u32 version, u64 count) {
  out.write(kMagic, 8);
  put_u32(out, version);
  put_u64(out, count);
}

u32 read_header(std::istream& in, u64& count) {
  char magic[8];
  in.read(magic, 8);
  if (in.gcount() == 0) {
    throw std::runtime_error("trace file: empty file (no header)");
  }
  if (in.gcount() < 8) {
    throw std::runtime_error("trace file: truncated header");
  }
  if (std::memcmp(magic, kMagic, 8) != 0) {
    throw std::runtime_error("trace file: bad magic");
  }
  const u32 version = get_u32(in);
  if (version != kVersionFixed && version != kVersionCompact) {
    throw std::runtime_error("trace file: unsupported version " +
                             std::to_string(version));
  }
  count = get_u64(in);
  return version;
}

/// Reads record `index` (0-based) of `total`, rethrowing any decode error
/// with the record's position so a corrupt file points at itself.
TraceRecord read_record(std::istream& in, u32 version, Addr& prev_addr,
                        u64 index, u64 total) {
  try {
    return version == kVersionFixed ? read_record_v1(in)
                                    : read_record_v2(in, prev_addr);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(std::string(e.what()) + " (record " +
                             std::to_string(index + 1) + " of " +
                             std::to_string(total) + ")");
  }
}

}  // namespace

void write_trace_file(const std::string& path,
                      const std::vector<TraceRecord>& records) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot create trace file: " + path);
  write_header(out, kVersionFixed, records.size());
  for (const auto& r : records) write_record_v1(out, r);
  out.flush();
  if (!out) throw std::runtime_error("write failure on trace file: " + path);
}

void write_trace_file_v2(const std::string& path,
                         const std::vector<TraceRecord>& records) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot create trace file: " + path);
  write_header(out, kVersionCompact, records.size());
  Addr prev = 0;
  for (const auto& r : records) write_record_v2(out, r, prev);
  out.flush();
  if (!out) throw std::runtime_error("write failure on trace file: " + path);
}

std::vector<TraceRecord> read_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  u64 count = 0;
  const u32 version = read_header(in, count);
  std::vector<TraceRecord> records;
  records.reserve(count);
  Addr prev = 0;
  for (u64 i = 0; i < count; ++i) {
    records.push_back(read_record(in, version, prev, i, count));
  }
  // The header's count must describe the file exactly: trailing bytes mean
  // the writer and header disagree (or the file was concatenated/corrupt).
  if (in.peek() != std::char_traits<char>::eof()) {
    throw std::runtime_error(
        "trace file: trailing bytes after the " + std::to_string(count) +
        " records declared in the header");
  }
  return records;
}

struct TraceFileSource::Impl {
  std::ifstream in;
  std::string path;
  u64 remaining = 0;
  u32 version = kVersionFixed;
  Addr prev_addr = 0;
};

TraceFileSource::TraceFileSource(const std::string& path)
    : impl_(std::make_unique<Impl>()) {
  impl_->path = path;
  impl_->in.open(path, std::ios::binary);
  if (!impl_->in) throw std::runtime_error("cannot open trace file: " + path);
  impl_->version = read_header(impl_->in, count_);
  impl_->remaining = count_;
}

TraceFileSource::~TraceFileSource() = default;

std::optional<TraceRecord> TraceFileSource::next() {
  if (impl_->remaining == 0) return std::nullopt;
  TraceRecord r = read_record(impl_->in, impl_->version, impl_->prev_addr,
                              count_ - impl_->remaining, count_);
  --impl_->remaining;
  return r;
}

void TraceFileSource::reset() {
  impl_->in.clear();
  impl_->in.seekg(0, std::ios::beg);
  u64 count = 0;
  impl_->version = read_header(impl_->in, count);
  impl_->remaining = count;
  impl_->prev_addr = 0;
}

}  // namespace camps::trace
