// Instruction/memory trace abstraction.
//
// A trace is a sequence of TraceRecords: each record says "execute `gap`
// non-memory instructions, then perform this memory access". Cores replay
// traces (cpu/core.hpp); synthetic generators (trace/patterns.hpp) produce
// them on the fly so multi-billion-record workloads need no disk files.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace camps::trace {

struct TraceRecord {
  u32 gap = 0;          ///< Non-memory instructions preceding this access.
  Addr addr = 0;        ///< Virtual byte address of the access.
  AccessType type = AccessType::kRead;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// Pull-based trace producer. Implementations may be finite (file-backed)
/// or infinite (synthetic); cores stop at an instruction budget either way.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Next record, or nullopt at end-of-trace.
  virtual std::optional<TraceRecord> next() = 0;

  /// Rewinds to the beginning. Synthetic sources reseed to their initial
  /// state so replays are identical.
  virtual void reset() = 0;
};

/// In-memory trace, replayed in order. Used by tests and file loading.
class VectorTraceSource final : public TraceSource {
 public:
  explicit VectorTraceSource(std::vector<TraceRecord> records)
      : records_(std::move(records)) {}

  std::optional<TraceRecord> next() override {
    if (pos_ >= records_.size()) return std::nullopt;
    return records_[pos_++];
  }
  void reset() override { pos_ = 0; }

  const std::vector<TraceRecord>& records() const { return records_; }

 private:
  std::vector<TraceRecord> records_;
  size_t pos_ = 0;
};

/// Drains up to `max_records` from a source (testing/inspection helper).
std::vector<TraceRecord> collect(TraceSource& source, size_t max_records);

/// Summary statistics over a record window; used by calibration tests.
struct TraceStats {
  u64 records = 0;
  u64 instructions = 0;     ///< gaps + one per access
  u64 reads = 0;
  u64 writes = 0;
  u64 distinct_lines = 0;   ///< distinct 64 B lines touched
  double accesses_per_kilo_instr = 0.0;
};
TraceStats summarize(const std::vector<TraceRecord>& records);

}  // namespace camps::trace
