// SPEC CPU2006-like benchmark profiles.
//
// The paper builds its Table II workloads from 15 SPEC CPU2006 benchmarks,
// classified by L3 misses-per-kilo-instruction: HM (MPKI >= 20) and
// LM (1 <= MPKI < 20). SPEC traces are not redistributable, so each
// benchmark here is a synthetic profile: a mixture of a cache-friendly
// component (absorbed by L1/L2/L3) and memory components whose row-level
// structure mimics the benchmark's published character (streaming for lbm/
// bwaves, pointer-chasing for mcf/astar, row-conflict-heavy for gcc/
// omnetpp, ...). Calibration tests (tests/trace) verify each profile lands
// in its MPKI class when run through the Table I cache hierarchy.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "trace/patterns.hpp"

namespace camps::trace {

enum class MemClass : u8 { kHigh, kLow };

inline const char* to_string(MemClass c) {
  return c == MemClass::kHigh ? "HM" : "LM";
}

struct BenchmarkProfile {
  std::string name;
  MemClass mem_class;
  std::string character;  ///< One-line description of the access behaviour.

  /// Builds a fresh infinite trace source for this benchmark. `seed`
  /// decorrelates multiple instances of the same benchmark in one mix
  /// (Table II repeats benchmarks within a workload).
  std::function<std::unique_ptr<TraceSource>(u64 seed,
                                             const PatternGeometry&)>
      make_source;
};

/// All 15 profiles, in a stable order (8 HM then 7 LM).
const std::vector<BenchmarkProfile>& all_benchmarks();

/// Lookup by SPEC short name ("mcf", "h264ref", ...). Throws
/// std::out_of_range for unknown names.
const BenchmarkProfile& benchmark(const std::string& name);

}  // namespace camps::trace
