#include "cache/hierarchy.hpp"

#include <functional>
#include <memory>
#include <vector>

#include "common/assert.hpp"

namespace camps::cache {

CacheHierarchy::CacheHierarchy(sim::Simulator& sim,
                               const HierarchyConfig& config, u32 cores,
                               MemoryPort* memory)
    : sim_(sim),
      cfg_(config),
      l3_(config.l3),
      mshrs_(config.mshr_entries),
      memory_(memory) {
  CAMPS_ASSERT(cores > 0);
  CAMPS_ASSERT(memory_ != nullptr);
  CAMPS_ASSERT(config.l1.line_bytes == config.l3.line_bytes &&
               config.l2.line_bytes == config.l3.line_bytes);
  l1_.reserve(cores);
  l2_.reserve(cores);
  for (u32 c = 0; c < cores; ++c) {
    l1_.push_back(std::make_unique<Cache>(config.l1));
    l2_.push_back(std::make_unique<Cache>(config.l2));
  }
}

void CacheHierarchy::reset_stats() {
  for (auto& c : l1_) c->reset_stats();
  for (auto& c : l2_) c->reset_stats();
  l3_.reset_stats();
  memory_reads_ = memory_writes_ = 0;
  load_latency_cycles_ = loads_completed_ = 0;
}

double CacheHierarchy::amat_cycles() const {
  return loads_completed_ == 0
             ? 0.0
             : static_cast<double>(load_latency_cycles_) /
                   static_cast<double>(loads_completed_);
}

namespace {
Addr align(Addr addr, u64 line_bytes) { return addr - addr % line_bytes; }
}  // namespace

// Fill helpers: victims cascade downward; dirty L3 victims become memory
// writes. Clean victims are dropped (no traffic).

void CacheHierarchy::fill_level(Cache& cache, Addr addr, bool dirty,
                                CoreId core, bool is_l3) {
  const auto victim = cache.fill(addr, dirty);
  if (!victim || !victim->dirty) return;
  if (is_l3) {
    ++memory_writes_;
    memory_->mem_write(victim->line_addr, core);
  } else if (&cache == l1_[core].get()) {
    fill_level(*l2_[core], victim->line_addr, true, core, false);
  } else {
    fill_level(l3_, victim->line_addr, true, core, true);
  }
}

u32 CacheHierarchy::lookup_path(CoreId core, Addr addr, AccessType type,
                                u32& cycles) {
  cycles += cfg_.l1.hit_latency;
  if (l1_[core]->access(addr, type)) return 1;
  cycles += cfg_.l2.hit_latency;
  if (l2_[core]->access(addr, AccessType::kRead)) return 2;
  cycles += cfg_.l3.hit_latency;
  if (l3_.access(addr, AccessType::kRead)) return 3;
  return 0;
}

void CacheHierarchy::complete_load(Tick issued, DoneFn done) {
  ++loads_completed_;
  load_latency_cycles_ += (sim_.now() - issued) / sim::kCpuTicksPerCycle;
  if (done) done();
}

void CacheHierarchy::read(CoreId core, Addr addr, DoneFn done) {
  const Addr line = align(addr, cfg_.l3.line_bytes);
  const Tick issued = sim_.now();
  u32 cycles = 0;
  const u32 level = lookup_path(core, line, AccessType::kRead, cycles);
  if (level != 0) {
    if (level >= 3) fill_level(*l2_[core], line, false, core, false);
    if (level >= 2) fill_level(*l1_[core], line, false, core, false);
    sim_.schedule(Tick{cycles} * sim::kCpuTicksPerCycle,
                  [this, issued, done = std::move(done)]() mutable {
                    complete_load(issued, std::move(done));
                  });
    return;
  }

  // L3 miss: register with the MSHRs; the first miss launches the fetch
  // after the full lookup latency has elapsed.
  auto waiter = [this, core, line, issued, done = std::move(done)]() mutable {
    fill_level(*l2_[core], line, false, core, false);
    fill_level(*l1_[core], line, false, core, false);
    complete_load(issued, std::move(done));
  };
  allocate_or_defer(line, core, cycles, std::move(waiter));
}

void CacheHierarchy::allocate_or_defer(Addr line, CoreId core,
                                       u32 lookup_cycles,
                                       MshrFile::WakeFn waiter) {
  const auto result = mshrs_.allocate(line, waiter);
  if (result == MshrFile::Allocate::kFull) {
    // Structural stall: re-attempt when an outstanding fetch completes.
    mshr_retry_.push_back([this, line, core, lookup_cycles,
                           waiter = std::move(waiter)]() mutable {
      allocate_or_defer(line, core, lookup_cycles, std::move(waiter));
    });
    return;
  }
  if (result == MshrFile::Allocate::kMustFetch) {
    sim_.schedule(Tick{lookup_cycles} * sim::kCpuTicksPerCycle,
                  [this, core, line] {
                    ++memory_reads_;
                    memory_->mem_read(line, core,
                                      [this, line] { fill_from_memory(0, line); });
                  });
  }
}

void CacheHierarchy::fill_from_memory(CoreId /*requesting*/, Addr line) {
  fill_level(l3_, line, false, /*core=*/0, /*is_l3=*/true);
  for (auto& wake : mshrs_.complete(line)) wake();
  // A slot just freed: give deferred miss attempts another chance (they
  // re-defer themselves if the file fills up again).
  if (!mshr_retry_.empty()) {
    std::vector<std::function<void()>> retries;
    retries.swap(mshr_retry_);
    for (auto& retry : retries) retry();
  }
}

void CacheHierarchy::write(CoreId core, Addr addr) {
  const Addr line = align(addr, cfg_.l3.line_bytes);
  u32 cycles = 0;
  const u32 level = lookup_path(core, line, AccessType::kWrite, cycles);
  if (level == 1) return;  // dirty bit set by access()
  if (level != 0) {
    if (level >= 3) fill_level(*l2_[core], line, false, core, false);
    fill_level(*l1_[core], line, /*dirty=*/true, core, false);
    return;
  }
  // Write-allocate: fetch the line; the store itself has already retired
  // (store buffer), so no completion callback — the line lands dirty in L1.
  auto waiter = [this, core, line] {
    fill_level(*l2_[core], line, false, core, false);
    fill_level(*l1_[core], line, /*dirty=*/true, core, false);
  };
  allocate_or_defer(line, core, cycles, std::move(waiter));
}

}  // namespace camps::cache
