// Set-associative cache array: LRU, write-back, write-allocate.
//
// The cache is a *functional* tag store with a latency attached by the
// hierarchy; it never schedules events itself. Used for the private L1/L2
// and the shared L3 of Table I.
#pragma once

#include <optional>
#include <vector>

#include "common/types.hpp"

namespace camps::cache {

struct CacheConfig {
  u64 size_bytes = 32 * 1024;
  u32 ways = 2;
  u64 line_bytes = 64;
  u32 hit_latency = 2;  ///< CPU cycles, consumed by the hierarchy.

  u64 sets() const { return size_bytes / (line_bytes * ways); }
  bool valid() const;
};

/// A line evicted to make room (victim of a fill).
struct Victim {
  Addr line_addr = 0;  ///< Byte address of the evicted line.
  bool dirty = false;
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// True if the line is present. Updates LRU and the dirty bit on hit.
  bool access(Addr addr, AccessType type);

  /// Presence check with no side effects.
  bool probe(Addr addr) const;

  /// Inserts the line (MRU, with the given dirty state). Returns the
  /// victim if a valid line was displaced. Filling a present line only
  /// ORs the dirty bit.
  std::optional<Victim> fill(Addr addr, bool dirty);

  /// Removes the line if present; returns whether it was dirty.
  std::optional<bool> invalidate(Addr addr);

  const CacheConfig& config() const { return cfg_; }

  u64 hits() const { return hits_; }
  u64 misses() const { return misses_; }
  u64 evictions() const { return evictions_; }
  u64 dirty_evictions() const { return dirty_evictions_; }

  /// Zeroes counters; tag contents stay (warmup boundary).
  void reset_stats() { hits_ = misses_ = evictions_ = dirty_evictions_ = 0; }

 private:
  struct Line {
    u64 tag = 0;
    u32 lru = 0;  ///< Larger = more recently used.
    bool valid = false;
    bool dirty = false;
  };

  u64 set_index(Addr addr) const;
  u64 tag_of(Addr addr) const;
  Line* find(Addr addr);
  const Line* find(Addr addr) const;
  void touch(u64 set, Line& line);

  CacheConfig cfg_;
  std::vector<Line> lines_;       ///< sets x ways, row-major.
  std::vector<u32> lru_clock_;    ///< Per-set pseudo-time for LRU.
  u64 hits_ = 0, misses_ = 0, evictions_ = 0, dirty_evictions_ = 0;
};

}  // namespace camps::cache
