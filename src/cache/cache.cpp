#include "cache/cache.hpp"

#include <bit>
#include <optional>

#include "common/assert.hpp"

namespace camps::cache {
namespace {
bool is_pow2(u64 v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

bool CacheConfig::valid() const {
  return is_pow2(line_bytes) && ways >= 1 && size_bytes >= line_bytes * ways &&
         size_bytes % (line_bytes * ways) == 0 && is_pow2(sets());
}

Cache::Cache(const CacheConfig& config) : cfg_(config) {
  CAMPS_ASSERT_MSG(cfg_.valid(), "invalid cache configuration");
  lines_.resize(cfg_.sets() * cfg_.ways);
  lru_clock_.resize(cfg_.sets(), 0);
}

u64 Cache::set_index(Addr addr) const {
  return (addr / cfg_.line_bytes) % cfg_.sets();
}

u64 Cache::tag_of(Addr addr) const {
  return (addr / cfg_.line_bytes) / cfg_.sets();
}

Cache::Line* Cache::find(Addr addr) {
  const u64 set = set_index(addr);
  const u64 tag = tag_of(addr);
  for (u32 w = 0; w < cfg_.ways; ++w) {
    Line& line = lines_[set * cfg_.ways + w];
    if (line.valid && line.tag == tag) return &line;
  }
  return nullptr;
}

const Cache::Line* Cache::find(Addr addr) const {
  return const_cast<Cache*>(this)->find(addr);
}

void Cache::touch(u64 set, Line& line) { line.lru = ++lru_clock_[set]; }

bool Cache::access(Addr addr, AccessType type) {
  Line* line = find(addr);
  if (line == nullptr) {
    ++misses_;
    return false;
  }
  ++hits_;
  touch(set_index(addr), *line);
  if (type == AccessType::kWrite) line->dirty = true;
  return true;
}

bool Cache::probe(Addr addr) const { return find(addr) != nullptr; }

std::optional<Victim> Cache::fill(Addr addr, bool dirty) {
  if (Line* present = find(addr)) {
    present->dirty |= dirty;
    touch(set_index(addr), *present);
    return std::nullopt;
  }
  const u64 set = set_index(addr);
  Line* victim = nullptr;
  for (u32 w = 0; w < cfg_.ways; ++w) {
    Line& line = lines_[set * cfg_.ways + w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (victim == nullptr || line.lru < victim->lru) victim = &line;
  }
  std::optional<Victim> out;
  if (victim->valid) {
    ++evictions_;
    if (victim->dirty) ++dirty_evictions_;
    out = Victim{.line_addr = (victim->tag * cfg_.sets() + set) * cfg_.line_bytes,
                 .dirty = victim->dirty};
  }
  victim->valid = true;
  victim->tag = tag_of(addr);
  victim->dirty = dirty;
  touch(set, *victim);
  return out;
}

std::optional<bool> Cache::invalidate(Addr addr) {
  Line* line = find(addr);
  if (line == nullptr) return std::nullopt;
  const bool dirty = line->dirty;
  *line = Line{};
  return dirty;
}

}  // namespace camps::cache
