#include "cache/mshr.hpp"

#include <string>
#include <vector>

#include "common/assert.hpp"

namespace camps::cache {

bool MshrFile::pending(Addr line_addr) const {
  return pending_.count(line_addr) != 0;
}

MshrFile::Allocate MshrFile::allocate(Addr line_addr, WakeFn waiter) {
  auto it = pending_.find(line_addr);
  if (it != pending_.end()) {
    it->second.push_back(std::move(waiter));
    ++merges_;
    return Allocate::kMerged;
  }
  if (max_entries_ != 0 && pending_.size() >= max_entries_) {
    ++full_rejections_;
    return Allocate::kFull;
  }
  pending_[line_addr].push_back(std::move(waiter));
  ++allocations_;
  return Allocate::kMustFetch;
}

std::vector<MshrFile::WakeFn> MshrFile::complete(Addr line_addr) {
  auto it = pending_.find(line_addr);
  CAMPS_ASSERT_MSG(it != pending_.end(), "completion for unknown MSHR line");
  std::vector<WakeFn> waiters = std::move(it->second);
  pending_.erase(it);
  return waiters;
}

}  // namespace camps::cache
