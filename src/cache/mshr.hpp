// Miss Status Holding Registers for the shared L3 / memory boundary.
//
// Merges concurrent misses to the same line into one memory request: the
// first miss allocates an entry and triggers the fetch; later misses attach
// their callbacks. When the line returns, every waiter fires in arrival
// order.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "check/audit.hpp"
#include "common/types.hpp"

namespace camps::cache {

class MshrFile final {
 public:
  using WakeFn = std::function<void()>;

  /// Unlimited entries by default (the cores' outstanding-miss windows
  /// bound demand in practice); pass a cap to model a finite file.
  explicit MshrFile(u32 max_entries = 0) : max_entries_(max_entries) {}

  /// True when a fetch for `line_addr` is already outstanding.
  bool pending(Addr line_addr) const;

  /// Result of allocate(): whether this call must launch the memory fetch.
  enum class Allocate : u8 { kMustFetch, kMerged, kFull };

  /// Registers a waiter for `line_addr`.
  Allocate allocate(Addr line_addr, WakeFn waiter);

  /// Completes a fetch: removes the entry and returns its waiters.
  std::vector<WakeFn> complete(Addr line_addr);

  u32 entries_in_use() const { return static_cast<u32>(pending_.size()); }
  u64 merges() const { return merges_; }
  u64 allocations() const { return allocations_; }
  u64 full_rejections() const { return full_rejections_; }

  /// Invariants: the file respects its capacity, every outstanding entry
  /// has at least one live waiter (the allocating miss registers one), and
  /// merges never outnumber the accesses that could have merged.
  void audit(check::AuditReporter& reporter) const;

 private:
  friend struct check::TestCorruptor;

  u32 max_entries_;
  std::unordered_map<Addr, std::vector<WakeFn>> pending_;
  u64 merges_ = 0, allocations_ = 0, full_rejections_ = 0;
};

static_assert(check::Auditable<MshrFile>);

}  // namespace camps::cache
