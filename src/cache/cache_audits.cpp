// Cold-path audit() definitions for the MSHR file and cache hierarchy
// (contract: check/audit.hpp; invariant catalog: docs/static_analysis.md).
// Kept out of the hot translation units so the audit code — which runs
// every N-hundred-thousand events, or never — does not dilute their .text.

#include <string>

#include "cache/hierarchy.hpp"
#include "cache/mshr.hpp"
#include "check/audit.hpp"

namespace camps {

void cache::MshrFile::audit(check::AuditReporter& rep) const {
  const check::AuditScope scope(rep, "mshr");
  if (max_entries_ != 0) {
    rep.expect(pending_.size() <= max_entries_, "mshr-capacity",
               std::to_string(pending_.size()) +
                   " outstanding entries exceed the file's " +
                   std::to_string(max_entries_) + "-entry capacity");
  }
  for (const auto& [line, waiters] : pending_) {
    rep.expect(!waiters.empty(), "mshr-orphan",
               "line " + std::to_string(line) +
                   " is outstanding with no registered waiter");
    for (const WakeFn& w : waiters) {
      rep.expect(static_cast<bool>(w), "mshr-dead-waiter",
                 "line " + std::to_string(line) +
                     " holds an empty wake callback");
    }
  }
  rep.expect(pending_.size() <= allocations_, "mshr-crossfoot",
             "more lines outstanding than fetches ever launched");
}

void cache::CacheHierarchy::audit(check::AuditReporter& rep) const {
  const check::AuditScope scope(rep, "cache");
  mshrs_.audit(rep);
  // Deferred retries only exist while the MSHR file is bounded and full
  // misses were turned away; each must be a live callable.
  for (const auto& retry : mshr_retry_) {
    rep.expect(static_cast<bool>(retry), "cache-dead-retry",
               "deferred MSHR retry holds an empty callback");
  }
  if (cfg_.mshr_entries == 0) {
    rep.expect(mshr_retry_.empty(), "cache-retry-unbounded",
               "retries deferred although the MSHR file is unlimited");
  }
}

}  // namespace camps
