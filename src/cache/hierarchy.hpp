// Three-level cache hierarchy per Table I:
//   L1 (I/D unified here as data path): 32 KB private, 2-way, 2-cycle hit
//   L2: 256 KB private, 4-way, 6-cycle hit
//   L3: 16 MB shared, 16-way, 20-cycle hit, 64 B lines
//
// Functional tags + scheduled latencies: a read resolves at the first level
// that hits, after the sum of lookup latencies down to it. Misses past the
// L3 go to main memory through a MemoryPort; MSHRs merge same-line misses.
// Write-back/write-allocate: stores that miss fetch the line like a load
// (but complete the store immediately — store buffers hide the latency),
// dirty victims cascade down and dirty L3 victims become memory writes.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cache/cache.hpp"
#include "cache/mshr.hpp"
#include "sim/clock.hpp"
#include "sim/simulator.hpp"

namespace camps::cache {

/// The hierarchy's view of main memory (implemented by the HMC host
/// controller via a thin adapter in the system layer).
class MemoryPort {
 public:
  virtual ~MemoryPort() = default;
  virtual void mem_read(Addr line_addr, CoreId core,
                        std::function<void()> done) = 0;
  virtual void mem_write(Addr line_addr, CoreId core) = 0;
};

struct HierarchyConfig {
  CacheConfig l1{.size_bytes = 32 * 1024, .ways = 2, .line_bytes = 64,
                 .hit_latency = 2};
  CacheConfig l2{.size_bytes = 256 * 1024, .ways = 4, .line_bytes = 64,
                 .hit_latency = 6};
  CacheConfig l3{.size_bytes = 16 * 1024 * 1024, .ways = 16, .line_bytes = 64,
                 .hit_latency = 20};
  /// Maximum outstanding L3 misses (distinct lines). 0 = unlimited (the
  /// cores' own outstanding-load windows bound demand); a finite value
  /// defers excess misses until an outstanding fetch completes.
  u32 mshr_entries = 0;
};

class CacheHierarchy final {
 public:
  using DoneFn = std::function<void()>;

  CacheHierarchy(sim::Simulator& sim, const HierarchyConfig& config,
                 u32 cores, MemoryPort* memory);

  /// Performs a load; `done` fires when the data reaches the core.
  void read(CoreId core, Addr addr, DoneFn done);

  /// Performs a store (write-allocate; completes immediately for the core,
  /// the line fetch proceeds in the background on a miss).
  void write(CoreId core, Addr addr);

  // --- inspection -------------------------------------------------------
  const Cache& l1(CoreId core) const { return *l1_[core]; }
  const Cache& l2(CoreId core) const { return *l2_[core]; }
  const Cache& l3() const { return l3_; }
  const MshrFile& mshrs() const { return mshrs_; }
  u64 l3_misses() const { return l3_.misses(); }
  u64 memory_reads() const { return memory_reads_; }
  u64 memory_writes() const { return memory_writes_; }
  /// Sum of load completion latencies (CPU cycles) and count, for AMAT.
  u64 load_latency_cycles() const { return load_latency_cycles_; }
  u64 loads_completed() const { return loads_completed_; }
  double amat_cycles() const;

  /// Zeroes all cache and latency counters; contents stay warm.
  void reset_stats();

  /// Audits the MSHR file and the deferred-retry list.
  void audit(check::AuditReporter& reporter) const;

 private:
  /// Walks the hierarchy for one line; returns the level that hit
  /// (1/2/3) or 0 for memory, and accumulates lookup latency in `cycles`.
  u32 lookup_path(CoreId core, Addr addr, AccessType type, u32& cycles);
  void fill_from_memory(CoreId core, Addr addr);
  /// Registers `waiter` for `line`; launches the memory fetch if this is
  /// the first miss, or defers the whole attempt if the MSHR file is full.
  void allocate_or_defer(Addr line, CoreId core, u32 lookup_cycles,
                         MshrFile::WakeFn waiter);
  void fill_level(Cache& cache, Addr addr, bool dirty, CoreId core,
                  bool is_l3);
  void complete_load(Tick issued, DoneFn done);

  sim::Simulator& sim_;
  HierarchyConfig cfg_;
  std::vector<std::unique_ptr<Cache>> l1_;
  std::vector<std::unique_ptr<Cache>> l2_;
  Cache l3_;
  MshrFile mshrs_;
  MemoryPort* memory_;
  /// Miss attempts rejected by a full MSHR file, retried on completions.
  std::vector<std::function<void()>> mshr_retry_;

  u64 memory_reads_ = 0, memory_writes_ = 0;
  u64 load_latency_cycles_ = 0, loads_completed_ = 0;
};

static_assert(check::Auditable<CacheHierarchy>);

}  // namespace camps::cache
