#include "workload/workloads.hpp"

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace camps::workload {
namespace {

std::vector<Workload> build_table2() {
  using C = WorkloadClass;
  return {
      {"HM1", C::kHM, {"bwaves", "gems", "gcc", "lbm", "bwaves", "gcc", "lbm", "gems"}},
      {"HM2", C::kHM, {"milc", "gems", "sphinx", "omnetpp", "sphinx", "milc", "omnetpp", "gems"}},
      {"HM3", C::kHM, {"gcc", "mcf", "lbm", "milc", "mcf", "gcc", "milc", "lbm"}},
      {"HM4", C::kHM, {"sphinx", "gcc", "lbm", "bwaves", "sphinx", "bwaves", "lbm", "gcc"}},
      {"LM1", C::kLM, {"cactus", "bzip2", "astar", "wrf", "wrf", "bzip2", "cactus", "astar"}},
      {"LM2", C::kLM, {"tonto", "zeusmp", "h264ref", "astar", "zeusmp", "h264ref", "astar", "tonto"}},
      {"LM3", C::kLM, {"bzip2", "zeusmp", "cactus", "tonto", "cactus", "zeusmp", "bzip2", "tonto"}},
      {"LM4", C::kLM, {"astar", "tonto", "bzip2", "h264ref", "tonto", "astar", "bzip2", "h264ref"}},
      {"MX1", C::kMX, {"bwaves", "gcc", "cactus", "wrf", "cactus", "gcc", "wrf", "bwaves"}},
      {"MX2", C::kMX, {"gems", "sphinx", "tonto", "h264ref", "sphinx", "gems", "h264ref", "tonto"}},
      {"MX3", C::kMX, {"milc", "lbm", "wrf", "bzip2", "lbm", "bzip2", "milc", "wrf"}},
      {"MX4", C::kMX, {"gcc", "bwaves", "bzip2", "astar", "bwaves", "gcc", "bzip2", "astar"}},
  };
}

}  // namespace

std::vector<std::unique_ptr<trace::TraceSource>> Workload::make_sources(
    u64 seed, const trace::PatternGeometry& geom) const {
  std::vector<std::unique_ptr<trace::TraceSource>> sources;
  sources.reserve(kCoresPerWorkload);
  for (u32 core = 0; core < kCoresPerWorkload; ++core) {
    const auto& profile = trace::benchmark(benchmarks[core]);
    // Fold the core index into the seed so repeated benchmarks diverge.
    sources.push_back(profile.make_source(seed * 1000003 + core + 1, geom));
  }
  return sources;
}

const std::vector<Workload>& table2_workloads() {
  static const std::vector<Workload> workloads = build_table2();
  return workloads;
}

const Workload& workload(const std::string& id) {
  for (const auto& w : table2_workloads()) {
    if (w.id == id) return w;
  }
  throw std::out_of_range("unknown workload: " + id);
}

}  // namespace camps::workload
