// Table II: the paper's twelve eight-core multiprogrammed workloads.
//
// HM sets draw only from the high-memory-intensity benchmarks (MPKI >= 20),
// LM sets from the low-intensity ones (1 <= MPKI < 20), and MX sets mix
// four of each. The benchmark orderings below are transcribed verbatim from
// Table II (core 0 runs the first name, core 7 the last).
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "trace/spec_profiles.hpp"

namespace camps::workload {

enum class WorkloadClass : u8 { kHM, kLM, kMX };

inline const char* to_string(WorkloadClass c) {
  switch (c) {
    case WorkloadClass::kHM: return "HM";
    case WorkloadClass::kLM: return "LM";
    case WorkloadClass::kMX: return "MX";
  }
  return "?";
}

inline constexpr u32 kCoresPerWorkload = 8;

struct Workload {
  std::string id;                                    ///< "HM1" ... "MX4"
  WorkloadClass cls;
  std::array<std::string, kCoresPerWorkload> benchmarks;

  /// Builds the eight per-core trace sources. Repeated benchmarks within
  /// the mix receive distinct seeds (and therefore distinct phases), as two
  /// copies of a SPEC binary would run distinct inputs.
  std::vector<std::unique_ptr<trace::TraceSource>> make_sources(
      u64 seed, const trace::PatternGeometry& geom) const;
};

/// All twelve workloads of Table II, in paper order.
const std::vector<Workload>& table2_workloads();

/// Lookup by id ("HM1", "MX3", ...). Throws std::out_of_range when unknown.
const Workload& workload(const std::string& id);

}  // namespace camps::workload
