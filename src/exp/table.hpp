// Column-aligned plain-text tables, shared by every bench binary so figure
// output is uniform and diffable.
#pragma once

#include <string>
#include <vector>

namespace camps::exp {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  std::string to_string() const;

  /// Comma-separated rendering (quotes cells containing commas/quotes) for
  /// downstream plotting.
  std::string to_csv() const;

  /// Writes to_csv() to `path`; throws std::runtime_error on I/O failure.
  void write_csv(const std::string& path) const;

  /// JSON rendering: {"headers": [...], "rows": [[...], ...]}. Byte-stable
  /// for a given table (cells are already formatted strings).
  std::string to_json(int indent = 0) const;

  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& row_data() const {
    return rows_;
  }

  size_t rows() const { return rows_.size(); }

  /// Fixed-precision double formatting ("1.234").
  static std::string fmt(double value, int precision = 3);
  /// Percentage formatting ("12.3%").
  static std::string pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace camps::exp
