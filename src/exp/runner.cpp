#include "exp/runner.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/thread_pool.hpp"

namespace camps::exp {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

system::SystemConfig ExperimentConfig::system_config(
    prefetch::SchemeKind scheme) const {
  system::SystemConfig cfg = system::table1_config(scheme);
  cfg.core.warmup_instructions = warmup_instructions;
  cfg.core.measure_instructions = measure_instructions;
  cfg.seed = seed;
  cfg.max_cycles = max_cycles;
  cfg.audit_every = audit_every;
  cfg.obs = obs;
  cfg.hmc.fault = fault;
  return cfg;
}

std::vector<system::RunResults> run_parallel(std::vector<SimFn> sims,
                                             u32 jobs) {
  std::vector<system::RunResults> results(sims.size());
  if (sims.empty()) return results;
  if (jobs == 0) jobs = ThreadPool::default_threads();
  jobs = std::min<u32>(jobs, static_cast<u32>(sims.size()));

  if (jobs <= 1) {
    // No point spinning up workers for a serial sweep; same results either
    // way (each sim is self-contained), just less overhead.
    for (size_t i = 0; i < sims.size(); ++i) results[i] = sims[i]();
    return results;
  }

  ThreadPool pool(jobs);
  for (size_t i = 0; i < sims.size(); ++i) {
    pool.submit([&results, &sims, i] { results[i] = sims[i](); });
  }
  pool.wait_idle();
  return results;
}

Runner::Runner(const ExperimentConfig& config) : cfg_(config) {}

SimFn Runner::make_sim(const Job& job) const {
  // Everything a worker needs is captured by value; the only state a sim
  // touches afterwards is its own System.
  if (job.solo) {
    system::SystemConfig sys_cfg = cfg_.system_config(job.scheme);
    sys_cfg.cores = 1;
    const u64 seed = cfg_.seed;
    const std::string benchmark = job.workload;
    const bool verbose = cfg_.verbose;
    return [sys_cfg, seed, benchmark, verbose] {
      if (verbose) {
        progress_line("[run] %s (solo) / %s ...", benchmark.c_str(),
                      prefetch::to_string(sys_cfg.scheme));
      }
      const auto& profile = trace::benchmark(benchmark);
      std::vector<std::unique_ptr<trace::TraceSource>> sources;
      sources.push_back(
          profile.make_source(seed * 1000003 + 1, sys_cfg.pattern_geometry()));
      system::System sys(sys_cfg, std::move(sources));
      return sys.run();
    };
  }
  const system::SystemConfig sys_cfg = cfg_.system_config(job.scheme);
  const std::string workload = job.workload;
  const bool verbose = cfg_.verbose;
  return [sys_cfg, workload, verbose] {
    if (verbose) {
      progress_line("[run] %s / %s ...", workload.c_str(),
                    prefetch::to_string(sys_cfg.scheme));
    }
    auto results = system::make_workload_system(sys_cfg, workload)->run();
    if (results.partial && verbose) {
      progress_line("[run] %s / %s hit the cycle bound (partial)",
                    workload.c_str(), prefetch::to_string(sys_cfg.scheme));
    }
    return results;
  };
}

void Runner::run_all(const std::vector<Job>& jobs) {
  // Deduplicate and drop cache hits, preserving first-seen order.
  std::vector<Job> todo;
  for (const auto& job : jobs) {
    const auto key = std::make_pair(job.workload, job.scheme);
    const bool cached =
        job.solo ? solo_cache_.count(key) != 0 : cache_.count(key) != 0;
    if (cached) continue;
    bool seen = false;
    for (const auto& t : todo) {
      if (t.solo == job.solo && t.scheme == job.scheme &&
          t.workload == job.workload) {
        seen = true;
        break;
      }
    }
    if (!seen) todo.push_back(job);
  }
  if (todo.empty()) return;

  const auto sweep_start = std::chrono::steady_clock::now();
  std::vector<SimFn> sims;
  sims.reserve(todo.size());
  for (const auto& job : todo) sims.push_back(make_sim(job));
  auto results = run_parallel(std::move(sims), cfg_.jobs);

  // Merge on the calling thread: by here every worker is done, so the
  // cache never sees concurrent writers and a key is inserted exactly once.
  for (size_t i = 0; i < todo.size(); ++i) {
    timing_.runs += 1;
    timing_.events += results[i].events_executed;
    timing_.run_seconds += results[i].wall_seconds;
    const auto key = std::make_pair(todo[i].workload, todo[i].scheme);
    if (todo[i].solo) {
      solo_cache_.emplace(key, results[i].cores[0].ipc);
    } else {
      cache_.emplace(key, std::move(results[i]));
    }
  }
  timing_.sweep_seconds += seconds_since(sweep_start);

  if (cfg_.verbose) {
    const u32 jobs_used =
        cfg_.jobs == 0 ? ThreadPool::default_threads() : cfg_.jobs;
    progress_line(
        "[sweep] %llu runs: %.1fs wall at jobs=%u (%.1fs of simulation, "
        "%.2f Mevents/s per worker)",
        static_cast<unsigned long long>(todo.size()),
        seconds_since(sweep_start), jobs_used,
        timing_.run_seconds, timing_.events_per_second() / 1e6);
  }
}

void Runner::run_all(const std::vector<std::string>& workloads,
                     const std::vector<prefetch::SchemeKind>& schemes) {
  std::vector<Job> jobs;
  jobs.reserve(workloads.size() * schemes.size());
  for (const auto& w : workloads) {
    for (auto scheme : schemes) jobs.push_back(Job{w, scheme, false});
  }
  run_all(jobs);
}

const system::RunResults& Runner::result(const std::string& workload,
                                         prefetch::SchemeKind scheme) {
  const auto key = std::make_pair(workload, scheme);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  run_all(std::vector<Job>{Job{workload, scheme, false}});
  return cache_.at(key);
}

double Runner::speedup(const std::string& workload,
                       prefetch::SchemeKind scheme,
                       prefetch::SchemeKind baseline) {
  const double base_ipc = result(workload, baseline).geomean_ipc;
  const double ipc = result(workload, scheme).geomean_ipc;
  return base_ipc <= 0.0 ? 0.0 : ipc / base_ipc;
}

double Runner::mean_speedup(const std::vector<std::string>& workloads,
                            prefetch::SchemeKind scheme,
                            prefetch::SchemeKind baseline) {
  std::vector<double> speedups;
  speedups.reserve(workloads.size());
  for (const auto& w : workloads) {
    speedups.push_back(speedup(w, scheme, baseline));
  }
  return system::geometric_mean(speedups);
}

double Runner::solo_ipc(const std::string& benchmark,
                        prefetch::SchemeKind scheme) {
  const auto key = std::make_pair(benchmark, scheme);
  auto it = solo_cache_.find(key);
  if (it != solo_cache_.end()) return it->second;
  run_all(std::vector<Job>{Job{benchmark, scheme, true}});
  return solo_cache_.at(key);
}

double Runner::weighted_speedup(const std::string& workload,
                                prefetch::SchemeKind scheme) {
  const auto& mix = workload::workload(workload);
  const auto& results = result(workload, scheme);
  double sum = 0.0;
  for (u32 c = 0; c < workload::kCoresPerWorkload; ++c) {
    const double solo = solo_ipc(mix.benchmarks[c], scheme);
    if (solo > 0.0) sum += results.cores[c].ipc / solo;
  }
  return sum;
}

double Runner::harmonic_speedup(const std::string& workload,
                                prefetch::SchemeKind scheme) {
  const auto& mix = workload::workload(workload);
  const auto& results = result(workload, scheme);
  double denom = 0.0;
  for (u32 c = 0; c < workload::kCoresPerWorkload; ++c) {
    const double solo = solo_ipc(mix.benchmarks[c], scheme);
    const double ipc = results.cores[c].ipc;
    if (ipc <= 0.0) return 0.0;
    denom += solo / ipc;
  }
  return denom == 0.0
             ? 0.0
             : static_cast<double>(workload::kCoresPerWorkload) / denom;
}

std::vector<std::string> Runner::all_workloads() {
  std::vector<std::string> out;
  for (const auto& w : workload::table2_workloads()) out.push_back(w.id);
  return out;
}

std::vector<std::string> Runner::workloads_of(workload::WorkloadClass cls) {
  std::vector<std::string> out;
  for (const auto& w : workload::table2_workloads()) {
    if (w.cls == cls) out.push_back(w.id);
  }
  return out;
}

}  // namespace camps::exp
