#include "exp/runner.hpp"

#include <cstdio>

namespace camps::exp {

system::SystemConfig ExperimentConfig::system_config(
    prefetch::SchemeKind scheme) const {
  system::SystemConfig cfg = system::table1_config(scheme);
  cfg.core.warmup_instructions = warmup_instructions;
  cfg.core.measure_instructions = measure_instructions;
  cfg.seed = seed;
  cfg.max_cycles = max_cycles;
  return cfg;
}

Runner::Runner(const ExperimentConfig& config) : cfg_(config) {}

const system::RunResults& Runner::result(const std::string& workload,
                                         prefetch::SchemeKind scheme) {
  const auto key = std::make_pair(workload, scheme);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  if (cfg_.verbose) {
    std::fprintf(stderr, "[run] %s / %s ...\n", workload.c_str(),
                 prefetch::to_string(scheme));
  }
  auto sys = system::make_workload_system(cfg_.system_config(scheme), workload);
  auto results = sys->run();
  if (results.partial && cfg_.verbose) {
    std::fprintf(stderr, "[run] %s / %s hit the cycle bound (partial)\n",
                 workload.c_str(), prefetch::to_string(scheme));
  }
  return cache_.emplace(key, std::move(results)).first->second;
}

double Runner::speedup(const std::string& workload,
                       prefetch::SchemeKind scheme,
                       prefetch::SchemeKind baseline) {
  const double base_ipc = result(workload, baseline).geomean_ipc;
  const double ipc = result(workload, scheme).geomean_ipc;
  return base_ipc <= 0.0 ? 0.0 : ipc / base_ipc;
}

double Runner::mean_speedup(const std::vector<std::string>& workloads,
                            prefetch::SchemeKind scheme,
                            prefetch::SchemeKind baseline) {
  std::vector<double> speedups;
  speedups.reserve(workloads.size());
  for (const auto& w : workloads) {
    speedups.push_back(speedup(w, scheme, baseline));
  }
  return system::geometric_mean(speedups);
}

double Runner::solo_ipc(const std::string& benchmark,
                        prefetch::SchemeKind scheme) {
  const auto key = std::make_pair(benchmark, scheme);
  auto it = solo_cache_.find(key);
  if (it != solo_cache_.end()) return it->second;

  system::SystemConfig sys_cfg = cfg_.system_config(scheme);
  sys_cfg.cores = 1;
  const auto& profile = trace::benchmark(benchmark);
  std::vector<std::unique_ptr<trace::TraceSource>> sources;
  sources.push_back(profile.make_source(cfg_.seed * 1000003 + 1,
                                        sys_cfg.pattern_geometry()));
  system::System sys(sys_cfg, std::move(sources));
  const double ipc = sys.run().cores[0].ipc;
  solo_cache_.emplace(key, ipc);
  return ipc;
}

double Runner::weighted_speedup(const std::string& workload,
                                prefetch::SchemeKind scheme) {
  const auto& mix = workload::workload(workload);
  const auto& results = result(workload, scheme);
  double sum = 0.0;
  for (u32 c = 0; c < workload::kCoresPerWorkload; ++c) {
    const double solo = solo_ipc(mix.benchmarks[c], scheme);
    if (solo > 0.0) sum += results.cores[c].ipc / solo;
  }
  return sum;
}

double Runner::harmonic_speedup(const std::string& workload,
                                prefetch::SchemeKind scheme) {
  const auto& mix = workload::workload(workload);
  const auto& results = result(workload, scheme);
  double denom = 0.0;
  for (u32 c = 0; c < workload::kCoresPerWorkload; ++c) {
    const double solo = solo_ipc(mix.benchmarks[c], scheme);
    const double ipc = results.cores[c].ipc;
    if (ipc <= 0.0) return 0.0;
    denom += solo / ipc;
  }
  return denom == 0.0
             ? 0.0
             : static_cast<double>(workload::kCoresPerWorkload) / denom;
}

std::vector<std::string> Runner::all_workloads() {
  std::vector<std::string> out;
  for (const auto& w : workload::table2_workloads()) out.push_back(w.id);
  return out;
}

std::vector<std::string> Runner::workloads_of(workload::WorkloadClass cls) {
  std::vector<std::string> out;
  for (const auto& w : workload::table2_workloads()) {
    if (w.cls == cls) out.push_back(w.id);
  }
  return out;
}

}  // namespace camps::exp
