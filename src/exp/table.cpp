#include "exp/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/json.hpp"

namespace camps::exp {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  CAMPS_ASSERT(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  CAMPS_ASSERT(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << csv_escape(row[c]);
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::to_json(int indent) const {
  JsonWriter w(indent);
  w.begin_object();
  w.key("headers");
  w.begin_array();
  for (const auto& h : headers_) w.value(h);
  w.end_array();
  w.key("rows");
  w.begin_array();
  for (const auto& row : rows_) {
    w.begin_array();
    for (const auto& cell : row) w.value(cell);
    w.end_array();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot create CSV file: " + path);
  out << to_csv();
  if (!out.flush()) throw std::runtime_error("write failure: " + path);
}

std::string Table::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace camps::exp
