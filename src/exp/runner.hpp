// Experiment runner: executes (workload x scheme) simulations, caches the
// results in-process, and offers the normalizations the paper's figures
// report (speedup vs BASE, geometric means per workload class).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "system/system.hpp"
#include "workload/workloads.hpp"

namespace camps::exp {

struct ExperimentConfig {
  /// Per-run simulation scale. Full Table I system; the instruction budget
  /// trades bench runtime for statistical stability.
  u64 warmup_instructions = 200'000;
  u64 measure_instructions = 1'000'000;
  u64 seed = 1;
  u64 max_cycles = 400'000'000;
  bool verbose = false;  ///< Print one progress line per run to stderr.

  /// Builds the Table I SystemConfig for one scheme under this experiment
  /// scale. Hook point for ablations: tweak the returned config.
  system::SystemConfig system_config(prefetch::SchemeKind scheme) const;
};

class Runner {
 public:
  explicit Runner(const ExperimentConfig& config = {});

  /// Runs (or returns the cached) simulation of `workload` under `scheme`.
  const system::RunResults& result(const std::string& workload,
                                   prefetch::SchemeKind scheme);

  /// Speedup of `scheme` over `baseline` on one workload (IPC geomeans).
  double speedup(const std::string& workload, prefetch::SchemeKind scheme,
                 prefetch::SchemeKind baseline);

  /// Geometric mean of per-workload speedups across `workloads`.
  double mean_speedup(const std::vector<std::string>& workloads,
                      prefetch::SchemeKind scheme,
                      prefetch::SchemeKind baseline);

  /// IPC of `benchmark` running alone on a single-core Table I system
  /// under `scheme` (cached). The denominator of the multiprogramming
  /// fairness metrics.
  double solo_ipc(const std::string& benchmark, prefetch::SchemeKind scheme);

  /// Weighted speedup of a mix: sum_i IPC_i / soloIPC_i (system throughput
  /// in "jobs' worth of progress"; Snavely & Tullsen, ASPLOS 2000).
  double weighted_speedup(const std::string& workload,
                          prefetch::SchemeKind scheme);

  /// Harmonic mean of per-core speedups: N / sum_i (soloIPC_i / IPC_i) —
  /// balances throughput and fairness (Luo et al., ISPASS 2001).
  double harmonic_speedup(const std::string& workload,
                          prefetch::SchemeKind scheme);

  const ExperimentConfig& config() const { return cfg_; }

  /// All Table II ids, in paper order.
  static std::vector<std::string> all_workloads();
  /// Ids of one class ("HM", "LM", "MX").
  static std::vector<std::string> workloads_of(workload::WorkloadClass cls);

 private:
  ExperimentConfig cfg_;
  std::map<std::pair<std::string, prefetch::SchemeKind>, system::RunResults>
      cache_;
  std::map<std::pair<std::string, prefetch::SchemeKind>, double> solo_cache_;
};

}  // namespace camps::exp
