// Experiment runner: executes (workload x scheme) simulations, caches the
// results in-process, and offers the normalizations the paper's figures
// report (speedup vs BASE, geometric means per workload class).
//
// Sweeps parallelize across simulations: run_all() fans independent runs
// out over a thread pool (each run owns a private System; nothing mutable
// is shared), then merges results into the cache on the calling thread.
// A run's result depends only on (config, workload, seed) — never on
// scheduling order — so jobs=N and jobs=1 produce identical tables.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "fault/fault_config.hpp"
#include "obs/obs_config.hpp"
#include "system/system.hpp"
#include "workload/workloads.hpp"

namespace camps::exp {

struct ExperimentConfig {
  /// Per-run simulation scale. Full Table I system; the instruction budget
  /// trades bench runtime for statistical stability.
  u64 warmup_instructions = 200'000;
  u64 measure_instructions = 1'000'000;
  u64 seed = 1;
  u64 max_cycles = 400'000'000;
  /// Model self-audit interval in executed events (0 = off); copied into
  /// every run's SystemConfig. Benches arm it with --audit.
  u64 audit_every = 0;
  bool verbose = false;  ///< Print one progress line per run to stderr.

  /// Worker threads for parallel sweeps; 0 = all hardware threads.
  u32 jobs = 0;

  /// Observability knobs copied into every run's SystemConfig (tracing and
  /// epoch sampling are per-System, so sweeps stay deterministic).
  obs::ObsConfig obs;

  /// Fault-injection campaign copied into every run's SystemConfig.
  /// Decisions are a pure function of (seed, site, unit, sequence), so a
  /// fault campaign is as --jobs-invariant as a fault-free sweep.
  fault::FaultConfig fault;

  /// Builds the Table I SystemConfig for one scheme under this experiment
  /// scale. Hook point for ablations: tweak the returned config.
  system::SystemConfig system_config(prefetch::SchemeKind scheme) const;
};

/// One simulation closure; must be independent of every other entry in the
/// same batch (no shared mutable state).
using SimFn = std::function<system::RunResults()>;

/// Executes independent simulations on `jobs` worker threads (0 = all
/// hardware threads) and returns their results in input order. Results are
/// deterministic: scheduling order cannot affect any entry.
std::vector<system::RunResults> run_parallel(std::vector<SimFn> sims,
                                             u32 jobs);

/// Host-side cost of the simulations a Runner executed (cache misses only).
struct SweepTiming {
  u64 runs = 0;             ///< Simulations actually executed.
  u64 events = 0;           ///< Simulator events dispatched across them.
  double run_seconds = 0;   ///< Summed per-run wall time (~CPU time).
  double sweep_seconds = 0; ///< Wall-clock spent inside run_all()/result().
  double events_per_second() const {
    return run_seconds > 0 ? static_cast<double>(events) / run_seconds : 0.0;
  }
};

class Runner {
 public:
  explicit Runner(const ExperimentConfig& config = {});

  /// One unit of sweep work. `workload` is a Table II id, or a single
  /// benchmark name when `solo` is set (the fairness-metric denominator).
  struct Job {
    std::string workload;
    prefetch::SchemeKind scheme;
    bool solo = false;
  };

  /// Runs every not-yet-cached job in parallel (config().jobs workers) and
  /// caches the results. Later result()/speedup()/solo_ipc() calls on these
  /// keys are cache hits, so benches front-load their whole sweep here.
  void run_all(const std::vector<Job>& jobs);

  /// Convenience: the (workloads x schemes) cross product.
  void run_all(const std::vector<std::string>& workloads,
               const std::vector<prefetch::SchemeKind>& schemes);

  /// Runs (or returns the cached) simulation of `workload` under `scheme`.
  const system::RunResults& result(const std::string& workload,
                                   prefetch::SchemeKind scheme);

  /// Speedup of `scheme` over `baseline` on one workload (IPC geomeans).
  double speedup(const std::string& workload, prefetch::SchemeKind scheme,
                 prefetch::SchemeKind baseline);

  /// Geometric mean of per-workload speedups across `workloads`.
  double mean_speedup(const std::vector<std::string>& workloads,
                      prefetch::SchemeKind scheme,
                      prefetch::SchemeKind baseline);

  /// IPC of `benchmark` running alone on a single-core Table I system
  /// under `scheme` (cached). The denominator of the multiprogramming
  /// fairness metrics.
  double solo_ipc(const std::string& benchmark, prefetch::SchemeKind scheme);

  /// Weighted speedup of a mix: sum_i IPC_i / soloIPC_i (system throughput
  /// in "jobs' worth of progress"; Snavely & Tullsen, ASPLOS 2000).
  double weighted_speedup(const std::string& workload,
                          prefetch::SchemeKind scheme);

  /// Harmonic mean of per-core speedups: N / sum_i (soloIPC_i / IPC_i) —
  /// balances throughput and fairness (Luo et al., ISPASS 2001).
  double harmonic_speedup(const std::string& workload,
                          prefetch::SchemeKind scheme);

  const ExperimentConfig& config() const { return cfg_; }

  /// Accumulated host-side cost of every simulation this runner executed.
  const SweepTiming& timing() const { return timing_; }

  using Cache = std::map<std::pair<std::string, prefetch::SchemeKind>,
                         system::RunResults>;

  /// Every cached (workload, scheme) -> results entry, in deterministic map
  /// order. The exporters (--stats-json, --trace-out) iterate this.
  const Cache& results() const { return cache_; }

  /// All Table II ids, in paper order.
  static std::vector<std::string> all_workloads();
  /// Ids of one class ("HM", "LM", "MX").
  static std::vector<std::string> workloads_of(workload::WorkloadClass cls);

 private:
  /// Builds the simulation closure for one uncached job.
  SimFn make_sim(const Job& job) const;

  ExperimentConfig cfg_;
  SweepTiming timing_;
  Cache cache_;
  std::map<std::pair<std::string, prefetch::SchemeKind>, double> solo_cache_;
};

}  // namespace camps::exp
