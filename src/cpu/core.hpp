// Trace-driven core model (substitute for gem5's OoO cores; DESIGN.md §2).
//
// Each core replays a TraceSource: `gap` non-memory instructions execute at
// `issue_width` per cycle, then the memory access issues (at most one per
// cycle — an L1-port bound). Loads are non-blocking up to
// `max_outstanding_loads` in flight (the ROB/MSHR window); hitting the
// window stalls the core until a load returns. Stores retire immediately
// through the store buffer. This reproduces the arrival process and
// memory-level parallelism that drive row-buffer behaviour, which is what
// the paper's evaluation measures.
//
// Methodology hooks: the core reports when it crosses its warmup boundary
// and its measurement boundary, mirroring the paper's warmup + detailed
// windows; IPC is measured strictly between the two.
#pragma once

#include <functional>
#include <optional>

#include "cache/hierarchy.hpp"
#include "trace/trace.hpp"

namespace camps::cpu {

struct CoreConfig {
  u32 issue_width = 4;
  u32 max_outstanding_loads = 8;
  u64 warmup_instructions = 100'000;
  u64 measure_instructions = 1'000'000;
};

class Core {
 public:
  /// Fired (once each) when the core crosses its warmup / measurement
  /// instruction boundaries.
  using PhaseFn = std::function<void(CoreId)>;

  Core(sim::Simulator& sim, CoreId id, const CoreConfig& config,
       trace::TraceSource* trace, cache::CacheHierarchy* caches,
       PhaseFn on_warmed_up, PhaseFn on_measured);

  /// Begins execution at the current simulation time.
  void start();

  CoreId id() const { return id_; }
  u64 instructions_issued() const { return issued_; }
  bool warmed_up() const { return warmup_tick_.has_value(); }
  bool measured() const { return measure_tick_.has_value(); }
  bool halted() const { return halted_; }

  /// Instructions actually executed inside the measurement window (equals
  /// measure_instructions unless the trace ended early).
  u64 measured_instructions() const { return measured_instructions_; }

  /// IPC over the measurement window. 0 before the window completes.
  double measured_ipc() const;

  u64 loads() const { return loads_; }
  u64 stores() const { return stores_; }
  /// CPU cycles the core spent stalled on a full load window.
  u64 stall_cycles() const { return stall_ticks_ / sim::kCpuTicksPerCycle; }

 private:
  void step();
  void schedule_step(Tick when);
  void on_load_done();
  void check_phases();
  void halt();

  sim::Simulator& sim_;
  CoreId id_;
  CoreConfig cfg_;
  trace::TraceSource* trace_;
  cache::CacheHierarchy* caches_;
  PhaseFn on_warmed_up_;
  PhaseFn on_measured_;

  std::optional<trace::TraceRecord> current_;
  Tick cursor_ = 0;  ///< Core-local time: when the last issue completed.
  u64 issued_ = 0;
  u32 outstanding_ = 0;
  bool stalled_ = false;
  bool step_scheduled_ = false;
  bool halted_ = false;
  Tick stall_start_ = 0;
  Tick stall_ticks_ = 0;

  std::optional<Tick> warmup_tick_;
  std::optional<Tick> measure_tick_;
  u64 measured_instructions_ = 0;
  u64 loads_ = 0, stores_ = 0;
};

}  // namespace camps::cpu
