#include "cpu/core.hpp"

#include "common/assert.hpp"

namespace camps::cpu {

Core::Core(sim::Simulator& sim, CoreId id, const CoreConfig& config,
           trace::TraceSource* trace, cache::CacheHierarchy* caches,
           PhaseFn on_warmed_up, PhaseFn on_measured)
    : sim_(sim),
      id_(id),
      cfg_(config),
      trace_(trace),
      caches_(caches),
      on_warmed_up_(std::move(on_warmed_up)),
      on_measured_(std::move(on_measured)) {
  CAMPS_ASSERT(cfg_.issue_width >= 1);
  CAMPS_ASSERT(cfg_.max_outstanding_loads >= 1);
  CAMPS_ASSERT(trace_ != nullptr && caches_ != nullptr);
}

void Core::start() {
  cursor_ = sim_.now();
  schedule_step(sim_.now());
}

void Core::schedule_step(Tick when) {
  if (step_scheduled_ || halted_) return;
  step_scheduled_ = true;
  sim_.schedule_at(std::max(when, sim_.now()), [this] {
    step_scheduled_ = false;
    step();
  });
}

void Core::step() {
  if (halted_) return;
  while (true) {
    if (!current_) {
      current_ = trace_->next();
      if (!current_) {
        halt();
        return;
      }
    }
    const u64 instrs = u64{current_->gap} + 1;
    const u64 cycles = (instrs + cfg_.issue_width - 1) / cfg_.issue_width;
    const Tick issue_at = cursor_ + cycles * sim::kCpuTicksPerCycle;
    if (issue_at > sim_.now()) {
      schedule_step(issue_at);
      return;
    }
    if (current_->type == AccessType::kRead &&
        outstanding_ >= cfg_.max_outstanding_loads) {
      if (!stalled_) {
        stalled_ = true;
        stall_start_ = sim_.now();
      }
      return;  // resumed by on_load_done()
    }

    cursor_ = issue_at;
    issued_ += instrs;
    if (current_->type == AccessType::kRead) {
      ++outstanding_;
      ++loads_;
      caches_->read(id_, current_->addr, [this] { on_load_done(); });
    } else {
      ++stores_;
      caches_->write(id_, current_->addr);
    }
    current_.reset();
    check_phases();
  }
}

void Core::on_load_done() {
  CAMPS_ASSERT(outstanding_ > 0);
  --outstanding_;
  if (stalled_) {
    stalled_ = false;
    stall_ticks_ += sim_.now() - stall_start_;
    // The core was waiting at a window boundary: its local time catches up
    // to the moment the slot freed.
    cursor_ = std::max(cursor_, sim_.now());
    schedule_step(sim_.now());
  }
}

void Core::check_phases() {
  if (!warmup_tick_ && issued_ >= cfg_.warmup_instructions) {
    warmup_tick_ = cursor_;
    if (on_warmed_up_) on_warmed_up_(id_);
  }
  if (warmup_tick_ && !measure_tick_ &&
      issued_ >= cfg_.warmup_instructions + cfg_.measure_instructions) {
    measure_tick_ = cursor_;
    measured_instructions_ = cfg_.measure_instructions;
    if (on_measured_) on_measured_(id_);
  }
}

void Core::halt() {
  halted_ = true;
  // A finite trace that ends early still completes the methodology phases
  // so the run can't deadlock waiting for this core.
  if (!warmup_tick_) {
    warmup_tick_ = cursor_;
    if (on_warmed_up_) on_warmed_up_(id_);
  }
  if (!measure_tick_) {
    measure_tick_ = cursor_;
    measured_instructions_ =
        issued_ > cfg_.warmup_instructions ? issued_ - cfg_.warmup_instructions
                                           : 0;
    if (on_measured_) on_measured_(id_);
  }
}

double Core::measured_ipc() const {
  if (!measure_tick_ || !warmup_tick_) return 0.0;
  const Tick span = *measure_tick_ - *warmup_tick_;
  if (span == 0) return 0.0;
  const double cycles =
      static_cast<double>(span) / static_cast<double>(sim::kCpuTicksPerCycle);
  return static_cast<double>(measured_instructions_) / cycles;
}

}  // namespace camps::cpu
