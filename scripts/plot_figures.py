#!/usr/bin/env python3
"""Plot the paper's figures from bench CSV or --stats-json exports.

Usage:
  build/bench/bench_fig5_speedup --quiet --csv=fig5.csv
  build/bench/bench_fig6_conflicts --quiet --stats-json=fig6.json
  ...
  scripts/plot_figures.py fig5.csv fig6.json ...

A .json input is a bench --stats-json document; its "table" object carries
the same headers/rows as the CSV, so no table scraping is needed. Either
way the first column is the workload id and the remaining columns are
series (one bar group per workload, one bar per scheme), mirroring the
paper's grouped-bar figures. Produces <input>.png next to each input. Falls
back to an ASCII rendering when matplotlib is unavailable.
"""
import csv
import json
import sys
from pathlib import Path


def read(path):
    if path.endswith(".json"):
        with open(path) as f:
            table = json.load(f)["table"]
        return table["headers"], table["rows"]
    with open(path, newline="") as f:
        rows = list(csv.reader(f))
    header, body = rows[0], rows[1:]
    return header, body


def parse_cell(cell):
    cell = cell.strip().rstrip("%")
    try:
        return float(cell)
    except ValueError:
        return None


def ascii_plot(header, body):
    width = 40
    values = []
    for row in body:
        for cell in row[1:]:
            v = parse_cell(cell)
            if v is not None:
                values.append(v)
    if not values:
        print("  (no numeric data)")
        return
    peak = max(values)
    for row in body:
        print(f"  {row[0]}")
        for name, cell in zip(header[1:], row[1:]):
            v = parse_cell(cell)
            if v is None:
                continue
            bar = "#" * max(1, int(v / peak * width))
            print(f"    {name:<12} {bar} {cell}")


def matplotlib_plot(header, body, out_path):
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    labels = [row[0] for row in body]
    series = header[1:]
    fig, ax = plt.subplots(figsize=(max(8, len(labels)), 4))
    group_width = 0.8
    bar_width = group_width / max(1, len(series))
    for s_idx, s_name in enumerate(series):
        xs, ys = [], []
        for r_idx, row in enumerate(body):
            v = parse_cell(row[1 + s_idx]) if 1 + s_idx < len(row) else None
            if v is None:
                continue
            xs.append(r_idx - group_width / 2 + (s_idx + 0.5) * bar_width)
            ys.append(v)
        ax.bar(xs, ys, width=bar_width * 0.9, label=s_name)
    ax.set_xticks(range(len(labels)))
    ax.set_xticklabels(labels, rotation=45, ha="right")
    ax.legend(fontsize=8)
    ax.set_title(Path(out_path).stem)
    fig.tight_layout()
    fig.savefig(out_path, dpi=140)
    print(f"wrote {out_path}")


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 1
    for arg in sys.argv[1:]:
        header, body = read(arg)
        print(f"=== {arg} ===")
        try:
            matplotlib_plot(header, body, str(Path(arg).with_suffix(".png")))
        except ImportError:
            ascii_plot(header, body)
    return 0


if __name__ == "__main__":
    sys.exit(main())
