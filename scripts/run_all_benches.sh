#!/usr/bin/env bash
# Runs every figure/table/ablation bench sequentially and tees the combined
# output. Usage: scripts/run_all_benches.sh [outfile] [extra bench args...]
# e.g. scripts/run_all_benches.sh bench_output.txt --quick
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-bench_output.txt}"
shift || true

{
  for b in build/bench/bench_*; do
    name="$(basename "$b")"
    echo "### $name"
    if [ "$name" = bench_micro_components ]; then
      "$b" --benchmark_min_time=0.05s
    else
      "$b" --quiet "$@"
    fi
    echo
  done
} 2>&1 | tee "$out"
