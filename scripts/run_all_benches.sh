#!/usr/bin/env bash
# Runs every figure/table/ablation bench sequentially and tees the combined
# output. Usage: scripts/run_all_benches.sh [outfile] [extra bench args...]
# e.g. scripts/run_all_benches.sh bench_output.txt --quick --jobs=4
#
# Extra args are passed to every figure/table bench; --jobs=N runs each
# bench's simulations on N worker threads (tables are byte-identical for any
# N, so parallelism is purely a wall-clock lever). The micro-benchmarks
# take their own flags and are special-cased.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-bench_output.txt}"
shift || true

{
  for b in build/bench/bench_*; do
    name="$(basename "$b")"
    echo "### $name"
    if [ "$name" = bench_micro_components ]; then
      # google-benchmark >= 1.8 wants a unit suffix; older versions reject it.
      "$b" --benchmark_min_time=0.05s 2>/dev/null ||
        "$b" --benchmark_min_time=0.05
    elif [ "$name" = bench_micro_event_queue ]; then
      "$b" --events=5000000
    elif [ "$name" = bench_micro_vault_wake ]; then
      "$b"
    else
      "$b" --quiet "$@"
    fi
    echo
  done
} 2>&1 | tee "$out"
