#!/usr/bin/env python3
"""CI gate for the observability exports.

Usage:
  scripts/check_obs_exports.py STATS_JSON TRACE_JSON

Validates that a bench's --stats-json document is well-formed and complete
(config, table, per-run results with the latency breakdown, no wall-clock
fields) and that its --trace-out document is a loadable Chrome trace with
spans from every instrumented component. Exits non-zero with a message on
the first violation.
"""
import json
import sys

# Stage names per instrumented component (see docs/observability.md). A
# trace must contain at least one span from each component family.
COMPONENT_STAGES = {
    "host_controller": {"host_read", "host_queue"},
    "serial_link": {"link_down", "link_up"},
    "crossbar": {"xbar_down", "xbar_up"},
    "vault_controller": {"vault_queue", "buffer_hit"},
    "dram_bank": {"bank_act", "bank_pre", "bank_service", "row_fetch"},
    "prefetch_buffer": {"pf_insert", "pf_evict"},
}

LATENCY_STAGES = {
    "host_queue", "link_down", "link_up", "vault_queue", "bank_service",
    "buffer_hit", "total_read",
}


def fail(msg):
    print(f"check_obs_exports: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_stats(path):
    with open(path) as f:
        doc = json.load(f)
    for key in ("bench", "config", "table", "runs"):
        if key not in doc:
            fail(f"{path}: missing top-level key {key!r}")
    table = doc["table"]
    if not table.get("headers") or not table.get("rows"):
        fail(f"{path}: table must have non-empty headers and rows")
    if not doc["runs"]:
        fail(f"{path}: no runs exported")
    for run in doc["runs"]:
        results = run.get("results", {})
        latency = results.get("latency")
        if latency is None:
            fail(f"{path}: run {run.get('name')} has no latency breakdown")
        if set(latency) != LATENCY_STAGES:
            fail(f"{path}: run {run.get('name')} latency stages "
                 f"{sorted(latency)} != {sorted(LATENCY_STAGES)}")
        if latency["total_read"]["count"] == 0:
            fail(f"{path}: run {run.get('name')} measured no reads")
    if "wall_seconds" in json.dumps(doc):
        fail(f"{path}: wall-clock leaked into a deterministic export")
    print(f"check_obs_exports: {path} OK ({len(doc['runs'])} runs)")


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not events:
        fail(f"{path}: no traceEvents")
    stages = {e["name"] for e in events if e.get("cat") == "camps"}
    for component, expected in COMPONENT_STAGES.items():
        if not stages & expected:
            fail(f"{path}: no spans from {component} "
                 f"(expected one of {sorted(expected)})")
    print(f"check_obs_exports: {path} OK "
          f"({len(events)} events, {len(stages)} stages)")


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    check_stats(sys.argv[1])
    check_trace(sys.argv[2])
    return 0


if __name__ == "__main__":
    sys.exit(main())
