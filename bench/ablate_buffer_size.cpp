// Ablation: prefetch buffer capacity (paper fixes 16 KB = 16 rows/vault).
// Sweeps 4..64 entries for CAMPS and CAMPS-MOD; the gap between the two
// replacement policies narrows as capacity pressure disappears.
#include "bench_common.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace camps;
  const auto cfg = bench::parse_args(argc, argv);
  bench::print_banner("Ablation: prefetch buffer entries per vault",
                      "paper fixes 16 x 1 KB (Table I)", cfg);

  const std::string workload = "MX2";
  auto base_cfg = cfg.system_config(prefetch::SchemeKind::kBase);
  const double base_ipc =
      system::make_workload_system(base_cfg, workload)->run().geomean_ipc;

  exp::Table table({"entries", "CAMPS speedup", "CAMPS-MOD speedup",
                    "CAMPS-MOD buffer hits", "CAMPS-MOD accuracy"});
  for (u32 entries : {4u, 8u, 16u, 32u, 64u}) {
    std::vector<std::string> row{std::to_string(entries)};
    u64 hits = 0;
    double acc = 0.0;
    for (auto scheme :
         {prefetch::SchemeKind::kCamps, prefetch::SchemeKind::kCampsMod}) {
      auto sys_cfg = cfg.system_config(scheme);
      sys_cfg.hmc.vault.buffer.entries = entries;
      const auto r = system::make_workload_system(sys_cfg, workload)->run();
      row.push_back(exp::Table::fmt(r.geomean_ipc / base_ipc));
      if (scheme == prefetch::SchemeKind::kCampsMod) {
        hits = r.buffer_hits;
        acc = r.prefetch_accuracy;
      }
    }
    row.push_back(std::to_string(hits));
    row.push_back(exp::Table::pct(acc));
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_string().c_str());
  bench::maybe_write_csv(table);
  return 0;
}
