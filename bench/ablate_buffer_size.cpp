// Ablation: prefetch buffer capacity (paper fixes 16 KB = 16 rows/vault).
// Sweeps 4..64 entries for CAMPS and CAMPS-MOD; the gap between the two
// replacement policies narrows as capacity pressure disappears.

#include <string>
#include <vector>
#include "bench_common.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace camps;
  const auto cfg = bench::parse_args(argc, argv);
  bench::print_banner("Ablation: prefetch buffer entries per vault",
                      "paper fixes 16 x 1 KB (Table I)", cfg);

  const std::string workload = "MX2";
  const std::vector<u32> sizes = {4, 8, 16, 32, 64};
  const std::vector<prefetch::SchemeKind> schemes = {
      prefetch::SchemeKind::kCamps, prefetch::SchemeKind::kCampsMod};

  std::vector<std::pair<system::SystemConfig, std::string>> sims;
  sims.emplace_back(cfg.system_config(prefetch::SchemeKind::kBase), workload);
  for (u32 entries : sizes) {
    for (auto scheme : schemes) {
      auto sys_cfg = cfg.system_config(scheme);
      sys_cfg.hmc.vault.buffer.entries = entries;
      sims.emplace_back(sys_cfg, workload);
    }
  }
  const auto results = bench::run_sims(cfg, sims);
  const double base_ipc = results[0].geomean_ipc;

  exp::Table table({"entries", "CAMPS speedup", "CAMPS-MOD speedup",
                    "CAMPS-MOD buffer hits", "CAMPS-MOD accuracy"});
  size_t next = 1;
  for (u32 entries : sizes) {
    std::vector<std::string> row{std::to_string(entries)};
    u64 hits = 0;
    double acc = 0.0;
    for (auto scheme : schemes) {
      const auto& r = results[next++];
      row.push_back(exp::Table::fmt(r.geomean_ipc / base_ipc));
      if (scheme == prefetch::SchemeKind::kCampsMod) {
        hits = r.buffer_hits;
        acc = r.prefetch_accuracy;
      }
    }
    row.push_back(std::to_string(hits));
    row.push_back(exp::Table::pct(acc));
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_string().c_str());
  bench::maybe_write_csv(table);
  const auto named = bench::named_results(sims, results);
  bench::maybe_write_stats_json("ablate_buffer_size", cfg, named, table);
  bench::maybe_write_trace(named);
  return 0;
}
