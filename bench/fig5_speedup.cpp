// Figure 5: normalized performance (geomean IPC, BASE = 1) of BASE,
// BASE-HIT, MMD, CAMPS, CAMPS-MOD over the twelve Table II workloads.
//
// Paper headline: CAMPS-MOD +17.9% vs BASE, +16.8% vs BASE-HIT, +8.7% vs
// MMD on average; per class +24.9% (HM), +9.4% (LM), +19.6% (MX) vs BASE.

#include <string>
#include <vector>
#include "bench_common.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace camps;
  const auto cfg = bench::parse_args(argc, argv);
  bench::print_banner(
      "Figure 5: normalized speedup over BASE",
      "CAMPS-MOD avg +17.9% vs BASE, +16.8% vs BASE-HIT, +8.7% vs MMD", cfg);
  exp::Runner runner(cfg);

  const auto schemes = prefetch::paper_schemes();
  runner.run_all(exp::Runner::all_workloads(), schemes);
  exp::Table table(
      {"workload", "BASE", "BASE-HIT", "MMD", "CAMPS", "CAMPS-MOD"});
  for (const auto& w : exp::Runner::all_workloads()) {
    std::vector<std::string> row{w};
    for (auto scheme : schemes) {
      row.push_back(exp::Table::fmt(
          runner.speedup(w, scheme, prefetch::SchemeKind::kBase)));
    }
    table.add_row(std::move(row));
  }
  // Class and overall geometric means (the paper's quoted aggregates).
  for (auto cls : {workload::WorkloadClass::kHM, workload::WorkloadClass::kLM,
                   workload::WorkloadClass::kMX}) {
    std::vector<std::string> row{std::string(workload::to_string(cls)) +
                                 "-avg"};
    for (auto scheme : schemes) {
      row.push_back(exp::Table::fmt(runner.mean_speedup(
          exp::Runner::workloads_of(cls), scheme,
          prefetch::SchemeKind::kBase)));
    }
    table.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"AVG"};
    for (auto scheme : schemes) {
      row.push_back(exp::Table::fmt(runner.mean_speedup(
          exp::Runner::all_workloads(), scheme, prefetch::SchemeKind::kBase)));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_string().c_str());
  bench::maybe_write_csv(table);
  bench::maybe_write_stats_json("fig5_speedup", runner, table);
  bench::maybe_write_trace(runner);

  const double avg = runner.mean_speedup(exp::Runner::all_workloads(),
                                         prefetch::SchemeKind::kCampsMod,
                                         prefetch::SchemeKind::kBase);
  const double vs_mmd = avg / runner.mean_speedup(exp::Runner::all_workloads(),
                                                  prefetch::SchemeKind::kMmd,
                                                  prefetch::SchemeKind::kBase);
  std::printf(
      "\nmeasured: CAMPS-MOD %+.1f%% vs BASE (paper +17.9%%), %+.1f%% vs MMD "
      "(paper +8.7%%)\n",
      (avg - 1.0) * 100.0, (vs_mmd - 1.0) * 100.0);
  bench::report_timing(runner);
  return 0;
}
