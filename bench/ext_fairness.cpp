// Extension experiment (not in the paper): multiprogramming fairness.
// The paper reports geomean IPC (Fig. 5); the multiprogramming literature
// also asks whether a scheme's gains come at some co-runner's expense.
// Weighted speedup (throughput in jobs' worth of progress) and harmonic
// speedup (throughput-fairness balance) both use per-benchmark solo runs
// as the denominator.

#include <string>
#include <vector>
#include "bench_common.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace camps;
  const auto cfg = bench::parse_args(argc, argv);
  bench::print_banner("Extension: weighted / harmonic speedup",
                      "extension — fairness view of Fig. 5's gains", cfg);
  exp::Runner runner(cfg);

  const std::vector<prefetch::SchemeKind> schemes = {
      prefetch::SchemeKind::kBase, prefetch::SchemeKind::kMmd,
      prefetch::SchemeKind::kCampsMod};
  const std::vector<std::string> workloads = {"HM2", "HM3", "LM2", "MX1",
                                              "MX2"};
  // Front-load the whole sweep: the mix runs plus every distinct
  // (benchmark, scheme) solo run the fairness denominators need.
  std::vector<exp::Runner::Job> jobs;
  for (const auto& w : workloads) {
    for (auto scheme : schemes) {
      jobs.push_back({w, scheme, false});
      for (u32 c = 0; c < workload::kCoresPerWorkload; ++c) {
        jobs.push_back({workload::workload(w).benchmarks[c], scheme, true});
      }
    }
  }
  runner.run_all(jobs);
  exp::Table table({"workload", "WS BASE", "WS MMD", "WS CAMPS-MOD",
                    "HS BASE", "HS MMD", "HS CAMPS-MOD"});
  for (const auto& w : workloads) {
    std::vector<std::string> row{w};
    for (auto scheme : schemes) {
      row.push_back(exp::Table::fmt(runner.weighted_speedup(w, scheme), 2));
    }
    for (auto scheme : schemes) {
      row.push_back(exp::Table::fmt(runner.harmonic_speedup(w, scheme), 2));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_string().c_str());
  bench::maybe_write_csv(table);
  bench::maybe_write_stats_json("ext_fairness", runner, table);
  bench::maybe_write_trace(runner);
  std::printf(
      "\nWS: weighted speedup, max %u (every job at solo speed).\n"
      "HS: harmonic speedup, penalizes unfairness.\n",
      workload::kCoresPerWorkload);
  bench::report_timing(runner);
  return 0;
}
