// Figure 7: prefetching accuracy — of all rows prefetched into the buffer,
// the fraction whose data was actually demanded afterwards.
//
// Paper headline: CAMPS-MOD 70.5% on average, beating BASE by 33.3, BASE-HIT
// by 28.4 and MMD by 4.1 percentage points; plain CAMPS sits slightly
// (~1.5pp) below MMD.

#include <map>
#include <string>
#include <vector>
#include "bench_common.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace camps;
  const auto cfg = bench::parse_args(argc, argv);
  bench::print_banner("Figure 7: prefetching accuracy",
                      "CAMPS-MOD 70.5% avg; +33.3pp vs BASE, +4.1pp vs MMD",
                      cfg);
  exp::Runner runner(cfg);

  const auto schemes = prefetch::paper_schemes();
  runner.run_all(exp::Runner::all_workloads(), schemes);
  exp::Table table(
      {"workload", "BASE", "BASE-HIT", "MMD", "CAMPS", "CAMPS-MOD"});
  std::map<prefetch::SchemeKind, double> sums;
  for (const auto& w : exp::Runner::all_workloads()) {
    std::vector<std::string> row{w};
    for (auto scheme : schemes) {
      const double acc = runner.result(w, scheme).prefetch_accuracy;
      sums[scheme] += acc;
      row.push_back(exp::Table::pct(acc));
    }
    table.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"AVG"};
    for (auto scheme : schemes) {
      row.push_back(exp::Table::pct(sums[scheme] / 12.0));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_string().c_str());
  bench::maybe_write_csv(table);
  bench::maybe_write_stats_json("fig7_accuracy", runner, table);
  bench::maybe_write_trace(runner);
  std::printf(
      "\nmeasured averages: BASE %.1f%%, BASE-HIT %.1f%%, MMD %.1f%%, CAMPS "
      "%.1f%%, CAMPS-MOD %.1f%%\n",
      sums[prefetch::SchemeKind::kBase] / 12.0 * 100,
      sums[prefetch::SchemeKind::kBaseHit] / 12.0 * 100,
      sums[prefetch::SchemeKind::kMmd] / 12.0 * 100,
      sums[prefetch::SchemeKind::kCamps] / 12.0 * 100,
      sums[prefetch::SchemeKind::kCampsMod] / 12.0 * 100);
  bench::report_timing(runner);
  return 0;
}
