// Table II: the twelve eight-core SPEC CPU2006 workload mixes, printed from
// the live registry, plus the measured per-workload MPKI classification so
// the synthetic substitution can be audited against the paper's HM/LM
// definition (HM: MPKI >= 20; LM: 1 <= MPKI < 20).

#include <string>
#include "bench_common.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace camps;
  auto cfg = bench::parse_args(argc, argv);
  bench::print_banner("Table II: SPEC CPU2006 benchmark sets",
                      "12 workloads: HM1-4 (MPKI>=20), LM1-4 (1<=MPKI<20), "
                      "MX1-4 (four HM + four LM)",
                      cfg);
  exp::Runner runner(cfg);
  runner.run_all(exp::Runner::all_workloads(), {prefetch::SchemeKind::kNone});

  exp::Table table({"ID", "class", "benchmarks", "measured MPKI"});
  for (const auto& w : workload::table2_workloads()) {
    std::string names;
    for (u32 c = 0; c < workload::kCoresPerWorkload; ++c) {
      if (c) names += ", ";
      names += w.benchmarks[c];
    }
    const double mpki =
        runner.result(w.id, prefetch::SchemeKind::kNone).mpki;
    table.add_row({w.id, workload::to_string(w.cls), names,
                   exp::Table::fmt(mpki, 1)});
  }
  std::printf("%s", table.to_string().c_str());
  bench::maybe_write_csv(table);
  bench::maybe_write_stats_json("table2_workloads", runner, table);
  bench::maybe_write_trace(runner);
  bench::report_timing(runner);
  return 0;
}
