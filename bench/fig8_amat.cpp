// Figure 8: reduction in average memory access time (AMAT) relative to
// BASE, for MMD and CAMPS-MOD (higher reduction is better).
//
// Paper headline: CAMPS-MOD reduces AMAT by 26% vs BASE and is 16.3% ahead
// of MMD on this metric.
#include "bench_common.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace camps;
  const auto cfg = bench::parse_args(argc, argv);
  bench::print_banner("Figure 8: AMAT reduction vs BASE",
                      "CAMPS-MOD -26% AMAT vs BASE; 16.3% better than MMD",
                      cfg);
  exp::Runner runner(cfg);
  runner.run_all(exp::Runner::all_workloads(),
                 {prefetch::SchemeKind::kBase, prefetch::SchemeKind::kMmd,
                  prefetch::SchemeKind::kCampsMod});

  exp::Table table({"workload", "BASE AMAT (cyc)", "MMD reduction",
                    "CAMPS-MOD reduction"});
  double mmd_sum = 0.0, cmod_sum = 0.0;
  for (const auto& w : exp::Runner::all_workloads()) {
    const double base =
        runner.result(w, prefetch::SchemeKind::kBase).amat_cycles;
    const double mmd = runner.result(w, prefetch::SchemeKind::kMmd).amat_cycles;
    const double cmod =
        runner.result(w, prefetch::SchemeKind::kCampsMod).amat_cycles;
    const double mmd_red = 1.0 - mmd / base;
    const double cmod_red = 1.0 - cmod / base;
    mmd_sum += mmd_red;
    cmod_sum += cmod_red;
    table.add_row({w, exp::Table::fmt(base, 1), exp::Table::pct(mmd_red),
                   exp::Table::pct(cmod_red)});
  }
  table.add_row({"AVG", "-", exp::Table::pct(mmd_sum / 12.0),
                 exp::Table::pct(cmod_sum / 12.0)});
  std::printf("%s", table.to_string().c_str());
  bench::maybe_write_csv(table);
  bench::maybe_write_stats_json("fig8_amat", runner, table);
  bench::maybe_write_trace(runner);
  std::printf(
      "\nmeasured: CAMPS-MOD AMAT reduction %.1f%% (paper 26%%), MMD %.1f%%\n",
      cmod_sum / 12.0 * 100.0, mmd_sum / 12.0 * 100.0);
  bench::report_timing(runner);
  return 0;
}
