// Extension experiment (not in the paper): fault-injection campaign.
// Re-runs the Table II workloads under CAMPS-MOD with a seeded CRC-error
// rate of 1e-4 per link transfer (plus a sprinkling of vault stalls) and
// reports what the recovery machinery cost: IPC delta against the
// fault-free run, faults injected vs recovered, and the recovery-latency
// tail. The campaign is deterministic — fault decisions are pure hashes of
// (seed, site, unit, sequence) — so the table and --stats-json output are
// byte-identical across --jobs values.

#include <string>
#include <utility>
#include <vector>
#include "bench_common.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace camps;
  const auto cfg = bench::parse_args(argc, argv);
  bench::print_banner("Extension: fault-injection campaign",
                      "extension — CAMPS-MOD under a CRC-1e-4 fault storm",
                      cfg);

  fault::FaultConfig campaign;
  campaign.link_crc_rate = 1e-4;
  campaign.vault_stall_rate = 1e-5;
  campaign.vault_degrade_threshold = 16;
  campaign.seed = cfg.seed;

  const auto workloads = exp::Runner::all_workloads();
  // Interleave clean/faulty per workload: run i*2 is the baseline, i*2+1
  // the campaign. run_sims (not Runner) because the cache cannot key on
  // the fault configuration.
  std::vector<std::pair<system::SystemConfig, std::string>> sims;
  for (const auto& w : workloads) {
    system::SystemConfig clean =
        cfg.system_config(prefetch::SchemeKind::kCampsMod);
    sims.emplace_back(clean, w);
    system::SystemConfig faulty = clean;
    faulty.hmc.fault = campaign;
    sims.emplace_back(faulty, w);
  }
  const auto results = bench::run_sims(cfg, sims);

  exp::Table table({"workload", "IPC clean", "IPC fault", "dIPC %",
                    "injected", "replays", "retries", "poisoned", "flushes",
                    "rec p95 cyc"});
  for (size_t i = 0; i < workloads.size(); ++i) {
    const auto& clean = results[i * 2];
    const auto& faulty = results[i * 2 + 1];
    const double dipc = clean.geomean_ipc > 0.0
                            ? (faulty.geomean_ipc / clean.geomean_ipc - 1.0) *
                                  100.0
                            : 0.0;
    table.add_row({workloads[i], exp::Table::fmt(clean.geomean_ipc, 3),
                   exp::Table::fmt(faulty.geomean_ipc, 3),
                   exp::Table::fmt(dipc, 2),
                   std::to_string(faulty.faults.injected()),
                   std::to_string(faulty.faults.replays),
                   std::to_string(faulty.faults.host_retries),
                   std::to_string(faulty.faults.host_poisoned),
                   std::to_string(faulty.faults.degrade_flushes),
                   exp::Table::fmt(faulty.faults.recovery.p95, 0)});
  }
  std::printf("%s", table.to_string().c_str());
  bench::maybe_write_csv(table);
  bench::maybe_write_stats_json("ext_faults", cfg,
                                bench::named_results(sims, results), table);
  bench::maybe_write_trace(bench::named_results(sims, results));
  std::printf(
      "\nEvery injected fault must reappear as a replay, retry, or poisoned\n"
      "completion; run with --audit to additionally check the recovery\n"
      "invariants (token conservation, RUT/CT hand-off) during the sweep.\n");
  return 0;
}
