// Ablation: BASE-HIT's queued-hit trigger (the paper uses 2). Higher
// triggers fetch less speculatively — fewer rows moved, higher accuracy,
// lower coverage.
#include "bench_common.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace camps;
  const auto cfg = bench::parse_args(argc, argv);
  bench::print_banner("Ablation: BASE-HIT queued-hit trigger",
                      "paper uses >= 2 read-queue hits (Section 5)", cfg);

  const std::string workload = "HM2";
  auto base_cfg = cfg.system_config(prefetch::SchemeKind::kBase);
  const double base_ipc =
      system::make_workload_system(base_cfg, workload)->run().geomean_ipc;

  exp::Table table(
      {"min hits", "speedup vs BASE", "prefetches", "accuracy", "buffer hits"});
  for (u32 trigger : {2u, 3u, 4u, 6u, 8u}) {
    auto sys_cfg = cfg.system_config(prefetch::SchemeKind::kBaseHit);
    sys_cfg.scheme_params.base_hit_min_hits = trigger;
    const auto r = system::make_workload_system(sys_cfg, workload)->run();
    table.add_row({std::to_string(trigger),
                   exp::Table::fmt(r.geomean_ipc / base_ipc),
                   std::to_string(r.prefetches),
                   exp::Table::pct(r.prefetch_accuracy),
                   std::to_string(r.buffer_hits)});
  }
  std::printf("%s", table.to_string().c_str());
  bench::maybe_write_csv(table);
  return 0;
}
