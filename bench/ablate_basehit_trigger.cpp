// Ablation: BASE-HIT's queued-hit trigger (the paper uses 2). Higher
// triggers fetch less speculatively — fewer rows moved, higher accuracy,
// lower coverage.

#include <string>
#include <vector>
#include "bench_common.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace camps;
  const auto cfg = bench::parse_args(argc, argv);
  bench::print_banner("Ablation: BASE-HIT queued-hit trigger",
                      "paper uses >= 2 read-queue hits (Section 5)", cfg);

  const std::string workload = "HM2";
  const std::vector<u32> triggers = {2, 3, 4, 6, 8};

  std::vector<std::pair<system::SystemConfig, std::string>> sims;
  sims.emplace_back(cfg.system_config(prefetch::SchemeKind::kBase), workload);
  for (u32 trigger : triggers) {
    auto sys_cfg = cfg.system_config(prefetch::SchemeKind::kBaseHit);
    sys_cfg.scheme_params.base_hit_min_hits = trigger;
    sims.emplace_back(sys_cfg, workload);
  }
  const auto results = bench::run_sims(cfg, sims);
  const double base_ipc = results[0].geomean_ipc;

  exp::Table table(
      {"min hits", "speedup vs BASE", "prefetches", "accuracy", "buffer hits"});
  for (size_t i = 0; i < triggers.size(); ++i) {
    const auto& r = results[i + 1];
    table.add_row({std::to_string(triggers[i]),
                   exp::Table::fmt(r.geomean_ipc / base_ipc),
                   std::to_string(r.prefetches),
                   exp::Table::pct(r.prefetch_accuracy),
                   std::to_string(r.buffer_hits)});
  }
  std::printf("%s", table.to_string().c_str());
  bench::maybe_write_csv(table);
  const auto named = bench::named_results(sims, results);
  bench::maybe_write_stats_json("ablate_basehit_trigger", cfg, named, table);
  bench::maybe_write_trace(named);
  return 0;
}
