// Extension experiment (not in the paper): STREAM — a vault-side adaptation
// of adaptive stream detection (Hur & Lin, MICRO 2006, the paper's related
// work) — against CAMPS-MOD across the three workload classes. Stream
// detection tracks CAMPS on streaming-heavy mixes but cannot touch
// conflict-dominated traffic, which is precisely the behaviour gap the
// paper's Conflict Table closes.

#include <string>
#include <vector>
#include "bench_common.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace camps;
  const auto cfg = bench::parse_args(argc, argv);
  bench::print_banner("Extension: STREAM vs CAMPS-MOD",
                      "extension — quantifies the conflict-awareness gap",
                      cfg);
  exp::Runner runner(cfg);

  const std::vector<prefetch::SchemeKind> schemes = {
      prefetch::SchemeKind::kStream, prefetch::SchemeKind::kCamps,
      prefetch::SchemeKind::kCampsMod};
  auto warm = schemes;
  warm.push_back(prefetch::SchemeKind::kBase);
  runner.run_all(exp::Runner::all_workloads(), warm);
  exp::Table table({"workload", "STREAM", "CAMPS", "CAMPS-MOD",
                    "STREAM accuracy", "CAMPS-MOD accuracy"});
  for (const auto& w : exp::Runner::all_workloads()) {
    std::vector<std::string> row{w};
    for (auto scheme : schemes) {
      row.push_back(exp::Table::fmt(
          runner.speedup(w, scheme, prefetch::SchemeKind::kBase)));
    }
    row.push_back(exp::Table::pct(
        runner.result(w, prefetch::SchemeKind::kStream).prefetch_accuracy));
    row.push_back(exp::Table::pct(
        runner.result(w, prefetch::SchemeKind::kCampsMod).prefetch_accuracy));
    table.add_row(std::move(row));
  }
  for (auto cls : {workload::WorkloadClass::kHM, workload::WorkloadClass::kLM,
                   workload::WorkloadClass::kMX}) {
    std::vector<std::string> row{std::string(workload::to_string(cls)) +
                                 "-avg"};
    for (auto scheme : schemes) {
      row.push_back(exp::Table::fmt(runner.mean_speedup(
          exp::Runner::workloads_of(cls), scheme,
          prefetch::SchemeKind::kBase)));
    }
    row.push_back("-");
    row.push_back("-");
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_string().c_str());
  bench::maybe_write_csv(table);
  bench::maybe_write_stats_json("ext_stream", runner, table);
  bench::maybe_write_trace(runner);
  bench::report_timing(runner);
  return 0;
}
