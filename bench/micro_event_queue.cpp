// Event-queue microbenchmark: the seed implementation (binary heap of fat
// entries holding std::function) vs the current one (SBO Event + index heap
// over a slab), measured as steady-state dispatched events per second.
//
// The workload models the simulator's hot loop: a queue holding ~depth
// pending events where every popped handler schedules a successor at a
// pseudo-random future time, with a capture the size of the vault
// controller's completion callbacks (48 bytes).
//
// Usage: bench_micro_event_queue [--events=N] [--depth=N] [--json=FILE]
// The JSON artifact records both events/sec numbers plus the ratio, so the
// speedup is a recorded measurement, not an assertion.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"

namespace camps::bench_eq {

// --- Faithful replica of the seed event queue -------------------------------

using LegacyFn = std::function<void()>;

class LegacyQueue {
 public:
  void schedule(Tick when, LegacyFn fn) {
    heap_.push_back(Entry{when, next_seq_++, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }
  bool empty() const { return heap_.empty(); }
  std::pair<Tick, LegacyFn> pop() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    return {e.when, std::move(e.fn)};
  }

 private:
  struct Entry {
    Tick when;
    u64 seq;
    LegacyFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  std::vector<Entry> heap_;
  u64 next_seq_ = 0;
};

// --- Workload ---------------------------------------------------------------

struct Lcg {
  u64 x = 0x9e3779b97f4a7c15ULL;
  u64 next() {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    return x >> 24;
  }
};

/// Matches the vault controller's completion captures: this + five scalars.
struct HotCapture {
  u64* sink;
  u64 a, b, c, d, e;
  void operator()() const { *sink += a + b + c + d + e; }
};

template <typename Queue>
double measure_events_per_sec(u64 events, u64 depth) {
  Queue q;
  Lcg rng;
  u64 sink = 0;
  Tick now = 0;
  for (u64 i = 0; i < depth; ++i) {
    q.schedule(rng.next() % 1024,
               HotCapture{&sink, i, i + 1, i + 2, i + 3, i + 4});
  }
  const auto start = std::chrono::steady_clock::now();
  for (u64 done = 0; done < events; ++done) {
    auto [when, fn] = q.pop();
    now = when;
    fn();
    q.schedule(now + 1 + rng.next() % 512,
               HotCapture{&sink, done, done + 1, done + 2, done + 3, done + 4});
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // Keep `sink` live so the handlers aren't optimized away.
  if (sink == 0xdeadbeef) std::fprintf(stderr, "impossible\n");
  return secs > 0 ? static_cast<double>(events) / secs : 0.0;
}

}  // namespace camps::bench_eq

int main(int argc, char** argv) {
  using namespace camps;
  using namespace camps::bench_eq;

  u64 events = 20'000'000;
  u64 depth = 512;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--events=", 0) == 0) {
      events = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--depth=", 0) == 0) {
      depth = std::strtoull(arg.c_str() + 8, nullptr, 10);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--events=N] [--depth=N] [--json=FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("=== event queue microbenchmark ===\n");
  std::printf("%llu events at steady-state depth %llu, 48-byte captures\n\n",
              static_cast<unsigned long long>(events),
              static_cast<unsigned long long>(depth));

  // Interleave a warmup round before each timed round so neither side
  // benefits from allocator/cache warmup order.
  measure_events_per_sec<LegacyQueue>(events / 10, depth);
  const double legacy = measure_events_per_sec<LegacyQueue>(events, depth);
  measure_events_per_sec<sim::EventQueue>(events / 10, depth);
  const u64 spills_before = sim::Event::heap_allocation_count();
  const double sbo = measure_events_per_sec<sim::EventQueue>(events, depth);
  const u64 spills = sim::Event::heap_allocation_count() - spills_before;

  std::printf("seed queue (std::function + fat-entry heap): %8.2f Mevents/s\n",
              legacy / 1e6);
  std::printf("SBO event + index heap over slab:            %8.2f Mevents/s\n",
              sbo / 1e6);
  std::printf("speedup: %.2fx   heap spills in SBO run: %llu\n", sbo / legacy,
              static_cast<unsigned long long>(spills));

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"events\": %llu,\n"
                 "  \"depth\": %llu,\n"
                 "  \"seed_events_per_sec\": %.0f,\n"
                 "  \"sbo_events_per_sec\": %.0f,\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"sbo_heap_spills\": %llu\n"
                 "}\n",
                 static_cast<unsigned long long>(events),
                 static_cast<unsigned long long>(depth), legacy, sbo,
                 sbo / legacy, static_cast<unsigned long long>(spills));
    std::fclose(f);
    std::fprintf(stderr, "json written to %s\n", json_path.c_str());
  }
  return 0;
}
