// Ablation: physical address mapping. Table I fixes RoRaBaVaCo; this sweep
// shows why: the fine vault-interleaved map destroys row locality (the
// row-granularity prefetcher has nothing to harvest), while putting bank
// bits lowest concentrates streams in one bank.

#include <string>
#include <vector>
#include "bench_common.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace camps;
  const auto cfg = bench::parse_args(argc, argv);
  bench::print_banner("Ablation: address mapping",
                      "paper fixes RoRaBaVaCo (Table I)", cfg);

  struct MapCase {
    const char* name;
    hmc::FieldOrder order;
  };
  const std::vector<MapCase> maps = {
      {"RoRaBaVaCo (paper)", hmc::kRoRaBaVaCo},
      {"RoBaRaCoVa (line-interleave)", hmc::kRoBaRaCoVa},
      {"RoVaRaCoBa (bank-lowest)", hmc::kRoVaRaCoBa},
  };

  const std::string workload = "MX2";
  std::vector<std::pair<system::SystemConfig, std::string>> sims;
  for (const auto& m : maps) {
    auto none_cfg = cfg.system_config(prefetch::SchemeKind::kNone);
    none_cfg.hmc.field_order = m.order;
    sims.emplace_back(none_cfg, workload);
    auto cmod_cfg = cfg.system_config(prefetch::SchemeKind::kCampsMod);
    cmod_cfg.hmc.field_order = m.order;
    sims.emplace_back(cmod_cfg, workload);
  }
  const auto results = bench::run_sims(cfg, sims);

  exp::Table table({"mapping", "NONE IPC", "CAMPS-MOD IPC", "speedup",
                    "conflict rate", "pf accuracy"});
  size_t next = 0;
  for (const auto& m : maps) {
    const auto& none = results[next++];
    const auto& cmod = results[next++];
    table.add_row({m.name, exp::Table::fmt(none.geomean_ipc),
                   exp::Table::fmt(cmod.geomean_ipc),
                   exp::Table::fmt(cmod.geomean_ipc / none.geomean_ipc),
                   exp::Table::pct(cmod.row_conflict_rate),
                   exp::Table::pct(cmod.prefetch_accuracy)});
  }
  std::printf("%s", table.to_string().c_str());
  bench::maybe_write_csv(table);
  const auto named = bench::named_results(sims, results);
  bench::maybe_write_stats_json("ablate_addrmap", cfg, named, table);
  bench::maybe_write_trace(named);
  return 0;
}
