// Figure 6: row-buffer conflict rate per scheme (lower is better). BASE is
// excluded, as in the paper: it precharges after every copy, so it has no
// conflicts by construction (we print it anyway as a sanity row).
//
// Paper headline: CAMPS-MOD reduces conflicts by 16.3% vs BASE-HIT and
// 13.6% vs MMD on average.

#include <map>
#include <string>
#include <vector>
#include "bench_common.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace camps;
  const auto cfg = bench::parse_args(argc, argv);
  bench::print_banner(
      "Figure 6: row-buffer conflict rate",
      "CAMPS-MOD conflicts -16.3% vs BASE-HIT, -13.6% vs MMD", cfg);
  exp::Runner runner(cfg);

  const std::vector<prefetch::SchemeKind> schemes = {
      prefetch::SchemeKind::kBaseHit, prefetch::SchemeKind::kMmd,
      prefetch::SchemeKind::kCamps, prefetch::SchemeKind::kCampsMod};
  auto warm = schemes;
  warm.push_back(prefetch::SchemeKind::kBase);
  runner.run_all(exp::Runner::all_workloads(), warm);
  exp::Table table({"workload", "BASE-HIT", "MMD", "CAMPS", "CAMPS-MOD",
                    "BASE (sanity)"});
  std::map<prefetch::SchemeKind, double> conflict_sums;
  for (const auto& w : exp::Runner::all_workloads()) {
    std::vector<std::string> row{w};
    for (auto scheme : schemes) {
      const double rate = runner.result(w, scheme).row_conflict_rate;
      conflict_sums[scheme] += rate;
      row.push_back(exp::Table::pct(rate));
    }
    row.push_back(exp::Table::pct(
        runner.result(w, prefetch::SchemeKind::kBase).row_conflict_rate));
    table.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"AVG"};
    for (auto scheme : schemes) {
      row.push_back(exp::Table::pct(conflict_sums[scheme] / 12.0));
    }
    row.push_back("-");
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_string().c_str());
  bench::maybe_write_csv(table);
  bench::maybe_write_stats_json("fig6_conflicts", runner, table);
  bench::maybe_write_trace(runner);

  const double cmod = conflict_sums[prefetch::SchemeKind::kCampsMod];
  const double bh = conflict_sums[prefetch::SchemeKind::kBaseHit];
  const double mmd = conflict_sums[prefetch::SchemeKind::kMmd];
  std::printf(
      "\nmeasured: CAMPS-MOD conflict rate %+.1f%% vs BASE-HIT (paper "
      "-16.3%%), %+.1f%% vs MMD (paper -13.6%%)\n",
      (cmod / bh - 1.0) * 100.0, (cmod / mmd - 1.0) * 100.0);
  bench::report_timing(runner);
  return 0;
}
