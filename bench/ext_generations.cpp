// Extension experiment (not in the paper): how CAMPS's benefit scales with
// the cube generation (vault-level parallelism and link speed), and what
// link power management (the paper's reference [13]) costs under each
// scheme.

#include <string>
#include <vector>
#include "bench_common.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace camps;
  const auto cfg = bench::parse_args(argc, argv);
  bench::print_banner("Extension: HMC generation + link power management",
                      "extension — gen1 (16 vaults) vs gen2 (32 vaults), "
                      "link PM on/off",
                      cfg);

  struct Variant {
    const char* name;
    bool gen1;
    bool link_pm;
  };
  const std::vector<Variant> variants = {
      {"gen2 (Table I)", false, false},
      {"gen2 + link PM", false, true},
      {"gen1", true, false},
      {"gen1 + link PM", true, true},
  };

  const std::vector<std::string> workloads = {"HM2", "LM2"};
  const std::vector<prefetch::SchemeKind> schemes = {
      prefetch::SchemeKind::kNone, prefetch::SchemeKind::kCampsMod};

  std::vector<std::pair<system::SystemConfig, std::string>> sims;
  for (const auto& workload : workloads) {
    for (const auto& v : variants) {
      for (auto scheme : schemes) {
        system::SystemConfig sys_cfg =
            v.gen1 ? system::hmc_gen1_config(scheme)
                   : system::table1_config(scheme);
        sys_cfg.core.warmup_instructions = cfg.warmup_instructions;
        sys_cfg.core.measure_instructions = cfg.measure_instructions;
        sys_cfg.seed = cfg.seed;
        sys_cfg.hmc.link.power_management = v.link_pm;
        sims.emplace_back(sys_cfg, workload);
      }
    }
  }
  const auto results = bench::run_sims(cfg, sims);

  exp::Table table({"variant", "scheme", "IPC", "mem lat (cyc)",
                    "link util up", "wakeups"});
  size_t next = 0;
  for (const auto& workload : workloads) {
    for (const auto& v : variants) {
      for (auto scheme : schemes) {
        const auto& r = results[next++];
        table.add_row({std::string(v.name) + " / " + workload,
                       prefetch::to_string(scheme),
                       exp::Table::fmt(r.geomean_ipc),
                       exp::Table::fmt(r.mem_latency_cycles, 1),
                       exp::Table::pct(r.link_up_utilization),
                       std::to_string(r.link_wakeups)});
      }
    }
  }
  std::printf("%s", table.to_string().c_str());
  bench::maybe_write_csv(table);
  const auto named = bench::named_results(sims, results);
  bench::maybe_write_stats_json("ext_generations", cfg, named, table);
  bench::maybe_write_trace(named);
  return 0;
}
