// Ablation: row-buffer page policy (Table I fixes open page). Closed page
// removes row-buffer conflicts at the price of losing row hits; CAMPS's
// selective fetch+precharge is effectively a *learned* middle ground, which
// this sweep makes visible.

#include <string>
#include <vector>
#include "bench_common.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace camps;
  const auto cfg = bench::parse_args(argc, argv);
  bench::print_banner("Ablation: page policy",
                      "paper fixes open page (Table I)", cfg);

  const std::vector<std::string> workloads = {"HM3", "MX2"};
  const std::vector<prefetch::SchemeKind> schemes = {
      prefetch::SchemeKind::kNone, prefetch::SchemeKind::kCampsMod};
  const std::vector<hmc::PagePolicy> policies = {hmc::PagePolicy::kOpen,
                                                 hmc::PagePolicy::kClosed};

  std::vector<std::pair<system::SystemConfig, std::string>> sims;
  for (const auto& workload : workloads) {
    for (auto scheme : schemes) {
      for (auto policy : policies) {
        auto sys_cfg = cfg.system_config(scheme);
        sys_cfg.hmc.vault.page_policy = policy;
        sims.emplace_back(sys_cfg, workload);
      }
    }
  }
  const auto results = bench::run_sims(cfg, sims);

  exp::Table table({"workload", "scheme", "policy", "IPC", "row hits",
                    "conflicts", "conflict rate"});
  size_t next = 0;
  for (const auto& workload : workloads) {
    for (auto scheme : schemes) {
      for (auto policy : policies) {
        const auto& r = results[next++];
        table.add_row({workload, prefetch::to_string(scheme),
                       policy == hmc::PagePolicy::kOpen ? "open" : "closed",
                       exp::Table::fmt(r.geomean_ipc),
                       std::to_string(r.row_hits),
                       std::to_string(r.row_conflicts),
                       exp::Table::pct(r.row_conflict_rate)});
      }
    }
  }
  std::printf("%s", table.to_string().c_str());
  bench::maybe_write_csv(table);
  const auto named = bench::named_results(sims, results);
  bench::maybe_write_stats_json("ablate_page_policy", cfg, named, table);
  bench::maybe_write_trace(named);
  return 0;
}
