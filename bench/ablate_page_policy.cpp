// Ablation: row-buffer page policy (Table I fixes open page). Closed page
// removes row-buffer conflicts at the price of losing row hits; CAMPS's
// selective fetch+precharge is effectively a *learned* middle ground, which
// this sweep makes visible.
#include "bench_common.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace camps;
  const auto cfg = bench::parse_args(argc, argv);
  bench::print_banner("Ablation: page policy",
                      "paper fixes open page (Table I)", cfg);

  exp::Table table({"workload", "scheme", "policy", "IPC", "row hits",
                    "conflicts", "conflict rate"});
  for (const std::string workload : {"HM3", "MX2"}) {
    for (auto scheme :
         {prefetch::SchemeKind::kNone, prefetch::SchemeKind::kCampsMod}) {
      for (auto policy : {hmc::PagePolicy::kOpen, hmc::PagePolicy::kClosed}) {
        auto sys_cfg = cfg.system_config(scheme);
        sys_cfg.hmc.vault.page_policy = policy;
        const auto r = system::make_workload_system(sys_cfg, workload)->run();
        table.add_row({workload, prefetch::to_string(scheme),
                       policy == hmc::PagePolicy::kOpen ? "open" : "closed",
                       exp::Table::fmt(r.geomean_ipc),
                       std::to_string(r.row_hits),
                       std::to_string(r.row_conflicts),
                       exp::Table::pct(r.row_conflict_rate)});
      }
    }
  }
  std::printf("%s", table.to_string().c_str());
  bench::maybe_write_csv(table);
  return 0;
}
