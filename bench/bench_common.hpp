// Shared command-line handling for the figure/table reproduction binaries.
//
// Every bench accepts:
//   --quick        five-times-smaller instruction budget (smoke runs)
//   --measure=N    detailed-window instructions per core
//   --warmup=N     warmup instructions per core
//   --seed=N       workload generation seed
//   --quiet        suppress per-run progress on stderr
//   --csv=FILE     additionally write the main table as CSV
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exp/runner.hpp"
#include "exp/table.hpp"

namespace camps::bench {

/// CSV output path from --csv= (empty if not requested).
inline std::string& csv_path() {
  static std::string path;
  return path;
}

/// Writes `table` to the --csv= path, if one was given.
inline void maybe_write_csv(const exp::Table& table) {
  if (!csv_path().empty()) {
    table.write_csv(csv_path());
    std::fprintf(stderr, "csv written to %s\n", csv_path().c_str());
  }
}

inline exp::ExperimentConfig parse_args(int argc, char** argv) {
  exp::ExperimentConfig cfg;
  cfg.warmup_instructions = 50'000;
  cfg.measure_instructions = 250'000;
  cfg.verbose = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      cfg.warmup_instructions /= 5;
      cfg.measure_instructions /= 5;
    } else if (arg.rfind("--measure=", 0) == 0) {
      cfg.measure_instructions = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--warmup=", 0) == 0) {
      cfg.warmup_instructions = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      cfg.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg == "--quiet") {
      cfg.verbose = false;
    } else if (arg.rfind("--csv=", 0) == 0) {
      csv_path() = arg.substr(6);
    } else if (arg == "--help") {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--measure=N] [--warmup=N] "
                   "[--seed=N] [--quiet] [--csv=FILE]\n",
                   argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n", arg.c_str());
      std::exit(2);
    }
  }
  return cfg;
}

inline void print_banner(const char* figure, const char* paper_headline,
                         const exp::ExperimentConfig& cfg) {
  std::printf("=== %s ===\n", figure);
  std::printf("paper: %s\n", paper_headline);
  std::printf("run: %llu warmup + %llu measured instructions/core, seed %llu\n\n",
              static_cast<unsigned long long>(cfg.warmup_instructions),
              static_cast<unsigned long long>(cfg.measure_instructions),
              static_cast<unsigned long long>(cfg.seed));
}

}  // namespace camps::bench
