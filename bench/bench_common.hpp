// Shared command-line handling for the figure/table reproduction binaries.
//
// Every bench accepts:
//   --quick        five-times-smaller instruction budget (smoke runs)
//   --measure=N    detailed-window instructions per core
//   --warmup=N     warmup instructions per core
//   --seed=N       workload generation seed
//   --audit        audit model invariants every 100000 events in every run
//   --jobs=N       worker threads for the sweep (0 = all hardware threads)
//   --quiet        suppress per-run progress on stderr
//   --csv=FILE     additionally write the main table as CSV
//   --stats-json=FILE  machine-readable results (config + table + per-run
//                  metrics; byte-identical across --jobs values)
//   --trace-out=FILE   Chrome trace-event JSON of per-request spans
//   --trace-cap=N  span ring-buffer capacity per run (default 16384)
//   --log-level=L  trace|debug|info|warn|error (default warn)
//
// Unknown flags are fatal: a typo like `--measure 1000` (missing '=') must
// not silently run the default budget and waste a full sweep.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "common/log.hpp"
#include "exp/runner.hpp"
#include "exp/table.hpp"
#include "obs/chrome_trace.hpp"

namespace camps::bench {

/// CSV output path from --csv= (empty if not requested).
inline std::string& csv_path() {
  static std::string path;
  return path;
}

/// Writes `table` to the --csv= path, if one was given.
inline void maybe_write_csv(const exp::Table& table) {
  if (!csv_path().empty()) {
    table.write_csv(csv_path());
    std::fprintf(stderr, "csv written to %s\n", csv_path().c_str());
  }
}

/// JSON output path from --stats-json= (empty if not requested).
inline std::string& stats_json_path() {
  static std::string path;
  return path;
}

/// Chrome-trace output path from --trace-out= (empty if not requested).
inline std::string& trace_out_path() {
  static std::string path;
  return path;
}

/// (label, results) pairs in the order the exporters should emit them.
using NamedResults =
    std::vector<std::pair<std::string, const system::RunResults*>>;

/// Every cached run of `runner`, labeled "workload/SCHEME", in the cache's
/// deterministic map order.
inline NamedResults named_results(const exp::Runner& runner) {
  NamedResults out;
  for (const auto& [key, res] : runner.results()) {
    out.emplace_back(key.first + "/" + prefetch::to_string(key.second), &res);
  }
  return out;
}

/// Labels hand-built run_sims() batches "workload/SCHEME@i" (the index
/// disambiguates ablation points reusing the same workload and scheme).
inline NamedResults named_results(
    const std::vector<std::pair<system::SystemConfig, std::string>>& sims,
    const std::vector<system::RunResults>& results) {
  NamedResults out;
  for (size_t i = 0; i < results.size() && i < sims.size(); ++i) {
    out.emplace_back(sims[i].second + "/" +
                         prefetch::to_string(sims[i].first.scheme) + "@" +
                         std::to_string(i),
                     &results[i]);
  }
  return out;
}

/// Writes the bench-level JSON document to the --stats-json= path, if one
/// was given. Layout: {"bench", "config", "table", "runs": [{"name",
/// "results"}...]}. Runs are emitted compactly (one line each) inside a
/// pretty-printed shell. Excludes wall-clock, so the file is byte-identical
/// across --jobs values.
inline void maybe_write_stats_json(const char* bench,
                                   const exp::ExperimentConfig& cfg,
                                   const NamedResults& runs,
                                   const exp::Table& table) {
  if (stats_json_path().empty()) return;
  JsonWriter w(2);
  w.begin_object();
  w.field("bench", bench);
  w.key("config");
  w.begin_object();
  w.field("warmup_instructions", cfg.warmup_instructions);
  w.field("measure_instructions", cfg.measure_instructions);
  w.field("seed", cfg.seed);
  w.end_object();
  w.key("table");
  w.raw(table.to_json(0));
  w.key("runs");
  w.begin_array();
  for (const auto& [name, res] : runs) {
    w.begin_object();
    w.field("name", name);
    w.key("results");
    w.raw(res->to_json(0));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  write_text_file(stats_json_path(), w.str() + "\n");
  std::fprintf(stderr, "stats json written to %s\n",
               stats_json_path().c_str());
}

inline void maybe_write_stats_json(const char* bench,
                                   const exp::Runner& runner,
                                   const exp::Table& table) {
  if (stats_json_path().empty()) return;
  maybe_write_stats_json(bench, runner.config(), named_results(runner), table);
}

/// Writes all runs' spans as one Chrome trace to the --trace-out= path, if
/// one was given (each run becomes a process in the viewer).
inline void maybe_write_trace(const NamedResults& runs) {
  if (trace_out_path().empty()) return;
  std::vector<obs::TraceRun> trace_runs;
  for (const auto& [name, res] : runs) {
    if (res->trace_spans == nullptr) continue;
    trace_runs.push_back(obs::TraceRun{name, res->trace_spans.get()});
  }
  obs::write_chrome_trace(trace_out_path(), trace_runs);
  std::fprintf(stderr, "trace written to %s (%zu runs)\n",
               trace_out_path().c_str(), trace_runs.size());
}

inline void maybe_write_trace(const exp::Runner& runner) {
  if (trace_out_path().empty()) return;
  maybe_write_trace(named_results(runner));
}

inline void print_usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--quick] [--measure=N] [--warmup=N] [--seed=N]\n"
               "          [--audit] [--jobs=N] [--quiet] [--csv=FILE]\n"
               "          [--stats-json=FILE] [--trace-out=FILE] "
               "[--trace-cap=N] [--log-level=L]\n"
               "  --quick      1/5th instruction budget (smoke run)\n"
               "  --measure=N  measured instructions per core\n"
               "  --warmup=N   warmup instructions per core\n"
               "  --seed=N     workload generation seed\n"
               "  --audit      audit model invariants every 100000 events\n"
               "  --jobs=N     worker threads for the sweep "
               "(default: all hardware threads)\n"
               "  --quiet      suppress per-run progress on stderr\n"
               "  --csv=FILE   also write the main table as CSV\n"
               "  --stats-json=FILE  also write results as JSON "
               "(deterministic across --jobs)\n"
               "  --trace-out=FILE   write request-lifecycle spans as "
               "Chrome trace JSON\n"
               "  --trace-cap=N      span ring capacity per run "
               "(default 16384)\n"
               "  --log-level=L      trace|debug|info|warn|error "
               "(default warn)\n",
               argv0);
}

/// Strict parse for --log-level= values; exits on anything unrecognized.
inline LogLevel parse_log_level(const char* argv0, const std::string& value) {
  if (value == "trace") return LogLevel::kTrace;
  if (value == "debug") return LogLevel::kDebug;
  if (value == "info") return LogLevel::kInfo;
  if (value == "warn") return LogLevel::kWarn;
  if (value == "error") return LogLevel::kError;
  std::fprintf(stderr,
               "%s: --log-level expects trace|debug|info|warn|error, "
               "got \"%s\"\n",
               argv0, value.c_str());
  print_usage(argv0);
  std::exit(2);
}

/// Strict decimal parse for --flag=N values: the whole value must be
/// digits. `--jobs=abc` quietly becoming 0 would silently run the wrong
/// sweep, which is exactly what fatal unknown-flag handling exists to stop.
inline u64 parse_u64_value(const char* argv0, const std::string& arg,
                           size_t prefix_len) {
  const char* value = arg.c_str() + prefix_len;
  char* end = nullptr;
  const u64 parsed = std::strtoull(value, &end, 10);
  if (*value == '\0' || end == nullptr || *end != '\0') {
    std::fprintf(stderr, "%s: %.*s expects a number, got \"%s\"\n", argv0,
                 static_cast<int>(prefix_len - 1), arg.c_str(), value);
    print_usage(argv0);
    std::exit(2);
  }
  return parsed;
}

inline exp::ExperimentConfig parse_args(int argc, char** argv) {
  exp::ExperimentConfig cfg;
  cfg.warmup_instructions = 50'000;
  cfg.measure_instructions = 250'000;
  cfg.verbose = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      cfg.warmup_instructions /= 5;
      cfg.measure_instructions /= 5;
    } else if (arg.rfind("--measure=", 0) == 0) {
      cfg.measure_instructions = parse_u64_value(argv[0], arg, 10);
    } else if (arg.rfind("--warmup=", 0) == 0) {
      cfg.warmup_instructions = parse_u64_value(argv[0], arg, 9);
    } else if (arg.rfind("--seed=", 0) == 0) {
      cfg.seed = parse_u64_value(argv[0], arg, 7);
    } else if (arg == "--audit") {
      cfg.audit_every = 100'000;
    } else if (arg.rfind("--jobs=", 0) == 0) {
      cfg.jobs = static_cast<u32>(parse_u64_value(argv[0], arg, 7));
    } else if (arg == "--quiet") {
      cfg.verbose = false;
    } else if (arg.rfind("--csv=", 0) == 0) {
      csv_path() = arg.substr(6);
    } else if (arg.rfind("--stats-json=", 0) == 0) {
      stats_json_path() = arg.substr(13);
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out_path() = arg.substr(12);
    } else if (arg.rfind("--trace-cap=", 0) == 0) {
      cfg.obs.trace_capacity =
          static_cast<u32>(parse_u64_value(argv[0], arg, 12));
    } else if (arg.rfind("--log-level=", 0) == 0) {
      set_log_level(parse_log_level(argv[0], arg.substr(12)));
    } else if (arg == "--help") {
      print_usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: unknown argument: %s\n", argv[0], arg.c_str());
      // Catch the `--flag value` (instead of `--flag=value`) shape.
      for (const char* f : {"--measure", "--warmup", "--seed", "--jobs",
                            "--csv", "--stats-json", "--trace-out",
                            "--trace-cap", "--log-level"}) {
        if (arg == f) {
          std::fprintf(stderr, "(did you mean %s=VALUE?)\n", f);
        }
      }
      print_usage(argv[0]);
      std::exit(2);
    }
  }
  // Tracing is armed by asking for the output file; the recorder itself
  // costs one branch per instrumentation point otherwise.
  cfg.obs.trace_enabled = !trace_out_path().empty();
  return cfg;
}

inline void print_banner(const char* figure, const char* paper_headline,
                         const exp::ExperimentConfig& cfg) {
  std::printf("=== %s ===\n", figure);
  std::printf("paper: %s\n", paper_headline);
  std::printf("run: %llu warmup + %llu measured instructions/core, seed %llu\n\n",
              static_cast<unsigned long long>(cfg.warmup_instructions),
              static_cast<unsigned long long>(cfg.measure_instructions),
              static_cast<unsigned long long>(cfg.seed));
}

/// Runs hand-built (config, workload) simulations on cfg.jobs worker
/// threads and returns the results in input order. The ablation benches use
/// this where they tweak SystemConfig fields the Runner cache can't key on.
inline std::vector<system::RunResults> run_sims(
    const exp::ExperimentConfig& cfg,
    const std::vector<std::pair<system::SystemConfig, std::string>>& sims) {
  std::vector<exp::SimFn> fns;
  fns.reserve(sims.size());
  for (const auto& sim : sims) {
    const system::SystemConfig sys_cfg = sim.first;
    const std::string workload = sim.second;
    const bool verbose = cfg.verbose;
    fns.push_back([sys_cfg, workload, verbose] {
      if (verbose) {
        progress_line("[run] %s / %s ...", workload.c_str(),
                      prefetch::to_string(sys_cfg.scheme));
      }
      return system::make_workload_system(sys_cfg, workload)->run();
    });
  }
  return exp::run_parallel(std::move(fns), cfg.jobs);
}

/// Prints the runner's accumulated host-side cost to stderr (not stdout, so
/// output tables stay byte-identical across --jobs settings).
inline void report_timing(const exp::Runner& runner) {
  const auto& t = runner.timing();
  if (t.runs == 0) return;
  std::fprintf(stderr,
               "timing: %llu runs, %.2fs wall, %.2fs simulation, "
               "%llu events (%.2f Mevents/s per worker)\n",
               static_cast<unsigned long long>(t.runs), t.sweep_seconds,
               t.run_seconds, static_cast<unsigned long long>(t.events),
               t.events_per_second() / 1e6);
}

}  // namespace camps::bench
