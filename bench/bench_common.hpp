// Shared command-line handling for the figure/table reproduction binaries.
//
// Every bench accepts:
//   --quick        five-times-smaller instruction budget (smoke runs)
//   --measure=N    detailed-window instructions per core
//   --warmup=N     warmup instructions per core
//   --seed=N       workload generation seed
//   --jobs=N       worker threads for the sweep (0 = all hardware threads)
//   --quiet        suppress per-run progress on stderr
//   --csv=FILE     additionally write the main table as CSV
//
// Unknown flags are fatal: a typo like `--measure 1000` (missing '=') must
// not silently run the default budget and waste a full sweep.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/log.hpp"
#include "exp/runner.hpp"
#include "exp/table.hpp"

namespace camps::bench {

/// CSV output path from --csv= (empty if not requested).
inline std::string& csv_path() {
  static std::string path;
  return path;
}

/// Writes `table` to the --csv= path, if one was given.
inline void maybe_write_csv(const exp::Table& table) {
  if (!csv_path().empty()) {
    table.write_csv(csv_path());
    std::fprintf(stderr, "csv written to %s\n", csv_path().c_str());
  }
}

inline void print_usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--quick] [--measure=N] [--warmup=N] [--seed=N]\n"
               "          [--jobs=N] [--quiet] [--csv=FILE]\n"
               "  --quick      1/5th instruction budget (smoke run)\n"
               "  --measure=N  measured instructions per core\n"
               "  --warmup=N   warmup instructions per core\n"
               "  --seed=N     workload generation seed\n"
               "  --jobs=N     worker threads for the sweep "
               "(default: all hardware threads)\n"
               "  --quiet      suppress per-run progress on stderr\n"
               "  --csv=FILE   also write the main table as CSV\n",
               argv0);
}

/// Strict decimal parse for --flag=N values: the whole value must be
/// digits. `--jobs=abc` quietly becoming 0 would silently run the wrong
/// sweep, which is exactly what fatal unknown-flag handling exists to stop.
inline u64 parse_u64_value(const char* argv0, const std::string& arg,
                           size_t prefix_len) {
  const char* value = arg.c_str() + prefix_len;
  char* end = nullptr;
  const u64 parsed = std::strtoull(value, &end, 10);
  if (*value == '\0' || end == nullptr || *end != '\0') {
    std::fprintf(stderr, "%s: %.*s expects a number, got \"%s\"\n", argv0,
                 static_cast<int>(prefix_len - 1), arg.c_str(), value);
    print_usage(argv0);
    std::exit(2);
  }
  return parsed;
}

inline exp::ExperimentConfig parse_args(int argc, char** argv) {
  exp::ExperimentConfig cfg;
  cfg.warmup_instructions = 50'000;
  cfg.measure_instructions = 250'000;
  cfg.verbose = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      cfg.warmup_instructions /= 5;
      cfg.measure_instructions /= 5;
    } else if (arg.rfind("--measure=", 0) == 0) {
      cfg.measure_instructions = parse_u64_value(argv[0], arg, 10);
    } else if (arg.rfind("--warmup=", 0) == 0) {
      cfg.warmup_instructions = parse_u64_value(argv[0], arg, 9);
    } else if (arg.rfind("--seed=", 0) == 0) {
      cfg.seed = parse_u64_value(argv[0], arg, 7);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      cfg.jobs = static_cast<u32>(parse_u64_value(argv[0], arg, 7));
    } else if (arg == "--quiet") {
      cfg.verbose = false;
    } else if (arg.rfind("--csv=", 0) == 0) {
      csv_path() = arg.substr(6);
    } else if (arg == "--help") {
      print_usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: unknown argument: %s\n", argv[0], arg.c_str());
      // Catch the `--flag value` (instead of `--flag=value`) shape.
      for (const char* f : {"--measure", "--warmup", "--seed", "--jobs",
                            "--csv"}) {
        if (arg == f) {
          std::fprintf(stderr, "(did you mean %s=VALUE?)\n", f);
        }
      }
      print_usage(argv[0]);
      std::exit(2);
    }
  }
  return cfg;
}

inline void print_banner(const char* figure, const char* paper_headline,
                         const exp::ExperimentConfig& cfg) {
  std::printf("=== %s ===\n", figure);
  std::printf("paper: %s\n", paper_headline);
  std::printf("run: %llu warmup + %llu measured instructions/core, seed %llu\n\n",
              static_cast<unsigned long long>(cfg.warmup_instructions),
              static_cast<unsigned long long>(cfg.measure_instructions),
              static_cast<unsigned long long>(cfg.seed));
}

/// Runs hand-built (config, workload) simulations on cfg.jobs worker
/// threads and returns the results in input order. The ablation benches use
/// this where they tweak SystemConfig fields the Runner cache can't key on.
inline std::vector<system::RunResults> run_sims(
    const exp::ExperimentConfig& cfg,
    const std::vector<std::pair<system::SystemConfig, std::string>>& sims) {
  std::vector<exp::SimFn> fns;
  fns.reserve(sims.size());
  for (const auto& sim : sims) {
    const system::SystemConfig sys_cfg = sim.first;
    const std::string workload = sim.second;
    const bool verbose = cfg.verbose;
    fns.push_back([sys_cfg, workload, verbose] {
      if (verbose) {
        progress_line("[run] %s / %s ...", workload.c_str(),
                      prefetch::to_string(sys_cfg.scheme));
      }
      return system::make_workload_system(sys_cfg, workload)->run();
    });
  }
  return exp::run_parallel(std::move(fns), cfg.jobs);
}

/// Prints the runner's accumulated host-side cost to stderr (not stdout, so
/// output tables stay byte-identical across --jobs settings).
inline void report_timing(const exp::Runner& runner) {
  const auto& t = runner.timing();
  if (t.runs == 0) return;
  std::fprintf(stderr,
               "timing: %llu runs, %.2fs wall, %.2fs simulation, "
               "%llu events (%.2f Mevents/s per worker)\n",
               static_cast<unsigned long long>(t.runs), t.sweep_seconds,
               t.run_seconds, static_cast<unsigned long long>(t.events),
               t.events_per_second() / 1e6);
}

}  // namespace camps::bench
