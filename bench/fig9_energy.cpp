// Figure 9: average HMC energy consumption normalized to BASE (lower is
// better), for BASE, MMD, and CAMPS-MOD.
//
// Paper headline: MMD consumes 6.0% and CAMPS-MOD 8.5% less energy than
// BASE, mainly from fewer activate/precharge operations and fewer wasted
// whole-row moves.
#include "bench_common.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace camps;
  const auto cfg = bench::parse_args(argc, argv);
  bench::print_banner("Figure 9: HMC energy normalized to BASE",
                      "MMD -6.0%, CAMPS-MOD -8.5% vs BASE", cfg);
  exp::Runner runner(cfg);
  runner.run_all(exp::Runner::all_workloads(),
                 {prefetch::SchemeKind::kBase, prefetch::SchemeKind::kMmd,
                  prefetch::SchemeKind::kCampsMod});

  exp::Table table({"workload", "BASE", "MMD", "CAMPS-MOD"});
  double mmd_sum = 0.0, cmod_sum = 0.0;
  for (const auto& w : exp::Runner::all_workloads()) {
    // Energy is compared per unit of work: the runs execute the same
    // instruction budget, so total measured-window energy is comparable.
    const double base = runner.result(w, prefetch::SchemeKind::kBase).energy_pj;
    const double mmd =
        runner.result(w, prefetch::SchemeKind::kMmd).energy_pj / base;
    const double cmod =
        runner.result(w, prefetch::SchemeKind::kCampsMod).energy_pj / base;
    mmd_sum += mmd;
    cmod_sum += cmod;
    table.add_row(
        {w, "1.000", exp::Table::fmt(mmd), exp::Table::fmt(cmod)});
  }
  table.add_row({"AVG", "1.000", exp::Table::fmt(mmd_sum / 12.0),
                 exp::Table::fmt(cmod_sum / 12.0)});
  std::printf("%s", table.to_string().c_str());
  bench::maybe_write_csv(table);
  bench::maybe_write_stats_json("fig9_energy", runner, table);
  bench::maybe_write_trace(runner);
  std::printf(
      "\nmeasured: MMD %.1f%% (paper -6.0%%), CAMPS-MOD %.1f%% (paper -8.5%%) "
      "vs BASE\n",
      (mmd_sum / 12.0 - 1.0) * 100.0, (cmod_sum / 12.0 - 1.0) * 100.0);
  bench::report_timing(runner);
  return 0;
}
