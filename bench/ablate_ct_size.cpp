// Ablation: Conflict Table capacity (paper fixes 32 entries per vault).
// Sweeps 4..128 entries for CAMPS-MOD: too small misses conflict-causers
// whose re-activation distance exceeds the table's reach; beyond the
// working set of conflicting rows the benefit saturates.

#include <map>
#include <string>
#include <vector>
#include "bench_common.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace camps;
  const auto cfg = bench::parse_args(argc, argv);
  bench::print_banner("Ablation: Conflict Table entries per vault",
                      "paper fixes 32 entries (Section 3.1)", cfg);

  const std::vector<std::string> workloads = {"HM3", "MX1"};
  const std::vector<u32> sizes = {4, 8, 16, 32, 64, 128};

  std::vector<std::pair<system::SystemConfig, std::string>> sims;
  for (const auto& w : workloads) {
    sims.emplace_back(cfg.system_config(prefetch::SchemeKind::kBase), w);
  }
  for (u32 entries : sizes) {
    for (const auto& w : workloads) {
      auto sys_cfg = cfg.system_config(prefetch::SchemeKind::kCampsMod);
      sys_cfg.scheme_params.camps.conflict_entries = entries;
      sims.emplace_back(sys_cfg, w);
    }
  }
  const auto results = bench::run_sims(cfg, sims);

  std::map<std::string, double> base_ipc;
  for (size_t i = 0; i < workloads.size(); ++i) {
    base_ipc[workloads[i]] = results[i].geomean_ipc;
  }

  exp::Table table({"CT entries", "HM3 speedup", "MX1 speedup",
                    "conflict rate (HM3)"});
  size_t next = workloads.size();
  for (u32 entries : sizes) {
    std::vector<std::string> row{std::to_string(entries)};
    double conflict_rate = 0.0;
    for (const auto& w : workloads) {
      const auto& r = results[next++];
      row.push_back(exp::Table::fmt(r.geomean_ipc / base_ipc[w]));
      if (w == "HM3") conflict_rate = r.row_conflict_rate;
    }
    row.push_back(exp::Table::pct(conflict_rate));
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_string().c_str());
  bench::maybe_write_csv(table);
  const auto named = bench::named_results(sims, results);
  bench::maybe_write_stats_json("ablate_ct_size", cfg, named, table);
  bench::maybe_write_trace(named);
  return 0;
}
