// Table I: the experimental configuration, printed from the live defaults
// so the docs can never drift from the code.
#include <cstdio>

#include "exp/table.hpp"
#include "system/config.hpp"

int main() {
  using namespace camps;
  const system::SystemConfig cfg = system::table1_config();

  std::printf("=== Table I: Experimental Configuration ===\n\n");
  exp::Table table({"component", "configuration"});
  char buf[256];

  std::snprintf(buf, sizeof buf, "%u cores @ 3GHz, issue width = %u, "
                "max %u outstanding loads",
                cfg.cores, cfg.core.issue_width,
                cfg.core.max_outstanding_loads);
  table.add_row({"Processor", buf});

  auto cache_row = [&](const char* name, const cache::CacheConfig& c,
                       const char* sharing) {
    std::snprintf(buf, sizeof buf,
                  "%llu KB %s, %u-way, hit lat. = %u cycles, %llu B line",
                  static_cast<unsigned long long>(c.size_bytes / 1024),
                  sharing, c.ways, c.hit_latency,
                  static_cast<unsigned long long>(c.line_bytes));
    table.add_row({name, buf});
  };
  cache_row("L1 (D)", cfg.caches.l1, "pvt.");
  cache_row("L2", cfg.caches.l2, "pvt.");
  cache_row("L3", cfg.caches.l3, "shrd.");

  std::snprintf(buf, sizeof buf,
                "%u vaults, %u banks/vault, %llu B row buffer, %llu rows/bank "
                "(%llu GB)",
                cfg.hmc.geometry.vaults, cfg.hmc.geometry.banks_per_vault,
                static_cast<unsigned long long>(cfg.hmc.geometry.row_bytes),
                static_cast<unsigned long long>(cfg.hmc.geometry.rows_per_bank),
                static_cast<unsigned long long>(
                    cfg.hmc.geometry.capacity_bytes() >> 30));
  table.add_row({"HMC", buf});

  const auto& t = cfg.hmc.vault.timing;
  std::snprintf(buf, sizeof buf,
                "DDR3-1600, queue size (R/W) = %u/%u, tRCD=%llu tRP=%llu "
                "tCL=%llu cycles",
                cfg.hmc.vault.read_queue, cfg.hmc.vault.write_queue,
                static_cast<unsigned long long>(t.tRCD),
                static_cast<unsigned long long>(t.tRP),
                static_cast<unsigned long long>(t.tCL));
  table.add_row({"Vault controller", buf});

  std::snprintf(buf, sizeof buf,
                "%u links, %u lanes each direction, %.1f Gbps/lane",
                cfg.hmc.num_links, cfg.hmc.link.lanes,
                cfg.hmc.link.gbps_per_lane);
  table.add_row({"Serial links", buf});

  std::snprintf(buf, sizeof buf,
                "%llu KB/vault, fully associative, %u x 1 KB rows, hit "
                "latency = %llu cycles",
                static_cast<unsigned long long>(
                    u64{cfg.hmc.vault.buffer.entries} *
                    cfg.hmc.geometry.row_bytes / 1024),
                cfg.hmc.vault.buffer.entries,
                static_cast<unsigned long long>(
                    cfg.hmc.vault.buffer.hit_latency));
  table.add_row({"PF buffer", buf});

  const hmc::AddressMap map(cfg.hmc.geometry, cfg.hmc.field_order);
  table.add_row({"Address mapping", map.order_name() +
                                    " (row-rank-bank-vault-column)"});
  table.add_row({"Memory scheduling", "FR-FCFS"});
  table.add_row({"Page policy", "Open page"});

  std::printf("%s", table.to_string().c_str());
  return 0;
}
