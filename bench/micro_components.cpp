// Google-benchmark micro-benchmarks for the hot data structures: event
// queue, prefetch buffer, CAMPS tables, address decoding, and trace
// generation. These guard the simulator's own performance (a full Table II
// sweep executes billions of these operations).
#include <benchmark/benchmark.h>

#include "hmc/address_map.hpp"
#include "prefetch/conflict_table.hpp"
#include "prefetch/prefetch_buffer.hpp"
#include "prefetch/rut.hpp"
#include "sim/event_queue.hpp"
#include "trace/spec_profiles.hpp"

namespace {

using namespace camps;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  sim::EventQueue q;
  u64 x = 1;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
      q.schedule(x >> 40, [] {});
    }
    while (!q.empty()) q.pop();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_AddressDecode(benchmark::State& state) {
  const hmc::AddressMap map;
  u64 x = 1;
  for (auto _ : state) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    benchmark::DoNotOptimize(map.decode(x));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AddressDecode);

void BM_PrefetchBufferAccess(benchmark::State& state) {
  prefetch::PrefetchBuffer buf(prefetch::PrefetchBufferConfig{},
                               prefetch::make_lru());
  for (u64 r = 0; r < 16; ++r) buf.insert(BankRow{0, r});
  u64 x = 1;
  for (auto _ : state) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    benchmark::DoNotOptimize(
        buf.access(BankRow{0, (x >> 30) % 24}, (x >> 10) % 16,
                   AccessType::kRead));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrefetchBufferAccess);

void BM_PrefetchBufferInsertEvict(benchmark::State& state) {
  const bool util_recency = state.range(0) != 0;
  prefetch::PrefetchBuffer buf(
      prefetch::PrefetchBufferConfig{},
      util_recency ? prefetch::make_utilization_recency()
                   : prefetch::make_lru());
  u64 r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(buf.insert(BankRow{0, r++}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrefetchBufferInsertEvict)->Arg(0)->Arg(1);

void BM_ConflictTableChurn(benchmark::State& state) {
  prefetch::ConflictTable ct(32);
  u64 x = 1;
  for (auto _ : state) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    ct.insert(BankRow{static_cast<BankId>((x >> 8) % 16), (x >> 20) % 256});
    benchmark::DoNotOptimize(
        ct.contains(BankRow{static_cast<BankId>((x >> 9) % 16),
                            (x >> 21) % 256}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConflictTableChurn);

void BM_RutTouch(benchmark::State& state) {
  prefetch::RowUtilizationTable rut(16);
  u64 x = 1;
  for (auto _ : state) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    benchmark::DoNotOptimize(
        rut.touch(static_cast<BankId>((x >> 5) % 16), (x >> 20) % 64));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RutTouch);

void BM_TraceGeneration(benchmark::State& state) {
  const auto& profile = trace::all_benchmarks()[static_cast<size_t>(
      state.range(0))];
  auto src = profile.make_source(1, trace::PatternGeometry{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(src->next());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(profile.name);
}
BENCHMARK(BM_TraceGeneration)->Arg(0)->Arg(7)->Arg(10);

}  // namespace

BENCHMARK_MAIN();
