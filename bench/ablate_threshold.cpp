// Ablation: the RUT utilization threshold (paper fixes it to 4).
// Sweeps 1..16 for CAMPS-MOD on one workload per class and reports speedup
// vs BASE plus prefetch volume/accuracy, exposing the coverage/pollution
// trade-off behind the paper's choice.

#include <map>
#include <string>
#include <vector>
#include "bench_common.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace camps;
  const auto cfg = bench::parse_args(argc, argv);
  bench::print_banner("Ablation: RUT utilization threshold",
                      "paper fixes threshold = 4 (Section 3.1)", cfg);

  const std::vector<std::string> workloads = {"HM2", "LM2", "MX2"};
  const std::vector<u32> thresholds = {1, 2, 3, 4, 6, 8, 12, 16};

  // One batch: baselines first (threshold is irrelevant for BASE), then the
  // full (threshold x workload) sweep, all fanned out over --jobs workers.
  std::vector<std::pair<system::SystemConfig, std::string>> sims;
  for (const auto& w : workloads) {
    sims.emplace_back(cfg.system_config(prefetch::SchemeKind::kBase), w);
  }
  for (u32 threshold : thresholds) {
    for (const auto& w : workloads) {
      auto sys_cfg = cfg.system_config(prefetch::SchemeKind::kCampsMod);
      sys_cfg.scheme_params.camps.utilization_threshold = threshold;
      sims.emplace_back(sys_cfg, w);
    }
  }
  const auto results = bench::run_sims(cfg, sims);

  std::map<std::string, double> base_ipc;
  for (size_t i = 0; i < workloads.size(); ++i) {
    base_ipc[workloads[i]] = results[i].geomean_ipc;
  }

  exp::Table table({"threshold", "HM2 speedup", "LM2 speedup", "MX2 speedup",
                    "prefetches (HM2)", "accuracy (HM2)"});
  size_t next = workloads.size();
  for (u32 threshold : thresholds) {
    std::vector<std::string> row{std::to_string(threshold)};
    u64 prefetches = 0;
    double accuracy = 0.0;
    for (const auto& w : workloads) {
      const auto& r = results[next++];
      row.push_back(exp::Table::fmt(r.geomean_ipc / base_ipc[w]));
      if (w == "HM2") {
        prefetches = r.prefetches;
        accuracy = r.prefetch_accuracy;
      }
    }
    row.push_back(std::to_string(prefetches));
    row.push_back(exp::Table::pct(accuracy));
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_string().c_str());
  bench::maybe_write_csv(table);
  const auto named = bench::named_results(sims, results);
  bench::maybe_write_stats_json("ablate_threshold", cfg, named, table);
  bench::maybe_write_trace(named);
  return 0;
}
