# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/test_common[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_sim[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_dram[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_trace[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_prefetch[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_hmc[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_cache[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_cpu[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_energy[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_system[1]_include.cmake")
