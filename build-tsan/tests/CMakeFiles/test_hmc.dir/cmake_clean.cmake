file(REMOVE_RECURSE
  "CMakeFiles/test_hmc.dir/hmc/test_address_map.cpp.o"
  "CMakeFiles/test_hmc.dir/hmc/test_address_map.cpp.o.d"
  "CMakeFiles/test_hmc.dir/hmc/test_crossbar.cpp.o"
  "CMakeFiles/test_hmc.dir/hmc/test_crossbar.cpp.o.d"
  "CMakeFiles/test_hmc.dir/hmc/test_hmc_device.cpp.o"
  "CMakeFiles/test_hmc.dir/hmc/test_hmc_device.cpp.o.d"
  "CMakeFiles/test_hmc.dir/hmc/test_protocol.cpp.o"
  "CMakeFiles/test_hmc.dir/hmc/test_protocol.cpp.o.d"
  "CMakeFiles/test_hmc.dir/hmc/test_serial_link.cpp.o"
  "CMakeFiles/test_hmc.dir/hmc/test_serial_link.cpp.o.d"
  "CMakeFiles/test_hmc.dir/hmc/test_vault_controller.cpp.o"
  "CMakeFiles/test_hmc.dir/hmc/test_vault_controller.cpp.o.d"
  "test_hmc"
  "test_hmc.pdb"
  "test_hmc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
