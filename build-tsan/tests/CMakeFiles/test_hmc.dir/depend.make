# Empty dependencies file for test_hmc.
# This may be replaced when dependencies are built.
