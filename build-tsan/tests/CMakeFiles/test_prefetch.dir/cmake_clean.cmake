file(REMOVE_RECURSE
  "CMakeFiles/test_prefetch.dir/prefetch/test_camps_scheme.cpp.o"
  "CMakeFiles/test_prefetch.dir/prefetch/test_camps_scheme.cpp.o.d"
  "CMakeFiles/test_prefetch.dir/prefetch/test_conflict_table.cpp.o"
  "CMakeFiles/test_prefetch.dir/prefetch/test_conflict_table.cpp.o.d"
  "CMakeFiles/test_prefetch.dir/prefetch/test_prefetch_buffer.cpp.o"
  "CMakeFiles/test_prefetch.dir/prefetch/test_prefetch_buffer.cpp.o.d"
  "CMakeFiles/test_prefetch.dir/prefetch/test_replacement.cpp.o"
  "CMakeFiles/test_prefetch.dir/prefetch/test_replacement.cpp.o.d"
  "CMakeFiles/test_prefetch.dir/prefetch/test_rut.cpp.o"
  "CMakeFiles/test_prefetch.dir/prefetch/test_rut.cpp.o.d"
  "CMakeFiles/test_prefetch.dir/prefetch/test_schemes.cpp.o"
  "CMakeFiles/test_prefetch.dir/prefetch/test_schemes.cpp.o.d"
  "CMakeFiles/test_prefetch.dir/prefetch/test_stream_scheme.cpp.o"
  "CMakeFiles/test_prefetch.dir/prefetch/test_stream_scheme.cpp.o.d"
  "test_prefetch"
  "test_prefetch.pdb"
  "test_prefetch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
