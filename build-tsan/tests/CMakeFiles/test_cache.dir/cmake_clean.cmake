file(REMOVE_RECURSE
  "CMakeFiles/test_cache.dir/cache/test_cache.cpp.o"
  "CMakeFiles/test_cache.dir/cache/test_cache.cpp.o.d"
  "CMakeFiles/test_cache.dir/cache/test_hierarchy.cpp.o"
  "CMakeFiles/test_cache.dir/cache/test_hierarchy.cpp.o.d"
  "CMakeFiles/test_cache.dir/cache/test_mshr.cpp.o"
  "CMakeFiles/test_cache.dir/cache/test_mshr.cpp.o.d"
  "test_cache"
  "test_cache.pdb"
  "test_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
