file(REMOVE_RECURSE
  "CMakeFiles/test_dram.dir/dram/test_bank.cpp.o"
  "CMakeFiles/test_dram.dir/dram/test_bank.cpp.o.d"
  "CMakeFiles/test_dram.dir/dram/test_refresh.cpp.o"
  "CMakeFiles/test_dram.dir/dram/test_refresh.cpp.o.d"
  "CMakeFiles/test_dram.dir/dram/test_timing.cpp.o"
  "CMakeFiles/test_dram.dir/dram/test_timing.cpp.o.d"
  "test_dram"
  "test_dram.pdb"
  "test_dram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
