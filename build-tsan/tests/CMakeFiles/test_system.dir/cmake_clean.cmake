file(REMOVE_RECURSE
  "CMakeFiles/test_system.dir/exp/test_runner.cpp.o"
  "CMakeFiles/test_system.dir/exp/test_runner.cpp.o.d"
  "CMakeFiles/test_system.dir/exp/test_table.cpp.o"
  "CMakeFiles/test_system.dir/exp/test_table.cpp.o.d"
  "CMakeFiles/test_system.dir/system/test_classification.cpp.o"
  "CMakeFiles/test_system.dir/system/test_classification.cpp.o.d"
  "CMakeFiles/test_system.dir/system/test_config.cpp.o"
  "CMakeFiles/test_system.dir/system/test_config.cpp.o.d"
  "CMakeFiles/test_system.dir/system/test_integration.cpp.o"
  "CMakeFiles/test_system.dir/system/test_integration.cpp.o.d"
  "CMakeFiles/test_system.dir/system/test_results.cpp.o"
  "CMakeFiles/test_system.dir/system/test_results.cpp.o.d"
  "CMakeFiles/test_system.dir/system/test_system.cpp.o"
  "CMakeFiles/test_system.dir/system/test_system.cpp.o.d"
  "test_system"
  "test_system.pdb"
  "test_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
