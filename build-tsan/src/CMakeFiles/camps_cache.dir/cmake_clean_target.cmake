file(REMOVE_RECURSE
  "libcamps_cache.a"
)
