# Empty dependencies file for camps_cache.
# This may be replaced when dependencies are built.
