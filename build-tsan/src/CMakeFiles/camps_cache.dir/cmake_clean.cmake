file(REMOVE_RECURSE
  "CMakeFiles/camps_cache.dir/cache/cache.cpp.o"
  "CMakeFiles/camps_cache.dir/cache/cache.cpp.o.d"
  "CMakeFiles/camps_cache.dir/cache/hierarchy.cpp.o"
  "CMakeFiles/camps_cache.dir/cache/hierarchy.cpp.o.d"
  "CMakeFiles/camps_cache.dir/cache/mshr.cpp.o"
  "CMakeFiles/camps_cache.dir/cache/mshr.cpp.o.d"
  "libcamps_cache.a"
  "libcamps_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camps_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
