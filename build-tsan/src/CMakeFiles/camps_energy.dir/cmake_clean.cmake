file(REMOVE_RECURSE
  "CMakeFiles/camps_energy.dir/energy/energy_model.cpp.o"
  "CMakeFiles/camps_energy.dir/energy/energy_model.cpp.o.d"
  "libcamps_energy.a"
  "libcamps_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camps_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
