# Empty dependencies file for camps_energy.
# This may be replaced when dependencies are built.
