file(REMOVE_RECURSE
  "libcamps_energy.a"
)
