
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/patterns.cpp" "src/CMakeFiles/camps_trace.dir/trace/patterns.cpp.o" "gcc" "src/CMakeFiles/camps_trace.dir/trace/patterns.cpp.o.d"
  "/root/repo/src/trace/spec_profiles.cpp" "src/CMakeFiles/camps_trace.dir/trace/spec_profiles.cpp.o" "gcc" "src/CMakeFiles/camps_trace.dir/trace/spec_profiles.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/camps_trace.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/camps_trace.dir/trace/trace.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/CMakeFiles/camps_trace.dir/trace/trace_io.cpp.o" "gcc" "src/CMakeFiles/camps_trace.dir/trace/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/camps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
