file(REMOVE_RECURSE
  "libcamps_trace.a"
)
