file(REMOVE_RECURSE
  "CMakeFiles/camps_trace.dir/trace/patterns.cpp.o"
  "CMakeFiles/camps_trace.dir/trace/patterns.cpp.o.d"
  "CMakeFiles/camps_trace.dir/trace/spec_profiles.cpp.o"
  "CMakeFiles/camps_trace.dir/trace/spec_profiles.cpp.o.d"
  "CMakeFiles/camps_trace.dir/trace/trace.cpp.o"
  "CMakeFiles/camps_trace.dir/trace/trace.cpp.o.d"
  "CMakeFiles/camps_trace.dir/trace/trace_io.cpp.o"
  "CMakeFiles/camps_trace.dir/trace/trace_io.cpp.o.d"
  "libcamps_trace.a"
  "libcamps_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camps_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
