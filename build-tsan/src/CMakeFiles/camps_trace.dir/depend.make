# Empty dependencies file for camps_trace.
# This may be replaced when dependencies are built.
