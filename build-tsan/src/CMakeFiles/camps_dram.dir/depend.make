# Empty dependencies file for camps_dram.
# This may be replaced when dependencies are built.
