file(REMOVE_RECURSE
  "CMakeFiles/camps_dram.dir/dram/bank.cpp.o"
  "CMakeFiles/camps_dram.dir/dram/bank.cpp.o.d"
  "CMakeFiles/camps_dram.dir/dram/refresh.cpp.o"
  "CMakeFiles/camps_dram.dir/dram/refresh.cpp.o.d"
  "CMakeFiles/camps_dram.dir/dram/timing.cpp.o"
  "CMakeFiles/camps_dram.dir/dram/timing.cpp.o.d"
  "libcamps_dram.a"
  "libcamps_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camps_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
