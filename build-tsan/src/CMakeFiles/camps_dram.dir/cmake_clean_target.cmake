file(REMOVE_RECURSE
  "libcamps_dram.a"
)
