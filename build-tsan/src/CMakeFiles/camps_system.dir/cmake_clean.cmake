file(REMOVE_RECURSE
  "CMakeFiles/camps_system.dir/system/config.cpp.o"
  "CMakeFiles/camps_system.dir/system/config.cpp.o.d"
  "CMakeFiles/camps_system.dir/system/results.cpp.o"
  "CMakeFiles/camps_system.dir/system/results.cpp.o.d"
  "CMakeFiles/camps_system.dir/system/system.cpp.o"
  "CMakeFiles/camps_system.dir/system/system.cpp.o.d"
  "libcamps_system.a"
  "libcamps_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camps_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
