file(REMOVE_RECURSE
  "libcamps_system.a"
)
