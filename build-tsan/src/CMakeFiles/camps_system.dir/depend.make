# Empty dependencies file for camps_system.
# This may be replaced when dependencies are built.
