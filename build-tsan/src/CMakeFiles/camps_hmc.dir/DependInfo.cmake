
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hmc/address_map.cpp" "src/CMakeFiles/camps_hmc.dir/hmc/address_map.cpp.o" "gcc" "src/CMakeFiles/camps_hmc.dir/hmc/address_map.cpp.o.d"
  "/root/repo/src/hmc/crossbar.cpp" "src/CMakeFiles/camps_hmc.dir/hmc/crossbar.cpp.o" "gcc" "src/CMakeFiles/camps_hmc.dir/hmc/crossbar.cpp.o.d"
  "/root/repo/src/hmc/hmc_device.cpp" "src/CMakeFiles/camps_hmc.dir/hmc/hmc_device.cpp.o" "gcc" "src/CMakeFiles/camps_hmc.dir/hmc/hmc_device.cpp.o.d"
  "/root/repo/src/hmc/host_controller.cpp" "src/CMakeFiles/camps_hmc.dir/hmc/host_controller.cpp.o" "gcc" "src/CMakeFiles/camps_hmc.dir/hmc/host_controller.cpp.o.d"
  "/root/repo/src/hmc/packet.cpp" "src/CMakeFiles/camps_hmc.dir/hmc/packet.cpp.o" "gcc" "src/CMakeFiles/camps_hmc.dir/hmc/packet.cpp.o.d"
  "/root/repo/src/hmc/serial_link.cpp" "src/CMakeFiles/camps_hmc.dir/hmc/serial_link.cpp.o" "gcc" "src/CMakeFiles/camps_hmc.dir/hmc/serial_link.cpp.o.d"
  "/root/repo/src/hmc/vault_controller.cpp" "src/CMakeFiles/camps_hmc.dir/hmc/vault_controller.cpp.o" "gcc" "src/CMakeFiles/camps_hmc.dir/hmc/vault_controller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/camps_dram.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/camps_prefetch.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/camps_energy.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/camps_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/camps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
