file(REMOVE_RECURSE
  "CMakeFiles/camps_hmc.dir/hmc/address_map.cpp.o"
  "CMakeFiles/camps_hmc.dir/hmc/address_map.cpp.o.d"
  "CMakeFiles/camps_hmc.dir/hmc/crossbar.cpp.o"
  "CMakeFiles/camps_hmc.dir/hmc/crossbar.cpp.o.d"
  "CMakeFiles/camps_hmc.dir/hmc/hmc_device.cpp.o"
  "CMakeFiles/camps_hmc.dir/hmc/hmc_device.cpp.o.d"
  "CMakeFiles/camps_hmc.dir/hmc/host_controller.cpp.o"
  "CMakeFiles/camps_hmc.dir/hmc/host_controller.cpp.o.d"
  "CMakeFiles/camps_hmc.dir/hmc/packet.cpp.o"
  "CMakeFiles/camps_hmc.dir/hmc/packet.cpp.o.d"
  "CMakeFiles/camps_hmc.dir/hmc/serial_link.cpp.o"
  "CMakeFiles/camps_hmc.dir/hmc/serial_link.cpp.o.d"
  "CMakeFiles/camps_hmc.dir/hmc/vault_controller.cpp.o"
  "CMakeFiles/camps_hmc.dir/hmc/vault_controller.cpp.o.d"
  "libcamps_hmc.a"
  "libcamps_hmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camps_hmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
