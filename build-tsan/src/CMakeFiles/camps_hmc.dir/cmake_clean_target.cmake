file(REMOVE_RECURSE
  "libcamps_hmc.a"
)
