# Empty dependencies file for camps_hmc.
# This may be replaced when dependencies are built.
