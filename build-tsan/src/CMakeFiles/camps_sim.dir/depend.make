# Empty dependencies file for camps_sim.
# This may be replaced when dependencies are built.
