file(REMOVE_RECURSE
  "libcamps_sim.a"
)
