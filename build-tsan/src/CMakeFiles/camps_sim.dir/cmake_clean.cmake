file(REMOVE_RECURSE
  "CMakeFiles/camps_sim.dir/sim/clock.cpp.o"
  "CMakeFiles/camps_sim.dir/sim/clock.cpp.o.d"
  "CMakeFiles/camps_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/camps_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/camps_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/camps_sim.dir/sim/simulator.cpp.o.d"
  "libcamps_sim.a"
  "libcamps_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camps_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
