file(REMOVE_RECURSE
  "libcamps_prefetch.a"
)
