# Empty dependencies file for camps_prefetch.
# This may be replaced when dependencies are built.
