file(REMOVE_RECURSE
  "CMakeFiles/camps_prefetch.dir/prefetch/conflict_table.cpp.o"
  "CMakeFiles/camps_prefetch.dir/prefetch/conflict_table.cpp.o.d"
  "CMakeFiles/camps_prefetch.dir/prefetch/factory.cpp.o"
  "CMakeFiles/camps_prefetch.dir/prefetch/factory.cpp.o.d"
  "CMakeFiles/camps_prefetch.dir/prefetch/prefetch_buffer.cpp.o"
  "CMakeFiles/camps_prefetch.dir/prefetch/prefetch_buffer.cpp.o.d"
  "CMakeFiles/camps_prefetch.dir/prefetch/replacement.cpp.o"
  "CMakeFiles/camps_prefetch.dir/prefetch/replacement.cpp.o.d"
  "CMakeFiles/camps_prefetch.dir/prefetch/rut.cpp.o"
  "CMakeFiles/camps_prefetch.dir/prefetch/rut.cpp.o.d"
  "CMakeFiles/camps_prefetch.dir/prefetch/scheme_base.cpp.o"
  "CMakeFiles/camps_prefetch.dir/prefetch/scheme_base.cpp.o.d"
  "CMakeFiles/camps_prefetch.dir/prefetch/scheme_base_hit.cpp.o"
  "CMakeFiles/camps_prefetch.dir/prefetch/scheme_base_hit.cpp.o.d"
  "CMakeFiles/camps_prefetch.dir/prefetch/scheme_camps.cpp.o"
  "CMakeFiles/camps_prefetch.dir/prefetch/scheme_camps.cpp.o.d"
  "CMakeFiles/camps_prefetch.dir/prefetch/scheme_mmd.cpp.o"
  "CMakeFiles/camps_prefetch.dir/prefetch/scheme_mmd.cpp.o.d"
  "CMakeFiles/camps_prefetch.dir/prefetch/scheme_none.cpp.o"
  "CMakeFiles/camps_prefetch.dir/prefetch/scheme_none.cpp.o.d"
  "CMakeFiles/camps_prefetch.dir/prefetch/scheme_stream.cpp.o"
  "CMakeFiles/camps_prefetch.dir/prefetch/scheme_stream.cpp.o.d"
  "libcamps_prefetch.a"
  "libcamps_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camps_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
