
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prefetch/conflict_table.cpp" "src/CMakeFiles/camps_prefetch.dir/prefetch/conflict_table.cpp.o" "gcc" "src/CMakeFiles/camps_prefetch.dir/prefetch/conflict_table.cpp.o.d"
  "/root/repo/src/prefetch/factory.cpp" "src/CMakeFiles/camps_prefetch.dir/prefetch/factory.cpp.o" "gcc" "src/CMakeFiles/camps_prefetch.dir/prefetch/factory.cpp.o.d"
  "/root/repo/src/prefetch/prefetch_buffer.cpp" "src/CMakeFiles/camps_prefetch.dir/prefetch/prefetch_buffer.cpp.o" "gcc" "src/CMakeFiles/camps_prefetch.dir/prefetch/prefetch_buffer.cpp.o.d"
  "/root/repo/src/prefetch/replacement.cpp" "src/CMakeFiles/camps_prefetch.dir/prefetch/replacement.cpp.o" "gcc" "src/CMakeFiles/camps_prefetch.dir/prefetch/replacement.cpp.o.d"
  "/root/repo/src/prefetch/rut.cpp" "src/CMakeFiles/camps_prefetch.dir/prefetch/rut.cpp.o" "gcc" "src/CMakeFiles/camps_prefetch.dir/prefetch/rut.cpp.o.d"
  "/root/repo/src/prefetch/scheme_base.cpp" "src/CMakeFiles/camps_prefetch.dir/prefetch/scheme_base.cpp.o" "gcc" "src/CMakeFiles/camps_prefetch.dir/prefetch/scheme_base.cpp.o.d"
  "/root/repo/src/prefetch/scheme_base_hit.cpp" "src/CMakeFiles/camps_prefetch.dir/prefetch/scheme_base_hit.cpp.o" "gcc" "src/CMakeFiles/camps_prefetch.dir/prefetch/scheme_base_hit.cpp.o.d"
  "/root/repo/src/prefetch/scheme_camps.cpp" "src/CMakeFiles/camps_prefetch.dir/prefetch/scheme_camps.cpp.o" "gcc" "src/CMakeFiles/camps_prefetch.dir/prefetch/scheme_camps.cpp.o.d"
  "/root/repo/src/prefetch/scheme_mmd.cpp" "src/CMakeFiles/camps_prefetch.dir/prefetch/scheme_mmd.cpp.o" "gcc" "src/CMakeFiles/camps_prefetch.dir/prefetch/scheme_mmd.cpp.o.d"
  "/root/repo/src/prefetch/scheme_none.cpp" "src/CMakeFiles/camps_prefetch.dir/prefetch/scheme_none.cpp.o" "gcc" "src/CMakeFiles/camps_prefetch.dir/prefetch/scheme_none.cpp.o.d"
  "/root/repo/src/prefetch/scheme_stream.cpp" "src/CMakeFiles/camps_prefetch.dir/prefetch/scheme_stream.cpp.o" "gcc" "src/CMakeFiles/camps_prefetch.dir/prefetch/scheme_stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/camps_dram.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/camps_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/camps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
