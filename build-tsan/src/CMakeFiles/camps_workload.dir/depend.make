# Empty dependencies file for camps_workload.
# This may be replaced when dependencies are built.
