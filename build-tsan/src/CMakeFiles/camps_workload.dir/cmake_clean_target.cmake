file(REMOVE_RECURSE
  "libcamps_workload.a"
)
