file(REMOVE_RECURSE
  "CMakeFiles/camps_workload.dir/workload/workloads.cpp.o"
  "CMakeFiles/camps_workload.dir/workload/workloads.cpp.o.d"
  "libcamps_workload.a"
  "libcamps_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camps_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
