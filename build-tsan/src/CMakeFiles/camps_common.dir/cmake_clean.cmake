file(REMOVE_RECURSE
  "CMakeFiles/camps_common.dir/common/config_file.cpp.o"
  "CMakeFiles/camps_common.dir/common/config_file.cpp.o.d"
  "CMakeFiles/camps_common.dir/common/log.cpp.o"
  "CMakeFiles/camps_common.dir/common/log.cpp.o.d"
  "CMakeFiles/camps_common.dir/common/rng.cpp.o"
  "CMakeFiles/camps_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/camps_common.dir/common/stats.cpp.o"
  "CMakeFiles/camps_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/camps_common.dir/common/thread_pool.cpp.o"
  "CMakeFiles/camps_common.dir/common/thread_pool.cpp.o.d"
  "libcamps_common.a"
  "libcamps_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camps_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
