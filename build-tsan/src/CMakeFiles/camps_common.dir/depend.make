# Empty dependencies file for camps_common.
# This may be replaced when dependencies are built.
