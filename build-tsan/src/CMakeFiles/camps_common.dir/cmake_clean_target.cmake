file(REMOVE_RECURSE
  "libcamps_common.a"
)
