# Empty dependencies file for camps_exp.
# This may be replaced when dependencies are built.
