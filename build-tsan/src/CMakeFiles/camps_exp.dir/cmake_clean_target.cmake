file(REMOVE_RECURSE
  "libcamps_exp.a"
)
