file(REMOVE_RECURSE
  "CMakeFiles/camps_exp.dir/exp/runner.cpp.o"
  "CMakeFiles/camps_exp.dir/exp/runner.cpp.o.d"
  "CMakeFiles/camps_exp.dir/exp/table.cpp.o"
  "CMakeFiles/camps_exp.dir/exp/table.cpp.o.d"
  "libcamps_exp.a"
  "libcamps_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camps_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
