file(REMOVE_RECURSE
  "libcamps_cpu.a"
)
