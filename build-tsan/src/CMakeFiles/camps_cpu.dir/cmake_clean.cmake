file(REMOVE_RECURSE
  "CMakeFiles/camps_cpu.dir/cpu/core.cpp.o"
  "CMakeFiles/camps_cpu.dir/cpu/core.cpp.o.d"
  "libcamps_cpu.a"
  "libcamps_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camps_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
