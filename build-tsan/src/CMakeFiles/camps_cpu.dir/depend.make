# Empty dependencies file for camps_cpu.
# This may be replaced when dependencies are built.
