file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_basehit_trigger.dir/ablate_basehit_trigger.cpp.o"
  "CMakeFiles/bench_ablate_basehit_trigger.dir/ablate_basehit_trigger.cpp.o.d"
  "bench_ablate_basehit_trigger"
  "bench_ablate_basehit_trigger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_basehit_trigger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
