# Empty dependencies file for bench_ablate_basehit_trigger.
# This may be replaced when dependencies are built.
