# Empty dependencies file for bench_fig9_energy.
# This may be replaced when dependencies are built.
