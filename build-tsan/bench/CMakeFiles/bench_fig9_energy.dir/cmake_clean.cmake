file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_energy.dir/fig9_energy.cpp.o"
  "CMakeFiles/bench_fig9_energy.dir/fig9_energy.cpp.o.d"
  "bench_fig9_energy"
  "bench_fig9_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
