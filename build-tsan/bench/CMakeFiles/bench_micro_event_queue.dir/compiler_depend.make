# Empty compiler generated dependencies file for bench_micro_event_queue.
# This may be replaced when dependencies are built.
