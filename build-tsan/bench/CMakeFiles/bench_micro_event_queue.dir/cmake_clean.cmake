file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_event_queue.dir/micro_event_queue.cpp.o"
  "CMakeFiles/bench_micro_event_queue.dir/micro_event_queue.cpp.o.d"
  "bench_micro_event_queue"
  "bench_micro_event_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_event_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
