# Empty dependencies file for bench_ablate_buffer_size.
# This may be replaced when dependencies are built.
