file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_stream.dir/ext_stream.cpp.o"
  "CMakeFiles/bench_ext_stream.dir/ext_stream.cpp.o.d"
  "bench_ext_stream"
  "bench_ext_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
