file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_amat.dir/fig8_amat.cpp.o"
  "CMakeFiles/bench_fig8_amat.dir/fig8_amat.cpp.o.d"
  "bench_fig8_amat"
  "bench_fig8_amat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_amat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
