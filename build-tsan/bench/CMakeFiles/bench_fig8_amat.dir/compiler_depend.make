# Empty compiler generated dependencies file for bench_fig8_amat.
# This may be replaced when dependencies are built.
