file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_addrmap.dir/ablate_addrmap.cpp.o"
  "CMakeFiles/bench_ablate_addrmap.dir/ablate_addrmap.cpp.o.d"
  "bench_ablate_addrmap"
  "bench_ablate_addrmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_addrmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
