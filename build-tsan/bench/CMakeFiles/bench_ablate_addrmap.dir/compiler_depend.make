# Empty compiler generated dependencies file for bench_ablate_addrmap.
# This may be replaced when dependencies are built.
