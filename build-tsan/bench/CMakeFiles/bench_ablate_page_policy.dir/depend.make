# Empty dependencies file for bench_ablate_page_policy.
# This may be replaced when dependencies are built.
