file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_page_policy.dir/ablate_page_policy.cpp.o"
  "CMakeFiles/bench_ablate_page_policy.dir/ablate_page_policy.cpp.o.d"
  "bench_ablate_page_policy"
  "bench_ablate_page_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_page_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
