file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_generations.dir/ext_generations.cpp.o"
  "CMakeFiles/bench_ext_generations.dir/ext_generations.cpp.o.d"
  "bench_ext_generations"
  "bench_ext_generations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_generations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
