# Empty compiler generated dependencies file for bench_ext_generations.
# This may be replaced when dependencies are built.
