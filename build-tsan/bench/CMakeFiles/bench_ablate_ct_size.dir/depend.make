# Empty dependencies file for bench_ablate_ct_size.
# This may be replaced when dependencies are built.
