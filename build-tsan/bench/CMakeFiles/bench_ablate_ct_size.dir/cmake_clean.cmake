file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_ct_size.dir/ablate_ct_size.cpp.o"
  "CMakeFiles/bench_ablate_ct_size.dir/ablate_ct_size.cpp.o.d"
  "bench_ablate_ct_size"
  "bench_ablate_ct_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_ct_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
