file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_fairness.dir/ext_fairness.cpp.o"
  "CMakeFiles/bench_ext_fairness.dir/ext_fairness.cpp.o.d"
  "bench_ext_fairness"
  "bench_ext_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
