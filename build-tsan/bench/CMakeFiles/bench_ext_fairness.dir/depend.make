# Empty dependencies file for bench_ext_fairness.
# This may be replaced when dependencies are built.
