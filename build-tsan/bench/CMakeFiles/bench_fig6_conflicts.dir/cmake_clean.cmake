file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_conflicts.dir/fig6_conflicts.cpp.o"
  "CMakeFiles/bench_fig6_conflicts.dir/fig6_conflicts.cpp.o.d"
  "bench_fig6_conflicts"
  "bench_fig6_conflicts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_conflicts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
