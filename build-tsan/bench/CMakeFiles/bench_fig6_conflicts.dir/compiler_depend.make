# Empty compiler generated dependencies file for bench_fig6_conflicts.
# This may be replaced when dependencies are built.
