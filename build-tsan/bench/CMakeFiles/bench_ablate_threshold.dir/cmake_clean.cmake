file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_threshold.dir/ablate_threshold.cpp.o"
  "CMakeFiles/bench_ablate_threshold.dir/ablate_threshold.cpp.o.d"
  "bench_ablate_threshold"
  "bench_ablate_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
