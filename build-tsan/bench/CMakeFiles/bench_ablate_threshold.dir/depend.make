# Empty dependencies file for bench_ablate_threshold.
# This may be replaced when dependencies are built.
