
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/scheme_comparison.cpp" "examples/CMakeFiles/scheme_comparison.dir/scheme_comparison.cpp.o" "gcc" "examples/CMakeFiles/scheme_comparison.dir/scheme_comparison.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/camps_exp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/camps_system.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/camps_cpu.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/camps_cache.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/camps_hmc.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/camps_prefetch.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/camps_dram.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/camps_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/camps_energy.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/camps_workload.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/camps_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/camps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
