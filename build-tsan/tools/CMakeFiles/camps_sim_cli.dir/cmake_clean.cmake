file(REMOVE_RECURSE
  "CMakeFiles/camps_sim_cli.dir/camps_sim.cpp.o"
  "CMakeFiles/camps_sim_cli.dir/camps_sim.cpp.o.d"
  "camps_sim"
  "camps_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camps_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
