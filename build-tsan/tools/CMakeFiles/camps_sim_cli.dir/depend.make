# Empty dependencies file for camps_sim_cli.
# This may be replaced when dependencies are built.
