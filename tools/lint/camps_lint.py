#!/usr/bin/env python3
"""camps_lint: repo-specific static checks the generic tools don't cover.

Rules
-----
determinism   In the simulation-critical trees (src/sim, src/hmc,
              src/prefetch, src/fault) forbid randomness sources (rand, srand,
              std::random_device), wall-clock reads (system_clock,
              steady_clock, gettimeofday, clock(), time(nullptr)), and
              iteration-order-dependent containers (std::unordered_*).
              Whole-system runs must be bit-for-bit reproducible from the
              seed; any of these would silently break that.
pragma-once   Every header uses #pragma once (the repo's include-guard
              style).
stats-name    String literals registered with StatRegistry::counter() /
              histogram() use only [a-z0-9_.] so exported JSON/CSV keys
              stay shell- and spreadsheet-safe.
iwyu-lite     A file that names a common std:: type directly includes the
              header that defines it (small fixed mapping; transitive
              includes are deliberately not honored).

Waivers: append `// camps-lint: allow(<rule>)` to the offending line.

Exit status: 0 clean, 1 violations found, 2 usage error.
"""

import argparse
import re
import sys
from pathlib import Path

DETERMINISTIC_TREES = ("src/sim", "src/hmc", "src/prefetch", "src/fault")

DETERMINISM_PATTERNS = [
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\b(system_clock|steady_clock|high_resolution_clock)\b"),
     "wall-clock"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(nullptr|NULL|0)\s*\)"),
     "time(nullptr)"),
    (re.compile(r"(?<![\w:])clock\s*\(\s*\)"), "clock()"),
    (re.compile(r"\bunordered_(map|set|multimap|multiset)\s*<"),
     "std::unordered_* (iteration order is unspecified)"),
]

STATS_CALL = re.compile(r"\b(?:counter|histogram)\s*\(")
STRING_LITERAL = re.compile(r'"((?:[^"\\]|\\.)*)"')
STATS_NAME_OK = re.compile(r"[a-z0-9_.]*\Z")

# Symbol -> required direct include. Conservative: only types whose use
# without the canonical header is overwhelmingly an accident.
IWYU_MAP = {
    "<string>": re.compile(r"\bstd::(string|to_string)\b"),
    "<vector>": re.compile(r"\bstd::vector\s*<"),
    "<deque>": re.compile(r"\bstd::deque\s*<"),
    "<list>": re.compile(r"\bstd::list\s*<"),
    "<map>": re.compile(r"\bstd::(map|multimap)\s*<"),
    "<set>": re.compile(r"\bstd::(set|multiset)\s*<"),
    "<array>": re.compile(r"\bstd::array\s*<"),
    "<optional>": re.compile(r"\bstd::(optional\s*<|nullopt\b|make_optional)"),
    "<memory>": re.compile(
        r"\bstd::(unique_ptr\s*<|shared_ptr\s*<|make_unique|make_shared)"),
    "<functional>": re.compile(r"\bstd::function\s*<"),
}

WAIVER = re.compile(r"//\s*camps-lint:\s*allow\(([a-z0-9_,\- ]+)\)")
LINE_COMMENT = re.compile(r"//.*$")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path, self.line, self.rule, self.message = (
            path, line, rule, message)

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def waived(line, rule):
    m = WAIVER.search(line)
    if not m:
        return False
    allowed = {r.strip() for r in m.group(1).split(",")}
    return rule in allowed


def strip_comment(line):
    """Drops // comments so commented-out code never triggers rules.
    (Block comments are rare in this codebase and not handled.)"""
    return LINE_COMMENT.sub("", line)


def in_deterministic_tree(rel):
    return any(str(rel).startswith(tree + "/") for tree in DETERMINISTIC_TREES)


def check_file(root, path, findings):
    rel = path.relative_to(root)
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as err:
        findings.append(Finding(rel, 0, "io", f"unreadable: {err}"))
        return
    lines = text.splitlines()

    if path.suffix == ".hpp" and "#pragma once" not in text:
        findings.append(
            Finding(rel, 1, "pragma-once", "header lacks #pragma once"))

    deterministic = in_deterministic_tree(rel)
    for number, raw in enumerate(lines, start=1):
        code = strip_comment(raw)

        if deterministic:
            for pattern, what in DETERMINISM_PATTERNS:
                if pattern.search(code) and not waived(raw, "determinism"):
                    findings.append(Finding(
                        rel, number, "determinism",
                        f"{what} in a deterministic simulation path"))

        if STATS_CALL.search(code):
            for literal in STRING_LITERAL.findall(code):
                if (not STATS_NAME_OK.match(literal)
                        and not waived(raw, "stats-name")):
                    findings.append(Finding(
                        rel, number, "stats-name",
                        f'stat name "{literal}" uses characters outside '
                        "[a-z0-9_.]"))

    includes = set(re.findall(r'#include\s+([<"][^>"]+[>"])', text))
    direct = {inc for inc in includes if inc.startswith("<")}
    for header, pattern in IWYU_MAP.items():
        if header in direct:
            continue
        for number, raw in enumerate(lines, start=1):
            if pattern.search(strip_comment(raw)) and not waived(raw, "iwyu"):
                findings.append(Finding(
                    rel, number, "iwyu",
                    f"uses {pattern.pattern} but does not include {header}"))
                break  # one report per missing header per file


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("paths", nargs="*",
                        help="files to check (default: src, tests, bench, "
                             "tools, examples)")
    args = parser.parse_args()
    root = Path(args.root).resolve()
    if not (root / "src").is_dir():
        print(f"camps_lint: {root} does not look like the repo root",
              file=sys.stderr)
        return 2

    if args.paths:
        files = [Path(p).resolve() for p in args.paths]
    else:
        files = []
        for tree in ("src", "tests", "bench", "tools", "examples"):
            files.extend(sorted((root / tree).rglob("*.hpp")))
            files.extend(sorted((root / tree).rglob("*.cpp")))

    findings = []
    for path in files:
        check_file(root, path, findings)

    for finding in findings:
        print(finding)
    print(f"camps_lint: {len(files)} files, {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
