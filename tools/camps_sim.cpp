// camps_sim — command-line front end for the CAMPS simulation stack.
//
// Runs one (workload, scheme) simulation of the Table I system and prints
// the results summary; optionally dumps the full per-vault statistics
// registry. All Table I parameters can be overridden from an INI config
// file (see configs/table1.ini for the recognized keys).
//
// Usage:
//   camps_sim [options]
//     --workload=ID      Table II workload (default MX1)
//     --scheme=NAME      NONE|BASE|BASE-HIT|MMD|CAMPS|CAMPS-MOD
//     --config=FILE      INI file with system overrides
//     --warmup=N         warmup instructions per core
//     --measure=N        measured instructions per core
//     --seed=N           workload seed
//     --audit            audit model invariants every 100000 events
//     --audit-every=N    audit model invariants every N executed events
//     --stats            dump the full statistics registry
//     --energy           dump the energy event breakdown
//     --stats-json=FILE  write results + statistics registry as JSON
//     --trace-out=FILE   write request-lifecycle spans as Chrome trace JSON
//     --trace-cap=N      span ring capacity (default 16384)
//     --epoch-ticks=N    sample device counters every N ticks
//     --epoch-csv=FILE   write the epoch time series as CSV
//     --epoch-json=FILE  write the epoch time series as JSON
//     --log-level=L      trace|debug|info|warn|error (default warn)
//
// Fault injection (docs/fault_injection.md; all off by default):
//     --fault-rate=R             serial-link CRC-failure rate (per packet)
//     --fault-link-drop=R        unrecoverable link-loss rate
//     --fault-xbar-drop=R        crossbar grant-drop rate
//     --fault-vault-stall=R      vault response-stall rate
//     --fault-seed=N             fault-plan seed (default 1)
//     --fault-retry-budget=N     host retries before poisoning (default 3)
//     --fault-degrade-threshold=N  vault faults per degradation flush
//     --fault-tokens=N           link flow-control credits (flits; 0 = off)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/log.hpp"
#include "obs/chrome_trace.hpp"
#include "system/system.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workload=ID] [--scheme=NAME] [--config=FILE]\n"
               "          [--warmup=N] [--measure=N] [--seed=N]\n"
               "          [--audit] [--audit-every=N] [--stats] [--energy]\n"
               "          [--stats-json=FILE] [--trace-out=FILE] "
               "[--trace-cap=N]\n"
               "          [--epoch-ticks=N] [--epoch-csv=FILE] "
               "[--epoch-json=FILE] [--log-level=L]\n"
               "          [--fault-rate=R] [--fault-link-drop=R] "
               "[--fault-xbar-drop=R]\n"
               "          [--fault-vault-stall=R] [--fault-seed=N] "
               "[--fault-retry-budget=N]\n"
               "          [--fault-degrade-threshold=N] [--fault-tokens=N]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace camps;

  std::string workload = "MX1";
  std::string config_path;
  bool dump_stats = false;
  bool dump_energy = false;
  std::string stats_json_path, trace_out_path, epoch_csv_path, epoch_json_path;
  u64 trace_cap = 0, epoch_ticks = 0;
  system::SystemConfig cfg = system::table1_config();
  cfg.core.warmup_instructions = 100'000;
  cfg.core.measure_instructions = 500'000;

  std::string scheme_override;
  u64 warmup = 0, measure = 0, seed = 0;
  bool have_warmup = false, have_measure = false, have_seed = false;
  u64 audit_every = 0;
  bool have_audit = false;
  fault::FaultConfig fault_cfg;
  bool have_fault = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return arg.c_str() + std::strlen(prefix);
    };
    if (arg.rfind("--workload=", 0) == 0) {
      workload = value("--workload=");
    } else if (arg.rfind("--scheme=", 0) == 0) {
      scheme_override = value("--scheme=");
    } else if (arg.rfind("--config=", 0) == 0) {
      config_path = value("--config=");
    } else if (arg.rfind("--warmup=", 0) == 0) {
      warmup = std::strtoull(value("--warmup="), nullptr, 10);
      have_warmup = true;
    } else if (arg.rfind("--measure=", 0) == 0) {
      measure = std::strtoull(value("--measure="), nullptr, 10);
      have_measure = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(value("--seed="), nullptr, 10);
      have_seed = true;
    } else if (arg == "--audit") {
      audit_every = 100'000;
      have_audit = true;
    } else if (arg.rfind("--audit-every=", 0) == 0) {
      audit_every = std::strtoull(value("--audit-every="), nullptr, 10);
      have_audit = true;
    } else if (arg == "--stats") {
      dump_stats = true;
    } else if (arg == "--energy") {
      dump_energy = true;
    } else if (arg.rfind("--stats-json=", 0) == 0) {
      stats_json_path = value("--stats-json=");
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out_path = value("--trace-out=");
    } else if (arg.rfind("--trace-cap=", 0) == 0) {
      trace_cap = std::strtoull(value("--trace-cap="), nullptr, 10);
    } else if (arg.rfind("--epoch-ticks=", 0) == 0) {
      epoch_ticks = std::strtoull(value("--epoch-ticks="), nullptr, 10);
    } else if (arg.rfind("--epoch-csv=", 0) == 0) {
      epoch_csv_path = value("--epoch-csv=");
    } else if (arg.rfind("--epoch-json=", 0) == 0) {
      epoch_json_path = value("--epoch-json=");
    } else if (arg.rfind("--fault-rate=", 0) == 0) {
      fault_cfg.link_crc_rate = std::strtod(value("--fault-rate="), nullptr);
      have_fault = true;
    } else if (arg.rfind("--fault-link-drop=", 0) == 0) {
      fault_cfg.link_drop_rate =
          std::strtod(value("--fault-link-drop="), nullptr);
      have_fault = true;
    } else if (arg.rfind("--fault-xbar-drop=", 0) == 0) {
      fault_cfg.xbar_drop_rate =
          std::strtod(value("--fault-xbar-drop="), nullptr);
      have_fault = true;
    } else if (arg.rfind("--fault-vault-stall=", 0) == 0) {
      fault_cfg.vault_stall_rate =
          std::strtod(value("--fault-vault-stall="), nullptr);
      have_fault = true;
    } else if (arg.rfind("--fault-seed=", 0) == 0) {
      fault_cfg.seed = std::strtoull(value("--fault-seed="), nullptr, 10);
      have_fault = true;
    } else if (arg.rfind("--fault-retry-budget=", 0) == 0) {
      fault_cfg.host_retry_budget = static_cast<u32>(
          std::strtoul(value("--fault-retry-budget="), nullptr, 10));
      have_fault = true;
    } else if (arg.rfind("--fault-degrade-threshold=", 0) == 0) {
      fault_cfg.vault_degrade_threshold = static_cast<u32>(
          std::strtoul(value("--fault-degrade-threshold="), nullptr, 10));
      have_fault = true;
    } else if (arg.rfind("--fault-tokens=", 0) == 0) {
      fault_cfg.link_tokens = static_cast<u32>(
          std::strtoul(value("--fault-tokens="), nullptr, 10));
      have_fault = true;
    } else if (arg.rfind("--log-level=", 0) == 0) {
      const std::string level = value("--log-level=");
      if (level == "trace") {
        set_log_level(LogLevel::kTrace);
      } else if (level == "debug") {
        set_log_level(LogLevel::kDebug);
      } else if (level == "info") {
        set_log_level(LogLevel::kInfo);
      } else if (level == "warn") {
        set_log_level(LogLevel::kWarn);
      } else if (level == "error") {
        set_log_level(LogLevel::kError);
      } else {
        std::fprintf(stderr,
                     "--log-level expects trace|debug|info|warn|error, "
                     "got \"%s\"\n",
                     level.c_str());
        usage(argv[0]);
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  try {
    if (!config_path.empty()) {
      cfg = system::apply_overrides(cfg, ConfigFile::load(config_path));
    }
    // Command-line flags win over the config file.
    if (!scheme_override.empty()) {
      cfg.scheme = prefetch::scheme_from_string(scheme_override);
    }
    if (have_warmup) cfg.core.warmup_instructions = warmup;
    if (have_measure) cfg.core.measure_instructions = measure;
    if (have_seed) cfg.seed = seed;
    if (have_audit) cfg.audit_every = audit_every;
    // Fault flags override the config file field-by-field: an explicit
    // --fault-* flag replaces the whole fault block with the flag-built one
    // seeded from defaults, matching how the other flags win.
    if (have_fault) cfg.hmc.fault = fault_cfg;
    cfg.obs.trace_enabled = !trace_out_path.empty();
    if (trace_cap > 0) cfg.obs.trace_capacity = static_cast<u32>(trace_cap);
    // An epoch output without an explicit period gets a sensible default
    // (10 us of simulated time).
    if (epoch_ticks == 0 &&
        (!epoch_csv_path.empty() || !epoch_json_path.empty())) {
      epoch_ticks = 10'000 * sim::kTicksPerNs;
    }
    cfg.obs.epoch_ticks = epoch_ticks;

    std::printf("camps_sim: workload %s, scheme %s, %llu+%llu instr/core, "
                "seed %llu\n\n",
                workload.c_str(), prefetch::to_string(cfg.scheme),
                static_cast<unsigned long long>(cfg.core.warmup_instructions),
                static_cast<unsigned long long>(cfg.core.measure_instructions),
                static_cast<unsigned long long>(cfg.seed));

    auto sys = system::make_workload_system(cfg, workload);
    const auto results = sys->run();
    std::printf("%s", results.summary().c_str());

    std::printf("\nper-core IPC:");
    for (size_t c = 0; c < results.cores.size(); ++c) {
      std::printf(" %.3f", results.cores[c].ipc);
    }
    std::printf("\n");

    if (dump_energy) {
      std::printf("\n--- energy breakdown ---\n%s",
                  sys->memory().device().energy().breakdown().c_str());
    }
    if (dump_stats) {
      std::printf("\n--- statistics registry ---\n%s",
                  sys->stats().dump().c_str());
    }
    if (!stats_json_path.empty()) {
      // One document: the run's headline results plus the full registry
      // (per-vault counters, latency histograms). Deterministic: neither
      // part contains wall-clock.
      JsonWriter w(2);
      w.begin_object();
      w.field("workload", workload);
      w.field("scheme", prefetch::to_string(cfg.scheme));
      w.key("results");
      w.raw(results.to_json(0));
      w.key("registry");
      w.raw(sys->stats().dump_json(0));
      w.end_object();
      write_text_file(stats_json_path, w.str() + "\n");
      std::fprintf(stderr, "stats json written to %s\n",
                   stats_json_path.c_str());
    }
    if (!trace_out_path.empty()) {
      const std::string run_name =
          workload + "/" + prefetch::to_string(cfg.scheme);
      const std::vector<obs::Span> spans = sys->trace().sorted_spans();
      obs::write_chrome_trace(trace_out_path,
                              {obs::TraceRun{run_name, &spans}});
      std::fprintf(stderr, "trace written to %s (%zu spans, %llu dropped)\n",
                   trace_out_path.c_str(), spans.size(),
                   static_cast<unsigned long long>(results.trace_dropped));
    }
    if (results.epochs != nullptr) {
      if (!epoch_csv_path.empty()) {
        write_text_file(epoch_csv_path,
                        obs::EpochSampler::series_csv(*results.epochs));
        std::fprintf(stderr, "epoch csv written to %s\n",
                     epoch_csv_path.c_str());
      }
      if (!epoch_json_path.empty()) {
        write_text_file(
            epoch_json_path,
            obs::EpochSampler::series_json(*results.epochs,
                                           cfg.obs.epoch_ticks, 2) +
                "\n");
        std::fprintf(stderr, "epoch json written to %s\n",
                     epoch_json_path.c_str());
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
