// camps_sim — command-line front end for the CAMPS simulation stack.
//
// Runs one (workload, scheme) simulation of the Table I system and prints
// the results summary; optionally dumps the full per-vault statistics
// registry. All Table I parameters can be overridden from an INI config
// file (see configs/table1.ini for the recognized keys).
//
// Usage:
//   camps_sim [options]
//     --workload=ID      Table II workload (default MX1)
//     --scheme=NAME      NONE|BASE|BASE-HIT|MMD|CAMPS|CAMPS-MOD
//     --config=FILE      INI file with system overrides
//     --warmup=N         warmup instructions per core
//     --measure=N        measured instructions per core
//     --seed=N           workload seed
//     --stats            dump the full statistics registry
//     --energy           dump the energy event breakdown
#include <cstdio>
#include <cstring>
#include <string>

#include "system/system.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workload=ID] [--scheme=NAME] [--config=FILE]\n"
               "          [--warmup=N] [--measure=N] [--seed=N] [--stats] "
               "[--energy]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace camps;

  std::string workload = "MX1";
  std::string config_path;
  bool dump_stats = false;
  bool dump_energy = false;
  system::SystemConfig cfg = system::table1_config();
  cfg.core.warmup_instructions = 100'000;
  cfg.core.measure_instructions = 500'000;

  std::string scheme_override;
  u64 warmup = 0, measure = 0, seed = 0;
  bool have_warmup = false, have_measure = false, have_seed = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return arg.c_str() + std::strlen(prefix);
    };
    if (arg.rfind("--workload=", 0) == 0) {
      workload = value("--workload=");
    } else if (arg.rfind("--scheme=", 0) == 0) {
      scheme_override = value("--scheme=");
    } else if (arg.rfind("--config=", 0) == 0) {
      config_path = value("--config=");
    } else if (arg.rfind("--warmup=", 0) == 0) {
      warmup = std::strtoull(value("--warmup="), nullptr, 10);
      have_warmup = true;
    } else if (arg.rfind("--measure=", 0) == 0) {
      measure = std::strtoull(value("--measure="), nullptr, 10);
      have_measure = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(value("--seed="), nullptr, 10);
      have_seed = true;
    } else if (arg == "--stats") {
      dump_stats = true;
    } else if (arg == "--energy") {
      dump_energy = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  try {
    if (!config_path.empty()) {
      cfg = system::apply_overrides(cfg, ConfigFile::load(config_path));
    }
    // Command-line flags win over the config file.
    if (!scheme_override.empty()) {
      cfg.scheme = prefetch::scheme_from_string(scheme_override);
    }
    if (have_warmup) cfg.core.warmup_instructions = warmup;
    if (have_measure) cfg.core.measure_instructions = measure;
    if (have_seed) cfg.seed = seed;

    std::printf("camps_sim: workload %s, scheme %s, %llu+%llu instr/core, "
                "seed %llu\n\n",
                workload.c_str(), prefetch::to_string(cfg.scheme),
                static_cast<unsigned long long>(cfg.core.warmup_instructions),
                static_cast<unsigned long long>(cfg.core.measure_instructions),
                static_cast<unsigned long long>(cfg.seed));

    auto sys = system::make_workload_system(cfg, workload);
    const auto results = sys->run();
    std::printf("%s", results.summary().c_str());

    std::printf("\nper-core IPC:");
    for (size_t c = 0; c < results.cores.size(); ++c) {
      std::printf(" %.3f", results.cores[c].ipc);
    }
    std::printf("\n");

    if (dump_energy) {
      std::printf("\n--- energy breakdown ---\n%s",
                  sys->memory().device().energy().breakdown().c_str());
    }
    if (dump_stats) {
      std::printf("\n--- statistics registry ---\n%s",
                  sys->stats().dump().c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
